"""Table II: recording completeness — WaRR Recorder vs Selenium IDE.

Paper (DSN'11):

    Application    Scenario           WaRR   Selenium IDE
    Google Sites   Edit site           C      P
    GMail          Compose email       C      P
    Yahoo          Authenticate        C      C
    Google Docs    Edit spreadsheet    C      P

Both recorders run simultaneously over the same scripted session; the
SimulatedUser's action log is ground truth.
"""

from repro.apps.docs import DocsApplication
from repro.apps.framework import make_browser
from repro.apps.gmail import GmailApplication
from repro.apps.portal import PortalApplication
from repro.apps.sites import SitesApplication
from repro.baselines import (
    COMPLETE,
    PARTIAL,
    SeleniumIDERecorder,
    evaluate_recording_fidelity,
)
from repro.core.recorder import WarrRecorder
from repro.workloads.sessions import (
    docs_edit_session,
    gmail_compose_session,
    portal_authenticate_session,
    sites_edit_session,
)

SCENARIOS = [
    ("Google Sites", "Edit site", [SitesApplication], sites_edit_session,
     (COMPLETE, PARTIAL)),
    ("GMail", "Compose email", [GmailApplication], gmail_compose_session,
     (COMPLETE, PARTIAL)),
    ("Yahoo", "Authenticate", [PortalApplication],
     portal_authenticate_session, (COMPLETE, COMPLETE)),
    ("Google Docs", "Edit spreadsheet", [DocsApplication], docs_edit_session,
     (COMPLETE, PARTIAL)),
]


def run_scenario(factories, session):
    browser, _ = make_browser(factories)
    warr = WarrRecorder().attach(browser)
    selenium = SeleniumIDERecorder().attach(browser).begin()
    user = session(browser)
    return evaluate_recording_fidelity(
        user.actions, warr.trace, selenium.recorded_actions())


def run_all():
    results = []
    for application, scenario, factories, session, expected in SCENARIOS:
        warr_result, selenium_result = run_scenario(factories, session)
        results.append((application, scenario, warr_result, selenium_result,
                        expected))
    return results


def test_table2(benchmark, reporter):
    results = benchmark(run_all)

    lines = ["%-14s %-18s %-18s %-18s %s" % (
        "Application", "Scenario", "WaRR Recorder", "Selenium IDE", "Paper")]
    for application, scenario, warr, selenium, expected in results:
        lines.append("%-14s %-18s %-18s %-18s %s/%s" % (
            application, scenario,
            "%s (%d/%d)" % (warr.label, warr.covered, warr.total),
            "%s (%d/%d)" % (selenium.label, selenium.covered, selenium.total),
            expected[0], expected[1]))
    reporter("Table II — completeness of recording user actions "
             "(C=Complete, P=Partial)", lines)

    for application, _, warr, selenium, expected in results:
        assert warr.label == expected[0], application
        assert selenium.label == expected[1], application
