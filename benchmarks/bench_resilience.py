"""Durability costs: journaling overhead, resume speedup, soak survival.

The run journal promises crash-safe batches at production cost. This
bench pins the three numbers that make the promise honest and writes
``BENCH_resilience.json``:

1. **Journal overhead** — a journaled serial batch (every start and
   outcome fsync'd to WJ1) vs. the same batch without a journal. The
   relative gap is the price of durability on the happy path.
2. **Resume cost** — re-running a batch whose journal is already
   complete. Every trace replays *from the journal* instead of the
   browser, so this is the recovery path's fixed cost; the trend gate
   asserts it stays under ``MAX_RESUME_COST`` (10%) of a cold run.
   Anything higher would mean "resume" quietly re-executes work.
3. **Soak survival** — the ``python -m repro soak`` failure matrix
   (SIGTERM drain, SIGKILL'd parent, chaos-killed workers) with its
   exactly-once journal audit per cell. Reported as pass/fail counts;
   a failed cell fails the bench outright, quick mode included.

Setting ``BENCH_QUICK=1`` runs a smoke configuration (fewer traces,
one soak cell, no timing assertions) for CI; ``benchmarks/trend.py``
enforces the ``resume_overhead_cost`` budget on full runs.
"""

import os
import time

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.chaos.harness import run_soak
from repro.core.recorder import WarrRecorder
from repro.session import journal as run_journal
from repro.session.batch import BatchRunner
from repro.session.policies import TimingPolicy
from repro.workloads.sessions import sites_edit_session

#: Smoke-test mode: tiny workload, no timing assertion (for CI).
QUICK = bool(os.environ.get("BENCH_QUICK"))

#: Traces per measured batch.
TRACES = 4 if QUICK else 12

#: Text length for the recorded editing session — long enough that a
#: cold replay dwarfs the fixed per-trace cost of journal bookkeeping
#: (resume cost is measured relative to it).
SESSION_LENGTH = 40 if QUICK else 240

#: Best-of-N rounds to damp scheduler noise.
REPEATS = 1 if QUICK else 5

#: Resume of a complete journal must cost < this fraction of a cold
#: run — the recovery path must not quietly re-execute the work.
MAX_RESUME_COST = 0.10

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _factory():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


def record_traces():
    """One recorded sites session, replayed as ``TRACES`` batch items."""
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="x" * SESSION_LENGTH)
    trace = recorder.trace
    return [trace] * TRACES, ["trace-%d" % i for i in range(TRACES)]


def _runner(journal=None, resume=False):
    return BatchRunner(_factory, timing=TimingPolicy.no_wait(),
                       journal=journal, resume=resume)


def measure(traces, labels, tmpdir):
    """Best-of-``REPEATS`` seconds for (plain, journaled, resume)."""
    plain = journaled = resume = None
    for round_index in range(REPEATS):
        start = time.perf_counter()
        batch = _runner().run(traces, labels=labels)
        seconds = time.perf_counter() - start
        assert batch.complete
        plain = seconds if plain is None else min(plain, seconds)

        path = os.path.join(tmpdir, "round-%d.wj1" % round_index)
        start = time.perf_counter()
        batch = _runner(journal=path).run(traces, labels=labels)
        seconds = time.perf_counter() - start
        assert batch.complete
        journaled = seconds if journaled is None else min(journaled, seconds)
        verdict = run_journal.verify_exactly_once(path,
                                                 expected_labels=labels)
        assert verdict["exactly_once"], verdict

        start = time.perf_counter()
        batch = _runner(journal=path, resume=True).run(traces, labels=labels)
        seconds = time.perf_counter() - start
        assert batch.complete and batch.resumed_count == len(traces)
        resume = seconds if resume is None else min(resume, seconds)
    return plain, journaled, resume


def run_soak_matrix():
    """The soak cells this configuration exercises."""
    if QUICK:
        return run_soak(mode=["serial"], scenarios=["drain"], traces=3,
                        throttle=0.1)
    return run_soak(traces=6)


def test_resilience(benchmark, reporter, json_reporter, tmp_path):
    traces, labels = record_traces()
    tmpdir = str(tmp_path)
    plain_s, journaled_s, resume_s = measure(traces, labels, tmpdir)
    journal_cost = journaled_s / plain_s - 1.0
    resume_cost = resume_s / plain_s

    soak = run_soak_matrix()
    soak_cells = len(soak.outcomes)
    soak_passed = sum(1 for o in soak.outcomes if o.passed)

    commands = sum(len(trace) for trace in traces)
    lines = [
        "serial batch, %d traces / %d commands (best of %d):"
        % (TRACES, commands, REPEATS),
        "  %-34s %.4fs" % ("no journal", plain_s),
        "  %-34s %.4fs  (%+.1f%%)"
        % ("journaled (WJ1, fsync)", journaled_s, journal_cost * 100.0),
        "  %-34s %.4fs  (%.1f%% of cold, budget < %.0f%%)"
        % ("resume of complete journal", resume_s, resume_cost * 100.0,
           MAX_RESUME_COST * 100.0),
        "",
        "soak matrix: %d/%d cell(s) passed" % (soak_passed, soak_cells),
    ]
    lines += ["  " + line for line in soak.summary_lines()[1:]]
    reporter("Resilience — journal overhead, resume cost, soak survival",
             lines)

    json_reporter("resilience", {
        "benchmark": "resilience",
        "quick": QUICK,
        "resume": {
            "traces": TRACES,
            "commands": commands,
            "plain_seconds": round(plain_s, 4),
            "journaled_seconds": round(journaled_s, 4),
            "resume_seconds": round(resume_s, 4),
            "journal_overhead_cost": round(journal_cost, 4),
            "resume_overhead_cost": round(resume_cost, 4),
            "budget": MAX_RESUME_COST,
        },
        "soak": {
            "cells": soak_cells,
            "passed": soak_passed,
            "outcomes": [o.to_dict() for o in soak.outcomes],
        },
    })

    # Exactly-once survival is correctness, not timing: quick mode
    # must hold it too.
    assert soak.passed, "soak failures:\n%s" % "\n".join(
        soak.summary_lines())
    if not QUICK:
        assert resume_cost < MAX_RESUME_COST, (
            "resuming a complete journal costs %.1f%% of a cold run, "
            "over the %.0f%% budget — resume is re-executing work"
            % (resume_cost * 100.0, MAX_RESUME_COST * 100.0))

    # pytest-benchmark number: one resume-from-journal pass.
    path = os.path.join(tmpdir, "bench.wj1")
    _runner(journal=path).run(traces, labels=labels)

    def resume_run():
        return _runner(journal=path, resume=True).run(traces, labels=labels)

    result = benchmark(resume_run)
    assert result.resumed_count == len(traces)
