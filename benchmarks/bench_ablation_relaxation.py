"""Ablation A: XPath relaxation under GMail's id churn (paper IV-C).

The paper's first replay challenge: "whenever GMail loaded, it generated
new id properties for HTML elements", invalidating recorded XPaths. The
ablation replays the same compose trace against a churned instance with
relaxation enabled and disabled.
"""

from repro.apps.framework import make_browser
from repro.apps.gmail import GmailApplication
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from repro.workloads.sessions import gmail_compose_session


def record_trace():
    browser, _ = make_browser([GmailApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://mail.example.com/")
    gmail_compose_session(browser)
    return recorder.trace


def churned_browser():
    browser, apps = make_browser([GmailApplication], developer_mode=True)
    # Render compose twice so live ids differ from the recorded ones.
    browser.new_tab("http://mail.example.com/compose")
    browser.new_tab("http://mail.example.com/compose")
    return browser, apps[0]


def replay(trace, relaxation):
    browser, application = churned_browser()
    report = WarrReplayer(browser, relaxation=relaxation).replay(trace)
    return report, application


def test_relaxation_ablation(benchmark, reporter):
    trace = record_trace()

    report_on, app_on = benchmark(replay, trace, True)
    report_off, app_off = replay(trace, relaxation=False)

    lines = [
        "%-26s %-22s %-22s" % ("", "relaxation ON", "relaxation OFF"),
        "%-26s %-22s %-22s" % (
            "commands replayed",
            "%d/%d" % (report_on.replayed_count, len(trace)),
            "%d/%d" % (report_off.replayed_count, len(trace))),
        "%-26s %-22s %-22s" % (
            "locators relaxed", report_on.relaxed_count,
            report_off.relaxed_count),
        "%-26s %-22s %-22s" % (
            "email delivered",
            "yes" if app_on.sent else "no",
            "yes" if app_off.sent else "no"),
    ]
    reporter("Ablation A — XPath relaxation vs GMail id churn", lines)

    assert report_on.complete
    assert report_on.relaxed_count > 0
    assert app_on.sent and app_on.sent[0]["to"] == "bob@example.com"
    assert report_off.failed_count > 0
    assert not app_off.sent


def test_relaxed_resolution_microbenchmark(benchmark):
    """Cost of resolving one stale locator through the heuristics."""
    from repro.core.relaxation import RelaxationEngine

    browser, _ = churned_browser()
    document = browser.tabs[-1].document
    engine = RelaxationEngine()

    def resolve():
        return engine.resolve('//td/input[@id="w0_to"][@name="to"]', document)

    element, heuristic = benchmark(resolve)
    assert element.name == "to"
