"""Shared benchmark plumbing.

Each benchmark regenerates one table or figure from the paper and prints
it (with the paper's numbers alongside for comparison), then times the
computational core with pytest-benchmark.
"""

import sys

import pytest


def emit(title, lines):
    """Print a reproduced artifact so it lands in the benchmark log."""
    banner = "=" * 72
    print("\n%s\n%s\n%s" % (banner, title, banner), file=sys.stderr)
    for line in lines:
        print(line, file=sys.stderr)
    print(banner, file=sys.stderr)


@pytest.fixture(scope="session")
def reporter():
    return emit
