"""Shared benchmark plumbing.

Each benchmark regenerates one table or figure from the paper and prints
it (with the paper's numbers alongside for comparison), then times the
computational core with pytest-benchmark.

Besides the human-readable reporter, benches can write machine-readable
results: ``json_reporter`` dumps a payload (name, commands/s, cache hit
rates, ...) to ``BENCH_<name>.json`` at the repo root, so dashboards and
regression tooling can diff runs without scraping the log.
"""

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def emit(title, lines):
    """Print a reproduced artifact so it lands in the benchmark log."""
    banner = "=" * 72
    print("\n%s\n%s\n%s" % (banner, title, banner), file=sys.stderr)
    for line in lines:
        print(line, file=sys.stderr)
    print(banner, file=sys.stderr)


def emit_json(name, payload):
    """Write ``payload`` to ``BENCH_<name>.json`` at the repo root.

    ``payload`` is any JSON-serializable object; by convention a dict
    with at least ``benchmark`` (the name) plus its metrics (throughput
    rows, cache hit rates). Returns the file path.
    """
    path = os.path.join(REPO_ROOT, "BENCH_%s.json" % name)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture(scope="session")
def reporter():
    return emit


@pytest.fixture(scope="session")
def json_reporter():
    return emit_json
