"""Network tapes: playback vs live throughput, dedup, bytes per session.

Two sweeps over the same Dashboard workload (navigation + iframe
subresource + AJAX GET/POST — every entry point the transport seam
covers):

- **fetch level** — raw ``Network.fetch`` throughput with zero latency,
  live servers vs tape playback. This isolates the seam itself: live
  pays route dispatch plus handler execution, playback pays a memoized
  fingerprint and a cursor lookup. Playback must be at least live speed
  (floor asserted in full mode) or hermetic replay would tax every
  batch it is supposed to accelerate;
- **session level** — full replay sessions per second in three modes:
  live, record (live + tape snapshot, saved to disk each session — the
  honest cost of acquiring a tape), and playback (hermetic: page
  scripts installed, no application servers). Each speedup is the
  median of per-round ratios against that round's live time, the same
  pairing discipline as the batch bench.

The tape-economics numbers ride along: per-session tape bytes on disk,
and the dedup ratio of a multi-session corpus — identical bodies across
sessions stored once, the property that keeps a million-session tape
corpus near the marginal size of its unique responses.

``BENCH_QUICK=1`` runs a smoke configuration with no floor assertions;
the emitted ``BENCH_tape.json`` carries a ``quick`` flag so the trend
gate never diffs smoke against a full baseline.
"""

import gc
import os
import time

from repro.apps.dashboard import DashboardApplication
from repro.apps.framework import make_browser
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.net.server import Network
from repro.net.tape import Tape
from repro.net.transport import (
    PlaybackTransport,
    RecordTransport,
    TapeConfig,
)
from repro.util.clock import VirtualClock
from repro.util.event_loop import EventLoop
from repro.workloads.sessions import dashboard_session

#: Smoke-test mode: tiny workload, no floor assertions (for CI).
QUICK = bool(os.environ.get("BENCH_QUICK"))

#: Sessions replayed per mode per round (session sweep) and sessions
#: recorded for the corpus-dedup measurement.
SESSIONS = 4 if QUICK else 16

#: Fetches per round in the fetch-level sweep.
FETCHES = 2_000 if QUICK else 30_000

#: Paired measurement rounds; each speedup is the median of per-round
#: ratios so slow process drift shifts whole rounds, not comparisons.
#: The session sweep is parity-with-noise territory (the network is a
#: few percent of a replay), so it takes more rounds than the batch
#: bench for the median to settle.
ROUNDS = 1 if QUICK else 9

#: Floors, asserted in full mode only. Playback must not be slower
#: than live at the seam; at the session level the network is a few
#: percent of a replay, so the honest requirement is parity within
#: shared-runner noise (the per-round ratio swings ±7% while the seam
#: number holds steady) — which is why the session ratio is reported
#: as ``vs_live`` rather than a trend-gated ``speedup``.
FETCH_FLOOR = 1.0
SESSION_FLOOR = 0.90

START_URL = "http://dashboard.example.com/"


def record_trace():
    browser, _ = make_browser([DashboardApplication], seed=0)
    recorder = WarrRecorder().attach(browser)
    recorder.begin(START_URL, label="dashboard tape bench")
    dashboard_session(browser)
    recorder.detach()
    return recorder.trace


def _median(values):
    return sorted(values)[len(values) // 2]


# -- fetch-level sweep --------------------------------------------------------


def build_fetch_networks():
    """(live network, playback network, urls) over the dashboard app."""
    app = DashboardApplication()
    live = Network(EventLoop(VirtualClock()), default_latency_ms=0.0)
    live.register(app.host, app.server)
    urls = [START_URL, START_URL + "widget/news", START_URL + "headlines"]

    tape = Tape(label="fetch-bench")
    recording = Network(EventLoop(VirtualClock()), default_latency_ms=0.0)
    recording.register(app.host, app.server)
    recording.use_transport(RecordTransport(recording.transport, tape))
    for url in urls:
        recording.fetch(url)

    playback = Network(EventLoop(VirtualClock()), default_latency_ms=0.0)
    playback.use_transport(PlaybackTransport(tape))
    return live, playback, urls


def time_fetches(network, urls):
    gc.collect()
    start = time.perf_counter()
    for index in range(FETCHES):
        network.fetch(urls[index % len(urls)])
    return time.perf_counter() - start


def measure_fetch_level():
    live_net, playback_net, urls = build_fetch_networks()
    # Warm both paths (memo, response cache) off the clock.
    for url in urls:
        live_net.fetch(url)
        playback_net.fetch(url)
    live_times, ratios = [], []
    for _ in range(ROUNDS):
        live_seconds = time_fetches(live_net, urls)
        playback_seconds = time_fetches(playback_net, urls)
        live_times.append(live_seconds)
        ratios.append(live_seconds / playback_seconds)
    live_seconds = _median(live_times)
    speedup = _median(ratios)
    return [
        {"mode": "live", "fetches_per_second": round(FETCHES / live_seconds),
         "speedup": 1.0},
        {"mode": "playback",
         "fetches_per_second": round(FETCHES / live_seconds * speedup),
         "speedup": round(speedup, 3)},
    ]


# -- session-level sweep ------------------------------------------------------


def run_sessions(trace, mode, tape_path):
    """Replay ``SESSIONS`` fresh sessions in ``mode``; returns seconds."""
    gc.collect()
    start = time.perf_counter()
    for _ in range(SESSIONS):
        browser, _ = make_browser([DashboardApplication], seed=0,
                                  developer_mode=True,
                                  client_only=(mode == "playback"))
        session = None
        if mode == "record":
            session = TapeConfig.record(tape_path).attach(browser.network)
        elif mode == "playback":
            session = TapeConfig.playback(tape_path).attach(browser.network)
        report = WarrReplayer(
            browser, timing=TimingMode.no_wait()).replay(trace)
        if session is not None:
            session.finish()
        assert report.complete, report.summary()
        if mode == "playback":
            assert report.net_fidelity["tape_misses"] == 0
    return time.perf_counter() - start


def measure_session_level(trace, tape_path):
    modes = ("live", "record", "playback")
    for mode in modes:  # warm every path (imports, caches) off the clock
        run_sessions(trace, mode, tape_path)
    timings = {mode: [] for mode in modes}
    ratios = {mode: [] for mode in modes}
    for _ in range(ROUNDS):
        live_seconds = None
        for mode in modes:
            seconds = run_sessions(trace, mode, tape_path)
            if live_seconds is None:  # live always runs first
                live_seconds = seconds
            timings[mode].append(seconds)
            ratios[mode].append(live_seconds / seconds)
    return [
        {"mode": mode,
         "sessions_per_second":
             round(SESSIONS / _median(timings[mode]), 2),
         "vs_live": round(_median(ratios[mode]), 3)}
        for mode in modes
    ]


# -- tape economics -----------------------------------------------------------


def measure_tape_economics(trace, tmp_dir):
    """Per-session tape size and the dedup ratio of a session corpus."""
    tape_paths = []
    for index in range(SESSIONS):
        browser, _ = make_browser([DashboardApplication], seed=0,
                                  developer_mode=True)
        path = os.path.join(tmp_dir, "corpus-%d.tape" % index)
        session = TapeConfig.record(path).attach(browser.network)
        WarrReplayer(browser, timing=TimingMode.no_wait()).replay(trace)
        session.finish()
        tape_paths.append(path)

    tapes = [Tape.load(path) for path in tape_paths]
    logical = sum(tape.blobs.logical_bytes for tape in tapes)
    corpus = {}
    for tape in tapes:
        for digest in tape.blobs.digests():
            corpus[digest] = len(tape.blobs.get(digest).encode("utf-8"))
    stored = sum(corpus.values())
    return {
        "sessions": SESSIONS,
        "tape_bytes_per_session":
            round(sum(os.path.getsize(p) for p in tape_paths)
                  / len(tape_paths)),
        "entries_per_session": len(tapes[0].entries),
        "per_session_dedup_ratio": tapes[0].stats()["dedup_ratio"],
        "corpus_logical_bytes": logical,
        "corpus_stored_bytes": stored,
        "corpus_dedup_ratio": round(logical / stored, 3) if stored else 1.0,
    }


# -- the bench ----------------------------------------------------------------


def test_tape_throughput_and_dedup(reporter, json_reporter, tmp_path):
    trace = record_trace()
    tape_path = str(tmp_path / "bench.tape")

    fetch_series = measure_fetch_level()
    session_series = measure_session_level(trace, tape_path)
    economics = measure_tape_economics(trace, str(tmp_path))

    lines = ["fetch seam   (%d fetches/round):" % FETCHES]
    for row in fetch_series:
        lines.append("  %-10s %12d fetches/s   %.3fx"
                     % (row["mode"], row["fetches_per_second"],
                        row["speedup"]))
    lines.append("sessions     (%d x %d-command replays/round):"
                 % (SESSIONS, len(trace)))
    for row in session_series:
        lines.append("  %-10s %12.2f sessions/s  %.3fx"
                     % (row["mode"], row["sessions_per_second"],
                        row["vs_live"]))
    lines.append("tape economics:")
    lines.append("  %d bytes/session on disk, %d entries/session"
                 % (economics["tape_bytes_per_session"],
                    economics["entries_per_session"]))
    lines.append("  corpus of %d sessions: %d logical -> %d stored bytes "
                 "(dedup %.1fx)"
                 % (economics["sessions"],
                    economics["corpus_logical_bytes"],
                    economics["corpus_stored_bytes"],
                    economics["corpus_dedup_ratio"]))
    reporter("Network tapes — playback vs live, dedup, bytes/session",
             lines)

    json_reporter("tape", {
        "benchmark": "tape",
        "quick": QUICK,
        "fetch_series": fetch_series,
        "session_series": session_series,
        "economics": economics,
        "fetch_floor_required": FETCH_FLOOR if not QUICK else None,
        "session_floor_required": SESSION_FLOOR if not QUICK else None,
    })

    # The corpus dedup property holds in every mode: identical sessions
    # must share every body blob.
    assert economics["corpus_dedup_ratio"] >= float(SESSIONS) * 0.99

    if QUICK:
        return
    playback_fetch = next(row for row in fetch_series
                          if row["mode"] == "playback")
    assert playback_fetch["speedup"] >= FETCH_FLOOR, (
        "tape playback ran at %.3fx live at the fetch seam, below the "
        "%.2fx floor" % (playback_fetch["speedup"], FETCH_FLOOR))
    playback_session = next(row for row in session_series
                            if row["mode"] == "playback")
    assert playback_session["vs_live"] >= SESSION_FLOOR, (
        "hermetic playback replayed sessions at %.3fx live, below the "
        "%.2fx floor" % (playback_session["vs_live"], SESSION_FLOOR))
