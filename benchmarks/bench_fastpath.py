"""Replay fast path: cached vs. uncached throughput.

The fast path (compiled-XPath cache, generation-invalidated DOM
indexes, memoized relaxation, dirty-tracked lazy layout) exists to keep
per-command replay cost flat on long sessions. This bench replays the
640-command Sites editing session from the scaling series with the fast
path on and off (``repro.perf.set_fast_path``), reports commands/second
for both, asserts the speedup, and writes ``BENCH_fastpath.json`` with
both numbers plus per-cache hit rates.

Setting ``BENCH_QUICK=1`` in the environment runs a smoke-test
configuration (short session, single repeat, no speedup assertion) —
CI uses it to prove the bench harness still runs without paying for a
stable timing measurement on shared runners.
"""

import os
import time

from repro import perf
from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.workloads.sessions import sites_edit_session

#: Smoke-test mode: tiny workload, no timing assertion (for CI).
QUICK = bool(os.environ.get("BENCH_QUICK"))

#: Text length for the long editing session (~640 commands recorded).
SESSION_LENGTH = 80 if QUICK else 640

#: Required speedup of the fast path over the uncached baseline.
MIN_SPEEDUP = 3.0

#: Best-of-N wall-clock measurement to damp scheduler noise.
REPEATS = 1 if QUICK else 3


def record_session(text_length=SESSION_LENGTH):
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="x" * text_length)
    return recorder.trace


def replay_once(trace):
    """Replay ``trace`` on a fresh browser; returns (seconds, report)."""
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    start = time.perf_counter()
    report = WarrReplayer(browser, timing=TimingMode.no_wait()).replay(trace)
    seconds = time.perf_counter() - start
    assert report.replayed_count == len(trace), report.summary()
    return seconds, report


def measure(trace, fast):
    """Best-of-N replay throughput with the fast path on or off."""
    best_seconds = None
    report = None
    with perf.fast_path(fast):
        for _ in range(REPEATS):
            seconds, report = replay_once(trace)
            if best_seconds is None or seconds < best_seconds:
                best_seconds = seconds
    return len(trace) / best_seconds, report


def test_fastpath_speedup(benchmark, reporter, json_reporter):
    trace = record_session()

    uncached_rate, uncached_report = measure(trace, fast=False)
    fast_rate, fast_report = measure(trace, fast=True)
    speedup = fast_rate / uncached_rate

    # Correctness guard: the fast path must not change replay outcomes.
    assert [r.status for r in fast_report.results] \
        == [r.status for r in uncached_report.results]
    assert fast_report.final_url == uncached_report.final_url

    lines = [
        "%-26s %-18s" % ("mode", "replay (cmds/s)"),
        "%-26s %-18.0f" % ("uncached (seed path)", uncached_rate),
        "%-26s %-18.0f" % ("fast path (cached)", fast_rate),
        "speedup: %.1fx (required >= %.1fx)" % (speedup, MIN_SPEEDUP),
        "",
        "cache activity during cached replay:",
    ]
    lines.extend("  " + line for line in fast_report.perf_summary())
    reporter("Replay fast path — %d-command Sites session" % len(trace),
             lines)

    json_reporter("fastpath", {
        "benchmark": "fastpath",
        "quick": QUICK,
        "commands": len(trace),
        "uncached": {"commands_per_second": round(uncached_rate, 1)},
        "fast_path": {
            "commands_per_second": round(fast_rate, 1),
            "cache_hit_rates": {
                name: round(counts["hit_rate"], 4)
                for name, counts in fast_report.perf_counters.items()
            },
        },
        "speedup": round(speedup, 2),
        "min_speedup_required": MIN_SPEEDUP,
    })

    # Timing assertions are meaningless on a quick smoke run (tiny
    # workload, single repeat, noisy shared runner) — correctness
    # guards above still apply.
    if not QUICK:
        assert speedup >= MIN_SPEEDUP, (
            "fast path %.0f cmds/s vs uncached %.0f cmds/s = %.1fx, below "
            "the required %.1fx"
            % (fast_rate, uncached_rate, speedup, MIN_SPEEDUP)
        )

    # pytest-benchmark number: the cached replay of a mid-size session.
    mid_trace = record_session(80)

    def cached_replay():
        return replay_once(mid_trace)[1]

    result = benchmark(cached_replay)
    assert result.replayed_count == len(mid_trace)
