"""Extended recorder comparison: WaRR vs every Section II alternative.

The paper's Table II compares against Selenium IDE only; its Section II
discusses more approaches (traffic proxies, JS-injection proxies). This
bench runs all four recorders simultaneously over the same sessions and
scores what each captured:

- WaRR Recorder (in-engine)
- Selenium IDE (DOM listeners on form controls/links)
- UsaProxy (proxy-injected document-level click tracker)
- Fiddler (HTTP wire log — records exchanges, not user actions)
"""

from repro.apps.docs import DocsApplication
from repro.apps.framework import AppEnvironment
from repro.apps.gmail import GmailApplication
from repro.apps.portal import PortalApplication
from repro.apps.sites import SitesApplication
from repro.baselines.fiddler import FiddlerProxy
from repro.baselines.selenium_ide import SeleniumIDERecorder
from repro.baselines.usaproxy import UsaProxyRecorder
from repro.core.recorder import WarrRecorder
from repro.util.rng import SeededRandom
from repro.workloads.sessions import (
    docs_edit_session,
    gmail_compose_session,
    portal_authenticate_session,
    sites_edit_session,
)

SCENARIOS = [
    ("Sites edit", SitesApplication, sites_edit_session),
    ("GMail compose", GmailApplication, gmail_compose_session),
    ("Portal auth", PortalApplication, portal_authenticate_session),
    ("Docs spreadsheet", DocsApplication, docs_edit_session),
]


def run_scenario(app_class, session):
    application = app_class(rng=SeededRandom(0))
    environment = AppEnvironment([])
    proxy = UsaProxyRecorder(application.server)
    proxy.install(environment.network, environment.registry,
                  application.host)
    environment.registry.merge(application.scripts)
    browser = environment.browser()

    warr = WarrRecorder().attach(browser)
    warr.begin("http://%s/" % application.host)
    selenium = SeleniumIDERecorder().attach(browser).begin()
    fiddler = FiddlerProxy(environment.network).begin()

    user = session(browser)
    return {
        "user actions": len(user.actions),
        "WaRR": len(warr.trace),
        "Selenium IDE": len(selenium.recorded_actions()),
        "UsaProxy": len(proxy.commands),
        "Fiddler (exchanges)": len(fiddler.captured()),
    }


def run_all():
    return [(name, run_scenario(app_class, session))
            for name, app_class, session in SCENARIOS]


def test_baseline_comparison(benchmark, reporter):
    results = benchmark(run_all)

    columns = ["user actions", "WaRR", "Selenium IDE", "UsaProxy",
               "Fiddler (exchanges)"]
    lines = ["%-18s %s" % ("scenario", " ".join("%-14s" % c for c in columns))]
    for name, counts in results:
        lines.append("%-18s %s" % (
            name, " ".join("%-14d" % counts[c] for c in columns)))
    lines.append("")
    lines.append("WaRR counts commands (== user actions); UsaProxy sees "
                 "clicks only; Fiddler counts HTTP exchanges, which are "
                 "not user actions at all.")
    reporter("Extended recorder comparison (paper Section II baselines)",
             lines)

    for name, counts in results:
        # WaRR is the only recorder capturing every action.
        assert counts["WaRR"] >= counts["user actions"]
        assert counts["Selenium IDE"] <= counts["user actions"]
        assert counts["UsaProxy"] <= counts["user actions"]
