"""Section V-C: WebErr's timing-error injection finds the Sites bug.

Paper: "we simulated impatient users who do not wait long enough and
perform their changes right away. In doing so, we caused Google Sites to
use an uninitialized JavaScript variable, an obvious bug."
"""

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.weberr.runner import WebErr
from repro.workloads.sessions import sites_edit_session

EDIT_URL = "http://sites.example.com/edit/home"


def record_trace():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin(EDIT_URL)
    sites_edit_session(browser, text="Hi!")
    return recorder.trace


def browser_factory():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


def test_timing_error_campaign(benchmark, reporter):
    trace = record_trace()
    weberr = WebErr(browser_factory)

    report = benchmark(weberr.run_timing_campaign, trace)

    lines = [report.summary(), ""]
    for outcome in report.outcomes:
        lines.append("%-14s -> %s" % (outcome.description, outcome.verdict))
    reporter("Section V-C — timing errors injected into the Sites "
             "editing trace", lines)

    assert report.bugs, "the campaign must find the bug"
    no_wait = next(o for o in report.outcomes if o.description == "no-wait")
    assert no_wait.found_bug
    assert "editorState" in no_wait.verdict.reason


def test_patient_replay_baseline(benchmark):
    """The control: recorded delays replay cleanly (no false positives)."""
    trace = record_trace()

    def patient_replay():
        browser = browser_factory()
        return WarrReplayer(browser, timing=TimingMode.recorded()).replay(trace)

    report = benchmark(patient_replay)
    assert report.complete
    assert report.page_errors == []


def test_impatient_replay(benchmark):
    """The treatment: no-wait replay hits the uninitialized variable."""
    trace = record_trace()

    def impatient_replay():
        browser = browser_factory()
        return WarrReplayer(browser, timing=TimingMode.no_wait()).replay(trace)

    report = benchmark(impatient_replay)
    assert report.page_errors
