"""Ablation B: the four ChromeDriver fixes (paper IV-C), one at a time.

Each row disables a single fix and replays the scenario whose success
depends on it. Stock ChromeDriver (all fixes off) fails everything the
paper says it fails; WaRR's driver replays everything.
"""

from repro.apps.docs import DocsApplication
from repro.apps.framework import make_browser
from repro.apps.gmail import GmailApplication
from repro.core.chromedriver import ChromeDriverConfig
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from repro.workloads.sessions import docs_edit_session, gmail_compose_session


def record(factories, session, start_url):
    browser, _ = make_browser(factories)
    recorder = WarrRecorder().attach(browser)
    recorder.begin(start_url)
    session(browser)
    return recorder.trace


def replay(factories, trace, config):
    browser, apps = make_browser(factories, developer_mode=True)
    report = WarrReplayer(browser, config=config).replay(trace)
    return report, apps[0]


def run_matrix():
    gmail_trace = record([GmailApplication], gmail_compose_session,
                         "http://mail.example.com/")
    docs_trace = record([DocsApplication], docs_edit_session,
                        "http://docs.example.com/sheet/budget")

    rows = []

    # fix_double_click: needed by the Docs double-click editing.
    report, app = replay([DocsApplication], docs_trace,
                         ChromeDriverConfig(fix_double_click=False))
    rows.append(("double-click support OFF", "Docs edit",
                 report, app.sheets["budget"].get((2, 0)) == "Travel"))

    # fix_text_input: needed by GMail's contenteditable body.
    report, app = replay([GmailApplication], gmail_trace,
                         ChromeDriverConfig(fix_text_input=False))
    rows.append(("text-input property fix OFF", "GMail compose",
                 report, bool(app.sent) and app.sent[0]["body"] != ""))

    # fix_active_client: needed by any trace crossing a navigation.
    report, app = replay([GmailApplication], gmail_trace,
                         ChromeDriverConfig(fix_active_client=False))
    rows.append(("active-client fix OFF", "GMail compose",
                 report, bool(app.sent)))

    # Stock driver: everything off.
    report, app = replay([GmailApplication], gmail_trace,
                         ChromeDriverConfig.stock())
    rows.append(("stock ChromeDriver (all OFF)", "GMail compose",
                 report, bool(app.sent)))

    # WaRR driver: everything on.
    report, app = replay([GmailApplication], gmail_trace,
                         ChromeDriverConfig.warr())
    rows.append(("WaRR driver (all fixes ON)", "GMail compose",
                 report, bool(app.sent) and app.sent[0]["body"] != ""))
    return rows


def test_driver_fix_ablation(benchmark, reporter):
    rows = benchmark(run_matrix)

    lines = ["%-30s %-16s %-10s %-8s %s" % (
        "configuration", "scenario", "replayed", "halted", "effect intact")]
    for name, scenario, report, effect_ok in rows:
        lines.append("%-30s %-16s %-10s %-8s %s" % (
            name, scenario,
            "%d/%d" % (report.replayed_count, len(report.trace)),
            "yes" if report.halted else "no",
            "yes" if effect_ok else "NO"))
    reporter("Ablation B — ChromeDriver fixes (paper Section IV-C)", lines)

    by_name = {name: (report, effect) for name, _, report, effect in rows}
    assert not by_name["double-click support OFF"][1]
    assert not by_name["text-input property fix OFF"][1]
    assert by_name["active-client fix OFF"][0].halted
    assert by_name["stock ChromeDriver (all OFF)"][0].halted or \
        by_name["stock ChromeDriver (all OFF)"][0].failed_count > 0
    warr_report, warr_effect = by_name["WaRR driver (all fixes ON)"]
    assert warr_report.complete and warr_effect
