"""Telemetry overhead: tracing-off must be (nearly) free — and
tracing-*on*, in the production category configuration, nearly so.

The tracing subsystem promises that instrumented code pays one guard
check (``telemetry.current() is None``) while tracing is off, and that
the packed ring buffer + category filtering keep a production trace
(``categories="production"``) affordable on an always-on replay farm.
This bench measures both and writes ``BENCH_telemetry.json``:

1. **Guard micro-benchmark** — the DOM dispatch hot loop run through
   the public guarded entry point (``dispatch_event``) vs. the
   guard-free core (``_dispatch``). The relative gap IS the tracing-off
   overhead, measured in-process back to back, and is asserted below
   ``MAX_OFF_OVERHEAD`` (5%).
2. **End-to-end replays** — whole-session replay throughput with
   tracing off, tracing on in the production category set (asserted
   below ``MAX_ON_OVERHEAD``: cost < 0.10x, i.e. tracing-on under
   1.10x the tracing-off runtime), and tracing on with every category
   (``"all"``, reported as ``tracing_on_full_cost``).

Both exported traces are run through the schema validator, so the
"cheap" configurations are pinned to still be *valid* configurations.

Setting ``BENCH_QUICK=1`` runs a smoke configuration (tiny workload,
no timing assertions) for CI; ``benchmarks/trend.py`` enforces the
``tracing_on_cost`` / ``tracing_off_overhead`` budgets on full runs.
"""

import gc
import json
import os
import subprocess
import sys
import time

from repro import telemetry
from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.dom.parser import parse_html
from repro.events.dispatch import _dispatch, dispatch_event
from repro.events.event import Event
from repro.workloads.sessions import sites_edit_session

#: Smoke-test mode: tiny workload, no timing assertion (for CI).
QUICK = bool(os.environ.get("BENCH_QUICK"))

#: Text length for the recorded editing session.
SESSION_LENGTH = 40 if QUICK else 320

#: Maximum tracing-off overhead on the guarded dispatch hot path.
MAX_OFF_OVERHEAD = 0.05

#: Maximum tracing-on replay cost with ``categories="production"``.
MAX_ON_OVERHEAD = 0.10

#: Dispatches per measurement round of the guard micro-benchmark.
DISPATCHES = 2_000 if QUICK else 20_000

#: Best-of-N rounds to damp scheduler noise.
REPEATS = 1 if QUICK else 7

#: Independent interpreter processes probing the asserted replay pair
#: (each runs ``REPEATS`` interleaved off/production rounds). A Python
#: process lands in a per-process memory layout that can slow the
#: allocation-heavier production replay by a steady millisecond for
#: the process's whole lifetime — no amount of in-process repetition
#: averages that away, so the pair's floors are taken across
#: processes, like any external benchmark runner would.
PROBES = 3

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HTML = """
<html><body>
  <div id="a"><div id="b"><div id="c"><span id="leaf">x</span></div></div></div>
</body></html>
"""


def record_session():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="x" * SESSION_LENGTH)
    return recorder.trace


def replay_once(trace, categories):
    """Replay on a fresh browser; returns (seconds, report, tracer).

    ``categories`` None replays with tracing off; otherwise it is the
    tracer's category spec (``"all"`` / ``"production"``). The heap is
    collected before the clock starts so garbage left by the previous
    configuration (an ``"all"`` replay retains thousands of args
    payloads) is not charged to this one; collections *triggered by*
    the measured replay still land inside the timed region.
    """
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    replayer = WarrReplayer(browser, timing=TimingMode.no_wait())
    tracer = None
    gc.collect()
    start = time.perf_counter()
    if categories is not None:
        with telemetry.tracing(clock=browser.clock,
                               categories=categories) as tracer:
            report = replayer.replay(trace)
    else:
        report = replayer.replay(trace)
    seconds = time.perf_counter() - start
    assert report.replayed_count == len(trace), report.summary()
    return seconds, report, tracer


def measure_replays(trace, specs, repeats=REPEATS):
    """Best-of-``repeats`` replay rates for several category specs.

    The specs are interleaved round-robin (off, production, off, ...)
    rather than measured in separate blocks, so slow drift in machine
    state biases every configuration equally instead of skewing the
    off/on ratio. Returns ``{spec: (rate, tracer)}``.

    The asserted off/production pair must be measured in its own call,
    *before* any ``"all"`` replay: an all-categories tracer retains
    thousands of deferred args payloads, and that live heap measurably
    slows every replay that follows it in the same process — rotating
    it through the asserted pair inflates the production ratio by
    several points of pure measurement artifact.
    """
    best = {}
    tracers = {}
    for _ in range(repeats):
        for categories in specs:
            seconds, _, tracer = replay_once(trace, categories)
            if categories not in best or seconds < best[categories]:
                best[categories] = seconds
            tracers[categories] = tracer
    return {categories: (len(trace) / best[categories], tracers[categories])
            for categories in specs}


def measure_pair_floors():
    """Cross-process floors (seconds) for the off/production pair.

    Spawns ``PROBES`` fresh interpreters, each recording its own
    session and running the interleaved off/production rounds, and
    takes each configuration's best time across every probe. Returns
    ``(off_seconds, production_seconds, commands)``.
    """
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = (os.pathsep.join([src, env["PYTHONPATH"]])
                         if env.get("PYTHONPATH") else src)
    off = prod = commands = None
    for _ in range(PROBES):
        result = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--probe"],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        if result.returncode != 0:
            raise RuntimeError("replay probe failed:\n%s" % result.stderr)
        probe = json.loads(result.stdout.strip().splitlines()[-1])
        off = probe["off"] if off is None else min(off, probe["off"])
        prod = (probe["production"] if prod is None
                else min(prod, probe["production"]))
        commands = probe["commands"]
    return off, prod, commands


def _probe_main():
    """One probe process: record, measure the pair, print JSON."""
    trace = record_session()
    best = {}
    for _ in range(REPEATS):
        for categories in (None, "production"):
            seconds, _, _ = replay_once(trace, categories)
            if categories not in best or seconds < best[categories]:
                best[categories] = seconds
    print(json.dumps({"off": best[None], "production": best["production"],
                      "commands": len(trace)}))


def check_export(tracer, categories):
    """The cheap configuration must still export a *valid* trace."""
    from tests.telemetry.schema import validate_trace

    trace_dict = telemetry.tracer_to_dict(tracer)
    validate_trace(trace_dict)
    assert trace_dict["otherData"]["events_total"] == tracer.buffer.total
    seen = {event.get("cat") for event in trace_dict["traceEvents"]
            if event.get("ph") != "M"}
    assert "session" in seen, "production trace lost the session narrative"
    if categories == "production":
        allowed = telemetry.PRODUCTION_CATEGORIES | {None}
        assert seen <= allowed, "category filter leaked: %r" % (
            seen - allowed,)
    return len(trace_dict["traceEvents"])


def dispatch_round(entry_point):
    """Time ``DISPATCHES`` bubbling dispatches through ``entry_point``."""
    document = parse_html(HTML)
    (leaf,) = [node for node in document.descendants()
               if getattr(node, "tag", None) == "span"]
    hops = []
    for node in (leaf, leaf.parent, leaf.parent.parent):
        node.add_event_listener("ping", lambda event: hops.append(1))
    start = time.perf_counter()
    for _ in range(DISPATCHES):
        entry_point(leaf, Event("ping", bubbles=True))
    return time.perf_counter() - start


def measure_guard_overhead():
    """Tracing-off overhead of the guarded dispatch entry point.

    Interleaves best-of-N rounds of the public (guarded) entry point
    and the guard-free core so both see the same machine state.
    """
    assert telemetry.current() is None
    guarded = None
    bare = None
    for _ in range(REPEATS):
        seconds = dispatch_round(dispatch_event)
        guarded = seconds if guarded is None else min(guarded, seconds)
        seconds = dispatch_round(lambda target, event: _dispatch(
            target, event, None))
        bare = seconds if bare is None else min(bare, seconds)
    return guarded, bare


def test_tracing_overhead(benchmark, reporter, json_reporter):
    trace = record_session()
    if QUICK:
        rates = measure_replays(trace, (None, "production"))
        off_rate, _ = rates[None]
        prod_rate, prod_tracer = rates["production"]
    else:
        off_s, prod_s, commands = measure_pair_floors()
        assert commands == len(trace)
        off_rate = len(trace) / off_s
        prod_rate = len(trace) / prod_s
        # An untimed production replay supplies the export to validate.
        prod_tracer = replay_once(trace, "production")[2]
    # The all-categories number is informational (reported, never
    # asserted), so it runs after the asserted pair — see
    # measure_replays on why it must not rotate with them.
    full_rate, full_tracer = measure_replays(trace, ("all",))["all"]
    prod_cost = off_rate / prod_rate - 1.0
    full_cost = off_rate / full_rate - 1.0
    prod_events = check_export(prod_tracer, "production")
    full_events = check_export(full_tracer, "all")

    guarded_s, bare_s = measure_guard_overhead()
    guard_overhead = guarded_s / bare_s - 1.0

    lines = [
        "guarded dispatch hot loop (%d dispatches, best of %d):"
        % (DISPATCHES, REPEATS),
        "  %-34s %.4fs" % ("guard-free core", bare_s),
        "  %-34s %.4fs" % ("guarded entry (tracing off)", guarded_s),
        "  overhead: %+.2f%% (budget < %.0f%%)"
        % (guard_overhead * 100.0, MAX_OFF_OVERHEAD * 100.0),
        "",
        "end-to-end replay, %d commands (%d probe processes × best "
        "of %d):" % (len(trace), PROBES, REPEATS),
        "  %-34s %.0f cmds/s" % ("tracing off", off_rate),
        "  %-34s %.0f cmds/s  (%d events)"
        % ("tracing on (production)", prod_rate, prod_events),
        "  %-34s %.0f cmds/s  (%d events)"
        % ("tracing on (all categories)", full_rate, full_events),
        "  production cost: %+.1f%% (budget < %.0f%%)"
        % (prod_cost * 100.0, MAX_ON_OVERHEAD * 100.0),
        "  all-categories cost: %+.1f%% (reported, not asserted)"
        % (full_cost * 100.0),
    ]
    reporter("Telemetry overhead — guard check and always-on tracing",
             lines)

    json_reporter("telemetry", {
        "benchmark": "telemetry",
        "quick": QUICK,
        "dispatches": DISPATCHES,
        "guard": {
            "bare_seconds": round(bare_s, 4),
            "guarded_seconds": round(guarded_s, 4),
            "tracing_off_overhead": round(guard_overhead, 4),
            "budget": MAX_OFF_OVERHEAD,
        },
        "replay": {
            "commands": len(trace),
            "tracing_off_commands_per_second": round(off_rate, 1),
            "tracing_on_commands_per_second": round(prod_rate, 1),
            "tracing_on_cost": round(prod_cost, 4),
            "tracing_on_full_commands_per_second": round(full_rate, 1),
            "tracing_on_full_cost": round(full_cost, 4),
            "budget": MAX_ON_OVERHEAD,
            "production_events": prod_events,
            "full_events": full_events,
        },
    })

    # Timing assertions are meaningless on a quick smoke run.
    if not QUICK:
        assert guard_overhead < MAX_OFF_OVERHEAD, (
            "tracing-off guard costs %+.2f%% on the dispatch hot path, "
            "over the %.0f%% budget"
            % (guard_overhead * 100.0, MAX_OFF_OVERHEAD * 100.0)
        )
        assert prod_cost < MAX_ON_OVERHEAD, (
            "production tracing costs %+.1f%% on end-to-end replay, "
            "over the %.0f%% budget (tracing-on must stay < %.2fx)"
            % (prod_cost * 100.0, MAX_ON_OVERHEAD * 100.0,
               1.0 + MAX_ON_OVERHEAD)
        )

    # pytest-benchmark number: one production-traced replay.
    def traced_replay():
        return replay_once(trace, categories="production")[1]

    result = benchmark(traced_replay)
    assert result.replayed_count == len(trace)


if __name__ == "__main__":
    _probe_main()
