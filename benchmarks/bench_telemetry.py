"""Telemetry overhead: tracing-off must be (nearly) free.

The tracing subsystem promises that instrumented code pays one guard
check (``telemetry.current() is None``) while tracing is off. This
bench measures that promise two ways and writes
``BENCH_telemetry.json``:

1. **Guard micro-benchmark** — the DOM dispatch hot loop run through
   the public guarded entry point (``dispatch_event``) vs. the
   guard-free core (``_dispatch``). The relative gap IS the tracing-off
   overhead, measured in-process back to back, and is asserted below
   ``MAX_OFF_OVERHEAD`` (5%).
2. **End-to-end replays** — whole-session replay throughput with
   tracing off vs. tracing on, reported (not asserted: cross-run replay
   timing on shared runners is too noisy for a 5% bound, and tracing-on
   cost is allowed to be visible).

Setting ``BENCH_QUICK=1`` runs a smoke configuration (tiny workload,
no timing assertions) for CI.
"""

import os
import time

from repro import telemetry
from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.dom.parser import parse_html
from repro.events.dispatch import _dispatch, dispatch_event
from repro.events.event import Event
from repro.workloads.sessions import sites_edit_session

#: Smoke-test mode: tiny workload, no timing assertion (for CI).
QUICK = bool(os.environ.get("BENCH_QUICK"))

#: Text length for the recorded editing session.
SESSION_LENGTH = 40 if QUICK else 320

#: Maximum tracing-off overhead on the guarded dispatch hot path.
MAX_OFF_OVERHEAD = 0.05

#: Dispatches per measurement round of the guard micro-benchmark.
DISPATCHES = 2_000 if QUICK else 20_000

#: Best-of-N rounds to damp scheduler noise.
REPEATS = 1 if QUICK else 5

HTML = """
<html><body>
  <div id="a"><div id="b"><div id="c"><span id="leaf">x</span></div></div></div>
</body></html>
"""


def record_session():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="x" * SESSION_LENGTH)
    return recorder.trace


def replay_once(trace, tracing_on):
    """Replay on a fresh browser; returns (seconds, report)."""
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    replayer = WarrReplayer(browser, timing=TimingMode.no_wait())
    start = time.perf_counter()
    if tracing_on:
        with telemetry.tracing(clock=browser.clock):
            report = replayer.replay(trace)
    else:
        report = replayer.replay(trace)
    seconds = time.perf_counter() - start
    assert report.replayed_count == len(trace), report.summary()
    return seconds, report


def measure_replay(trace, tracing_on):
    best = None
    for _ in range(REPEATS):
        seconds, _ = replay_once(trace, tracing_on)
        if best is None or seconds < best:
            best = seconds
    return len(trace) / best


def dispatch_round(entry_point):
    """Time ``DISPATCHES`` bubbling dispatches through ``entry_point``."""
    document = parse_html(HTML)
    (leaf,) = [node for node in document.descendants()
               if getattr(node, "tag", None) == "span"]
    hops = []
    for node in (leaf, leaf.parent, leaf.parent.parent):
        node.add_event_listener("ping", lambda event: hops.append(1))
    start = time.perf_counter()
    for _ in range(DISPATCHES):
        entry_point(leaf, Event("ping", bubbles=True))
    return time.perf_counter() - start


def measure_guard_overhead():
    """Tracing-off overhead of the guarded dispatch entry point.

    Interleaves best-of-N rounds of the public (guarded) entry point
    and the guard-free core so both see the same machine state.
    """
    assert telemetry.current() is None
    guarded = None
    bare = None
    for _ in range(REPEATS):
        seconds = dispatch_round(dispatch_event)
        guarded = seconds if guarded is None else min(guarded, seconds)
        seconds = dispatch_round(lambda target, event: _dispatch(
            target, event, None))
        bare = seconds if bare is None else min(bare, seconds)
    return guarded, bare


def test_tracing_off_overhead(benchmark, reporter, json_reporter):
    guarded_s, bare_s = measure_guard_overhead()
    guard_overhead = guarded_s / bare_s - 1.0

    trace = record_session()
    off_rate = measure_replay(trace, tracing_on=False)
    on_rate = measure_replay(trace, tracing_on=True)
    on_cost = off_rate / on_rate - 1.0

    lines = [
        "guarded dispatch hot loop (%d dispatches, best of %d):"
        % (DISPATCHES, REPEATS),
        "  %-28s %.4fs" % ("guard-free core", bare_s),
        "  %-28s %.4fs" % ("guarded entry (tracing off)", guarded_s),
        "  overhead: %+.2f%% (budget < %.0f%%)"
        % (guard_overhead * 100.0, MAX_OFF_OVERHEAD * 100.0),
        "",
        "end-to-end replay, %d commands:" % len(trace),
        "  %-28s %.0f cmds/s" % ("tracing off", off_rate),
        "  %-28s %.0f cmds/s" % ("tracing on", on_rate),
        "  tracing-on cost: %+.1f%% (reported, not asserted)"
        % (on_cost * 100.0),
    ]
    reporter("Telemetry overhead — guard check and full tracing", lines)

    json_reporter("telemetry", {
        "benchmark": "telemetry",
        "quick": QUICK,
        "dispatches": DISPATCHES,
        "guard": {
            "bare_seconds": round(bare_s, 4),
            "guarded_seconds": round(guarded_s, 4),
            "tracing_off_overhead": round(guard_overhead, 4),
            "budget": MAX_OFF_OVERHEAD,
        },
        "replay": {
            "commands": len(trace),
            "tracing_off_commands_per_second": round(off_rate, 1),
            "tracing_on_commands_per_second": round(on_rate, 1),
            "tracing_on_cost": round(on_cost, 4),
        },
    })

    # Timing assertion is meaningless on a quick smoke run.
    if not QUICK:
        assert guard_overhead < MAX_OFF_OVERHEAD, (
            "tracing-off guard costs %+.2f%% on the dispatch hot path, "
            "over the %.0f%% budget"
            % (guard_overhead * 100.0, MAX_OFF_OVERHEAD * 100.0)
        )

    # pytest-benchmark number: one traced replay of the session.
    def traced_replay():
        return replay_once(trace, tracing_on=True)[1]

    result = benchmark(traced_replay)
    assert result.replayed_count == len(trace)
