"""Figure 4: the WaRR Command sequence for editing a Google Sites page.

Regenerates the paper's trace fragment — click the start span, type
"Hello world!" into ``//td/div[@id="content"]``, click the Save button —
and benchmarks a full record session.
"""

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.workloads.sessions import sites_edit_session

EDIT_URL = "http://sites.example.com/edit/home"


def record_hello_world():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin(EDIT_URL)
    sites_edit_session(browser, text="Hello world!")
    recorder.detach()
    return recorder.trace


def test_figure4_trace(benchmark, reporter):
    trace = benchmark(record_hello_world)

    lines = [command.to_line() for command in trace]
    reporter("Figure 4 — WaRR Commands recorded while editing a Google "
             "Sites web page", lines)

    # Shape assertions: the paper's fragment structure.
    assert lines[0].startswith('click //div/span[@id="start"]')
    typed = [c for c in trace if c.action == "type"]
    assert "".join(c.key for c in typed) == "Hello world!"
    assert lines[-1].startswith('click //td/div[text()="Save"]')
    # The '!' carries the '1'-key code, exactly as in the paper.
    assert typed[-1].code == 49
    # Space is logged as [ ,32].
    assert any("[ ,32]" in line for line in lines)
