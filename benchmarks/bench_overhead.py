"""Section VI: WaRR Recorder overhead while composing a GMail email.

Paper: "The average required time is on the order of hundreds of
microseconds and does not hinder user experience" — far below the 100 ms
human perception threshold. We run the same experiment (compose an email
with the recorder attached), report the mean/median/p99 per-action
logging cost in wall-clock microseconds, and additionally benchmark the
raw logging path.
"""

import statistics

from repro.apps.framework import make_browser
from repro.apps.gmail import GmailApplication
from repro.auser.report import PERCEPTION_THRESHOLD_MS
from repro.core.recorder import WarrRecorder
from repro.workloads.sessions import gmail_compose_session

LONG_BODY = ("Dear Bob, following up on our conversation yesterday about "
             "the quarterly planning meeting and the budget review.")


def compose_with_recorder():
    browser, _ = make_browser([GmailApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://mail.example.com/")
    gmail_compose_session(browser, body=LONG_BODY)
    recorder.detach()
    return recorder


def test_recorder_overhead(benchmark, reporter):
    recorder = benchmark(compose_with_recorder)

    samples = recorder.overhead_samples_us
    mean_us = statistics.mean(samples)
    median_us = statistics.median(samples)
    p99_us = sorted(samples)[int(len(samples) * 0.99) - 1]
    worst_us = max(samples)

    lines = [
        "actions recorded:        %d" % len(samples),
        "mean per-action cost:    %8.1f us" % mean_us,
        "median per-action cost:  %8.1f us" % median_us,
        "p99 per-action cost:     %8.1f us" % p99_us,
        "worst per-action cost:   %8.1f us" % worst_us,
        "perception threshold:    %8.1f us (100 ms)"
        % (PERCEPTION_THRESHOLD_MS * 1000),
        "",
        "paper: 'on the order of hundreds of microseconds'",
    ]
    reporter("Section VI — per-action recording overhead (GMail compose)",
             lines)

    # The claim that matters: far below human perception, so the
    # recorder can be always-on.
    assert mean_us < PERCEPTION_THRESHOLD_MS * 1000
    assert p99_us < PERCEPTION_THRESHOLD_MS * 1000
    # Same order of magnitude as the paper (sub-millisecond).
    assert mean_us < 1000.0


def test_logging_call_microbenchmark(benchmark):
    """Time one pass through the recorder's mouse-press logging hook."""
    browser, _ = make_browser([GmailApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://mail.example.com/")
    tab = browser.new_tab("http://mail.example.com/compose")
    engine = tab.engine
    target = tab.find('//div[contains(@class, "editable")]')

    from repro.events.event import MouseEvent

    event = MouseEvent("mousepress", client_x=10, client_y=10)
    event.is_trusted = True

    benchmark(recorder.on_mouse_press, engine, event, target)
