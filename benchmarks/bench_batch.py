"""Scale-out batch replay: serial vs sharded vs warm-pool throughput.

Batch replay has three backends and this bench sweeps all of them over
the same batch of Sites editing sessions:

- **serial** (``workers=1, shards=1``) — the untouched in-process
  baseline;
- **sharded** (``shards=N``) — N sessions interleaved cooperatively in
  one process: no pickling, no spawn, per-command cost is a scope
  switch. Same total work on one core, so its floor is *serial parity*
  (asserted with a tolerance covering the scope-switch bookkeeping and
  shared-runner scheduling noise);
- **warm pool** (``workers=N``) — N persistent worker processes serving
  chunked traces with wire-encoded results. Workers are spawned and
  warmed before the clock starts, so the number is the steady-state
  throughput a replay farm would see, not cold spawn cost. Beating
  serial requires a second physical core; the assertion engages only
  when ``os.sched_getaffinity`` reports one (2x at 4+ cores, 1.3x at
  2–3). On a single-core machine the honest number is below 1x and is
  still reported.

Every mode must produce the identical batch report — per-command
statuses are compared against the serial baseline before any timing
number is trusted.

Setting ``BENCH_QUICK=1`` runs a smoke-test configuration (small
batch, short sessions, no floor assertions) — CI uses it to prove the
harness runs end to end without paying for a stable measurement on
shared runners. The emitted ``BENCH_batch.json`` carries a ``quick``
flag so the trend gate never diffs a smoke run against a full baseline.
"""

import gc
import os
import time

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.session.batch import BatchRunner
from repro.session.policies import TimingPolicy
from repro.session.pool import WorkerPool, WorkerSpec
from repro.workloads.sessions import sites_edit_session

#: Smoke-test mode: tiny workload, no timing assertion (for CI).
QUICK = bool(os.environ.get("BENCH_QUICK"))

#: Traces per batch (every trace is a fresh isolated session).
TRACES = 8 if QUICK else 16

#: Text length for the editing session (~640 commands when full).
SESSION_LENGTH = 40 if QUICK else 640

#: Scale factors measured per backend; 1 worker/shard is serial.
SCALE_SERIES = (2,) if QUICK else (2, 4)

#: Measurement rounds. Every round times every mode once, interleaved,
#: and each speedup is the median of *per-round* ratios against that
#: round's serial time — pairing inside a round cancels the slow
#: monotonic drift of the process (heap growth, allocator state) that
#: would otherwise penalize whichever mode happens to run last.
ROUNDS = 1 if QUICK else 5

#: Cores this process may actually run on (cgroup/affinity aware).
CORES = len(os.sched_getaffinity(0))

#: Required warm-pool speedup over serial, by available parallelism.
MIN_SPEEDUP = 2.0 if CORES >= 4 else 1.3

#: Sharding runs the same instructions on the same core; the floor
#: allows for scope-switch bookkeeping (~2-4% measured) plus the
#: ±5% run-to-run noise of a shared container, no more.
SHARD_FLOOR = 0.90


def sites_factory():
    """Per-session browser factory; workers resolve it by reference."""
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


def record_session(text_length=SESSION_LENGTH):
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="x" * text_length)
    return recorder.trace


def run_mode(trace, workers=1, shards=1, pool=None):
    """Replay ``TRACES`` copies of ``trace``; returns (seconds, batch)."""
    runner = BatchRunner(sites_factory, timing=TimingPolicy.no_wait(),
                         workers=workers, shards=shards, pool=pool)
    gc.collect()  # level the allocator field between modes
    start = time.perf_counter()
    batch = runner.run([trace] * TRACES)
    seconds = time.perf_counter() - start
    assert batch.trace_count == TRACES
    assert batch.replayed_count == TRACES * len(trace), batch.summary()
    return seconds, batch


def _median(values):
    return sorted(values)[len(values) // 2]


def measure_modes(trace):
    """Paired-rounds timing per backend.

    Returns ``[(label, row_fields, median_seconds, median_speedup,
    batch)]`` in sweep order. Pools are created and warmed once (spawn
    and first-build cost amortize across a campaign; the steady-state
    number is the one a replay farm sees). Every round times every
    mode back to back, and each speedup is the median of per-round
    ratios against that round's serial time — so process drift shifts
    a whole round, not the comparison.
    """
    spec = WorkerSpec("benchmarks.bench_batch:sites_factory")
    pools = {}
    modes = [("serial", {"mode": "serial", "workers": 1}, {})]
    for shards in SCALE_SERIES:
        modes.append(("shard-%d" % shards,
                      {"mode": "sharded", "shards": shards},
                      {"shards": shards}))
    for workers in SCALE_SERIES:
        pool = WorkerPool(spec, workers,
                          timing=TimingPolicy.no_wait()).start()
        # Warm off the clock: every worker imports the stack, builds
        # its factory, and replays once before timing starts.
        pool.run([("warmup-%d" % i, trace.to_text())
                  for i in range(2 * workers)])
        pools[workers] = pool
        modes.append(("pool-%d" % workers,
                      {"mode": "pool", "workers": workers},
                      {"pool": pool}))
    try:
        timings = {label: [] for label, _, _ in modes}
        ratios = {label: [] for label, _, _ in modes}
        batches = {}
        for _ in range(ROUNDS):
            serial_seconds = None
            for label, _, kwargs in modes:
                seconds, batch = run_mode(trace, **kwargs)
                if serial_seconds is None:  # serial is always first
                    serial_seconds = seconds
                timings[label].append(seconds)
                ratios[label].append(serial_seconds / seconds)
                batches[label] = batch
        return [(label, fields, _median(timings[label]),
                 _median(ratios[label]), batches[label])
                for label, fields, _ in modes]
    finally:
        for pool in pools.values():
            pool.close()


def test_batch_scaleout_sweep(reporter, json_reporter):
    trace = record_session()

    series = []
    baseline_batch = None
    for label, fields, seconds, speedup, batch in measure_modes(trace):
        if baseline_batch is None:
            baseline_batch = batch
        row = dict(fields)
        row.update({
            "seconds": round(seconds, 3),
            "traces_per_second": round(TRACES / seconds, 2),
            "speedup": round(speedup, 2),
        })
        series.append(row)
        # Correctness guard: the backend must not change replay
        # outcomes — same summary, same per-command statuses.
        assert batch.summary() == baseline_batch.summary(), label
        for mine, theirs in zip(batch.runs, baseline_batch.runs):
            assert [r.status for r in mine.report.results] \
                == [r.status for r in theirs.report.results], label

    lines = ["%-12s %-12s %-16s %-10s"
             % ("mode", "seconds", "traces/s", "speedup")]
    for row in series:
        name = row["mode"]
        if name != "serial":
            name += "-%d" % row.get("shards", row.get("workers"))
        lines.append("%-12s %-12.3f %-16.2f %-10.2fx"
                     % (name, row["seconds"], row["traces_per_second"],
                        row["speedup"]))
    lines.append("")
    lines.append("%d usable core(s); shard floor %s; pool floor %s"
                 % (CORES,
                    ">= %.2fx" % SHARD_FLOOR if not QUICK else "off",
                    ">= %.1fx" % MIN_SPEEDUP
                    if not QUICK and CORES >= 2 else "off"))
    reporter("Scale-out batch replay — %d x %d-command Sites sessions"
             % (TRACES, len(trace)), lines)

    json_reporter("batch", {
        "benchmark": "batch",
        "quick": QUICK,
        "traces": TRACES,
        "commands_per_trace": len(trace),
        "cores": CORES,
        "series": series,
        "shard_floor_required": SHARD_FLOOR if not QUICK else None,
        "min_pool_speedup_required":
            MIN_SPEEDUP if not QUICK and CORES >= 2 else None,
    })

    if QUICK:
        return
    # Sharding never gets to be worse than serial: same work, same
    # core, only a scope switch per command.
    for row in series:
        if row["mode"] == "sharded":
            assert row["speedup"] >= SHARD_FLOOR, (
                "sharded replay at %d shards ran at %.2fx serial, below "
                "the %.2fx floor" % (row["shards"], row["speedup"],
                                     SHARD_FLOOR))
    # A pool cannot beat serial replay without a second core to run on;
    # on single-core machines the numbers above are still written, but
    # the assertion would only measure process-management overhead.
    if CORES >= 2:
        pool_rows = [row for row in series if row["mode"] == "pool"]
        best = max(row["speedup"] for row in pool_rows)
        assert best >= MIN_SPEEDUP, (
            "best warm-pool speedup %.2fx across %r workers, below the "
            "required %.1fx on %d cores"
            % (best, [row["workers"] for row in pool_rows], MIN_SPEEDUP,
               CORES)
        )
