"""Parallel batch replay: pooled vs. serial throughput.

The worker pool exists to scale batch replay across cores: N worker
processes pull traces from a shared queue and stream portable results
back to the parent. This bench replays a batch of Sites editing
sessions serially (``workers=1``, the untouched in-process path) and
through pools of increasing size, reports traces/second per pool size,
asserts the parallel speedup, and writes ``BENCH_batch.json`` with the
whole series.

The speedup assertion engages only when the machine can physically
deliver one (``os.sched_getaffinity`` reports >= 2 usable cores): a
pool of single-core workers is pure process-management overhead, and
the honest number for that configuration is below 1x. The required
speedup scales with the usable cores — 2x at 4+, 1.3x at 2-3.

Setting ``BENCH_QUICK=1`` runs a smoke-test configuration (small
batch, short sessions, no speedup assertion) — CI uses it to prove the
pooled harness still runs end to end without paying for a stable
timing measurement on shared runners.
"""

import os
import time

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.session.batch import BatchRunner
from repro.session.policies import TimingPolicy
from repro.workloads.sessions import sites_edit_session

#: Smoke-test mode: tiny workload, no timing assertion (for CI).
QUICK = bool(os.environ.get("BENCH_QUICK"))

#: Traces per batch (every trace is a fresh isolated session).
TRACES = 8 if QUICK else 32

#: Text length for the editing session (~640 commands when full).
SESSION_LENGTH = 40 if QUICK else 640

#: Pool sizes measured; 1 is the serial in-process baseline.
WORKER_SERIES = (1, 2) if QUICK else (1, 2, 4)

#: Cores this process may actually run on (cgroup/affinity aware).
CORES = len(os.sched_getaffinity(0))

#: Required pooled speedup over serial, by available parallelism.
MIN_SPEEDUP = 2.0 if CORES >= 4 else 1.3


def sites_factory():
    """Per-session browser factory; workers resolve it by reference."""
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


def record_session(text_length=SESSION_LENGTH):
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="x" * text_length)
    return recorder.trace


def measure(trace, workers):
    """Replay ``TRACES`` copies of ``trace``; returns (seconds, batch)."""
    runner = BatchRunner(sites_factory, timing=TimingPolicy.no_wait(),
                         workers=workers)
    start = time.perf_counter()
    batch = runner.run([trace] * TRACES)
    seconds = time.perf_counter() - start
    assert batch.trace_count == TRACES
    assert batch.replayed_count == TRACES * len(trace), batch.summary()
    return seconds, batch


def test_batch_pool_speedup(reporter, json_reporter):
    trace = record_session()

    series = []
    baseline = None
    for workers in WORKER_SERIES:
        seconds, batch = measure(trace, workers)
        if baseline is None:
            baseline = (seconds, batch)
        series.append({
            "workers": workers,
            "seconds": round(seconds, 3),
            "traces_per_second": round(TRACES / seconds, 2),
            "speedup": round(baseline[0] / seconds, 2),
        })
        # Correctness guard: pooling must not change replay outcomes.
        assert batch.summary() == baseline[1].summary()
        for mine, theirs in zip(batch.runs, baseline[1].runs):
            assert [r.status for r in mine.report.results] \
                == [r.status for r in theirs.report.results]

    lines = ["%-10s %-12s %-16s %-10s"
             % ("workers", "seconds", "traces/s", "speedup")]
    for row in series:
        lines.append("%-10d %-12.3f %-16.2f %-10.2fx"
                     % (row["workers"], row["seconds"],
                        row["traces_per_second"], row["speedup"]))
    lines.append("")
    lines.append("%d usable core(s); speedup assertion %s"
                 % (CORES,
                    "requires >= %.1fx" % MIN_SPEEDUP
                    if not QUICK and CORES >= 2 else "off"))
    reporter("Parallel batch replay — %d x %d-command Sites sessions"
             % (TRACES, len(trace)), lines)

    json_reporter("batch", {
        "benchmark": "batch",
        "traces": TRACES,
        "commands_per_trace": len(trace),
        "cores": CORES,
        "series": series,
        "min_speedup_required":
            MIN_SPEEDUP if not QUICK and CORES >= 2 else None,
    })

    # A pool cannot beat serial replay without a second core to run
    # on; on single-core machines (and quick smoke runs) the numbers
    # above are still written, but the assertion would only measure
    # process-management overhead.
    if not QUICK and CORES >= 2:
        best = max(row["speedup"] for row in series[1:])
        assert best >= MIN_SPEEDUP, (
            "best pooled speedup %.2fx across %r workers, below the "
            "required %.1fx on %d cores"
            % (best, [row["workers"] for row in series[1:]], MIN_SPEEDUP,
               CORES)
        )
