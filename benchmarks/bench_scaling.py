"""Scaling series: record and replay throughput vs. session length.

Not a table from the paper, but the capacity claim behind "always-on"
recording needs a curve: per-action cost must stay flat as sessions
grow. We record and replay editing sessions of increasing length and
report commands/second for both directions.
"""

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.workloads.sessions import sites_edit_session

LENGTHS = [10, 40, 160, 640]


def record_session(text_length):
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="x" * text_length)
    return recorder.trace


def test_scaling_series(benchmark, reporter):
    import time

    rows = []
    for length in LENGTHS:
        start = time.perf_counter()
        trace = record_session(length)
        record_seconds = time.perf_counter() - start

        browser, _ = make_browser([SitesApplication], developer_mode=True)
        start = time.perf_counter()
        report = WarrReplayer(browser,
                              timing=TimingMode.no_wait()).replay(trace)
        replay_seconds = time.perf_counter() - start
        assert report.replayed_count == len(trace)
        rows.append((len(trace), len(trace) / record_seconds,
                     len(trace) / replay_seconds))

    lines = ["%-12s %-22s %-22s" % ("commands", "record (cmds/s)",
                                    "replay (cmds/s)")]
    for count, record_rate, replay_rate in rows:
        lines.append("%-12d %-22.0f %-22.0f" % (count, record_rate,
                                                replay_rate))
    reporter("Scaling — record/replay throughput vs session length", lines)

    # Per-command cost must not blow up with session length: the longest
    # session's throughput stays within 20x of the shortest's.
    assert rows[-1][1] > rows[0][1] / 20
    assert rows[-1][2] > rows[0][2] / 20

    # And give pytest-benchmark one stable number: mid-size record+replay.
    def mid_size_round_trip():
        trace = record_session(80)
        browser, _ = make_browser([SitesApplication], developer_mode=True)
        return WarrReplayer(browser, timing=TimingMode.no_wait()).replay(trace)

    result = benchmark(mid_size_round_trip)
    assert result.replayed_count > 0
