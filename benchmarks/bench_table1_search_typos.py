"""Table I: percentage of query typos detected and fixed per engine.

Paper (DSN'11):   Google 100%   Bing 59.1%   Yahoo! 84.4%

The harness injects one typo into each of the 186 frequent queries and
asks each engine clone to correct it; a typo counts as detected+fixed
when the corrected query equals the original. The full-browser variant
(recorded session + typo-substituted replay, the WebErr methodology) is
exercised on a sample to confirm the UI path agrees with the checker.
"""

from repro.apps.framework import make_browser
from repro.apps.search import (
    BingSearchApplication,
    GoogleSearchApplication,
    YahooSearchApplication,
)
from repro.util.rng import SeededRandom
from repro.workloads.queries import FREQUENT_QUERIES
from repro.workloads.sessions import search_session
from repro.workloads.typos import TypoInjector

ENGINES = [
    (GoogleSearchApplication, 100.0),
    (BingSearchApplication, 59.1),
    (YahooSearchApplication, 84.4),
]

SEED = 42


def make_typos():
    return TypoInjector(SeededRandom(SEED)).inject_all(FREQUENT_QUERIES)


def detection_rate(engine_class, typos):
    application = engine_class(rng=SeededRandom(0))
    fixed = sum(
        1 for typo in typos
        if application.checker.correct(typo.corrupted) == typo.original)
    return 100.0 * fixed / len(typos)


def test_table1(benchmark, reporter):
    typos = make_typos()

    def run_all_engines():
        return {
            engine_class.engine_name: detection_rate(engine_class, typos)
            for engine_class, _ in ENGINES
        }

    rates = benchmark(run_all_engines)

    lines = ["%-22s %-12s %-12s" % ("Search engine", "Measured", "Paper")]
    for engine_class, paper_rate in ENGINES:
        name = engine_class.engine_name
        lines.append("%-22s %-12s %-12s" % (
            name, "%.1f%%" % rates[name], "%.1f%%" % paper_rate))
    reporter("Table I — query typos detected and fixed (186 queries, "
             "seed %d)" % SEED, lines)

    # The shape: Google catches everything; ordering matches the paper;
    # magnitudes land within a few points.
    assert rates["Google"] == 100.0
    assert rates["Yahoo!"] > rates["Bing"]
    assert abs(rates["Yahoo!"] - 84.4) < 8.0
    assert abs(rates["Bing"] - 59.1) < 8.0


def test_table1_through_the_browser(reporter):
    """Spot-check: the checker-level rates hold on the real UI path."""
    typos = make_typos()[:12]
    agreements = 0
    for engine_class, _ in ENGINES:
        for typo in typos:
            browser, (application,) = make_browser([engine_class])
            _, tab = search_session(browser, "http://%s" % engine_class.host,
                                    typo.corrupted)
            banner = application.correction_shown(tab.document)
            direct = application.checker.correct(typo.corrupted)
            shown = banner if banner is not None else typo.corrupted
            assert shown == direct
            agreements += 1
    reporter("Table I cross-check — browser UI vs spell checker",
             ["%d/%d sampled searches agree between the results page "
              "banner and the checker" % (agreements, 3 * len(typos))])
