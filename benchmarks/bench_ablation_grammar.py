"""Ablation C: grammar-confined error injection vs exhaustive mutation.

The paper motivates the grammar approach with a blow-up argument: a
100-command trace admits 100! reorderings, "yet tests that alternatively
fill in letters of each field have low bug-detection power". This
benchmark quantifies the reduction on a real recorded trace, and shows
the failed-prefix pruning heuristic skipping doomed variants.
"""

import math

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.weberr.generator import TraceGenerator
from repro.weberr.navigation import NavigationErrorInjector
from repro.weberr.runner import WebErr
from repro.workloads.sessions import sites_edit_session


def record_trace(text="Hello world!"):
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text=text)
    return recorder.trace


def browser_factory():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


def count_grammar_variants(trace):
    weberr = WebErr(browser_factory)
    _, grammar = weberr.infer(trace, label="EditSite")
    injector = NavigationErrorInjector(grammar)
    return grammar, sum(1 for _ in injector.all_variants())


def test_grammar_confinement(benchmark, reporter):
    trace = record_trace()
    grammar, variant_count = benchmark(count_grammar_variants, trace)

    n = len(trace)
    exhaustive_reorderings = math.factorial(n)
    lines = [
        "trace length:                        %d commands" % n,
        "exhaustive reorderings (n!):         %d" % exhaustive_reorderings,
        "grammar rules:                       %d" % len(grammar.rules),
        "grammar-confined error variants:     %d" % variant_count,
        "reduction factor:                    %.1e" % (
            exhaustive_reorderings / max(variant_count, 1)),
        "",
        "paper: 'from a trace of 100 WaRR Commands ... one can generate",
        "permutations(100) = 100! new traces' — confinement to grammar",
        "rules keeps the test count linear-ish in trace size.",
    ]
    reporter("Ablation C — error-injection search-space reduction", lines)

    assert variant_count < exhaustive_reorderings
    assert variant_count < 20 * n


def test_prefix_pruning_skips_doomed_traces(reporter):
    """The first reduction heuristic on a real campaign."""
    trace = record_trace(text="Hey")
    weberr = WebErr(browser_factory, max_tests=None)
    _, grammar = weberr.infer(trace, label="EditSite")

    injector = NavigationErrorInjector(grammar)
    variants = list(injector.all_variants())

    # Prepend a variant whose first command is unreplayable, then feed
    # variants sharing that prefix: the generator must skip them.
    from repro.core.commands import ClickCommand
    from repro.weberr.grammar import Rule, Terminal

    broken_head = grammar.copy()
    doomed_click = ClickCommand("//video[@id='gone']", x=-1, y=-1)
    start_symbols = [Terminal(doomed_click)] + \
        list(broken_head.rule(broken_head.start).symbols)
    broken_head.rules[broken_head.start] = Rule(broken_head.start,
                                                start_symbols)

    generator = TraceGenerator()
    produced = list(generator.traces([("doomed", broken_head)]))
    _, doomed_trace = produced[0]
    generator.report_failure(doomed_trace, 0)

    # A second grammar starting with the same doomed command is pruned.
    second = broken_head.copy()
    remaining = list(generator.traces([("same prefix", second)]))

    reporter("Ablation C (continued) — failed-prefix pruning",
             ["variants enumerated: %d" % len(variants),
              "doomed prefix recorded after 1 failing replay",
              "same-prefix variants pruned: %d" % generator.pruned])
    assert remaining == []
    assert generator.pruned == 1
