"""Chaos overhead: fault injection must be (nearly) free while off.

``repro.chaos`` promises that instrumented code pays one guard check
(``chaos.current() is None``) while no injector is installed. This
bench measures that promise and writes ``BENCH_chaos.json``:

1. **Guard micro-benchmark** — the IPC pump hot loop run through the
   public guarded entry point (``IpcChannel.pump``) vs. a replica of
   the pump as it was before chaos existed (telemetry guard included,
   chaos guard gone). The relative gap IS the chaos-off overhead,
   measured in-process back to back, and is asserted below
   ``MAX_OFF_OVERHEAD`` (5%).
2. **End-to-end replays** — whole-session replay throughput with chaos
   off vs. a *disabled* profile installed vs. the ``default`` profile
   with self-healing retries. A zero-rate layer now compiles down to a
   precomputed boolean on the injector — no rate lookup, no randomness,
   no counter bump — so a fully disabled profile must cost under
   ``MAX_DISABLED_COST`` (10%) end to end, measured as the median of
   paired off/disabled rounds and asserted in full mode. The chaotic
   rate is color (faults and recoveries make it incomparable).

Setting ``BENCH_QUICK=1`` runs a smoke configuration (tiny workload,
no timing assertions) for CI.
"""

import os
import time

from repro import chaos, telemetry
from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.browser.ipc import InputMessage, IpcChannel
from repro.core.recorder import WarrRecorder
from repro.events.event import MouseEvent
from repro.session.engine import SessionEngine
from repro.session.policies import RetryPolicy, TimingPolicy
from repro.workloads.sessions import sites_edit_session

#: Smoke-test mode: tiny workload, no timing assertion (for CI).
QUICK = bool(os.environ.get("BENCH_QUICK"))

#: Text length for the recorded editing session.
SESSION_LENGTH = 40 if QUICK else 320

#: Maximum chaos-off overhead on the guarded IPC pump hot path.
MAX_OFF_OVERHEAD = 0.05

#: Maximum end-to-end cost of an installed all-zero-rate profile.
MAX_DISABLED_COST = 0.10

#: Paired off/disabled replay rounds for the disabled-cost estimate.
REPLAY_PAIRS = 1 if QUICK else 9

#: Messages per measurement round of the guard micro-benchmark. The
#: per-message fast path is a few dozen nanoseconds, so rounds must be
#: long enough (tens of milliseconds) for a <5% gap to be measurable.
MESSAGES = 2_000 if QUICK else 100_000

#: Paired rounds of the guard micro-benchmark. The overhead estimate
#: is the *median* of per-pair ratios: a scheduler spike ruins one
#: pair, not the estimate (best-of-N is not robust on shared runners).
REPEATS = 1 if QUICK else 15


def record_session():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="x" * SESSION_LENGTH)
    return recorder.trace


def replay_once(trace, mode):
    """Replay on a fresh browser; returns (seconds, report).

    ``mode``: "off" (no injector), "disabled" (zero-rate profile
    installed), or "default" (mild chaos + self-healing retries).
    """
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    retry = RetryPolicy.default() if mode == "default" else None
    engine = SessionEngine(browser, timing=TimingPolicy.no_wait(),
                           retry=retry)
    start = time.perf_counter()
    if mode == "off":
        report = engine.run(trace)
    else:
        with chaos.active(chaos.get_profile(mode), seed=0,
                          clock=browser.clock):
            report = engine.run(trace)
    seconds = time.perf_counter() - start
    if mode != "default":
        assert report.complete, report.summary()
    return seconds, report


def measure_replay(trace, mode):
    best = None
    for _ in range(REPEATS):
        seconds, _ = replay_once(trace, mode)
        if best is None or seconds < best:
            best = seconds
    return len(trace) / best


def measure_disabled_cost(trace):
    """Paired off/disabled replays; returns (cost, off_rate, dis_rate).

    Each pair runs both modes back to back under the same machine
    state; the cost is the median of per-pair ratios, so one scheduler
    spike cannot fake (or hide) a regression the way a best-of
    comparison between separately-timed modes can.
    """
    pairs = [(replay_once(trace, "off")[0],
              replay_once(trace, "disabled")[0])
             for _ in range(REPLAY_PAIRS)]
    ratios = sorted(d / o for o, d in pairs)
    off_sorted = sorted(o for o, _ in pairs)
    dis_sorted = sorted(d for _, d in pairs)
    mid = len(pairs) // 2
    return (ratios[mid] - 1.0, len(trace) / off_sorted[mid],
            len(trace) / dis_sorted[mid])


def _fresh_channel():
    channel = IpcChannel()
    channel.connect(lambda message: None)
    return channel


def _message():
    return InputMessage(InputMessage.MOUSE,
                        MouseEvent("mousepress", client_x=1, client_y=1,
                                   timestamp=0.0))


def bare_pump(channel):
    """The pump exactly as it was before chaos existed: the telemetry
    guard stays (that cost predates this subsystem and has its own
    budget in bench_telemetry), only the chaos guard is gone. The gap
    against the real pump is therefore the chaos-off cost alone."""
    if telemetry.current() is not None:  # pragma: no cover - off here
        raise RuntimeError("bench runs with tracing off")
    delivered = 0
    queue = channel._queue
    receiver = channel._receiver
    while queue:
        receiver(queue.popleft())
        delivered += 1
    channel.delivered_count += delivered
    return delivered


def pump_round(pump):
    """Time ``MESSAGES`` send+pump round trips through ``pump``."""
    channel = _fresh_channel()
    messages = [_message() for _ in range(64)]
    start = time.perf_counter()
    for i in range(0, MESSAGES, 64):
        for message in messages:
            channel.send(message)
        pump(channel)
    return time.perf_counter() - start


def measure_guard_overhead():
    """Chaos-off overhead of the guarded pump entry point.

    Runs guarded/bare back to back ``REPEATS`` times and returns
    ``(median_ratio - 1, guarded_median_s, bare_median_s)``. Pairing
    keeps both sides under the same machine state; the median ratio
    shrugs off the occasional scheduler spike.
    """
    assert chaos.current() is None
    pairs = []
    for _ in range(REPEATS):
        guarded = pump_round(lambda channel: channel.pump())
        bare = pump_round(bare_pump)
        pairs.append((guarded, bare))
    ratios = sorted(g / b for g, b in pairs)
    guarded_sorted = sorted(g for g, _ in pairs)
    bare_sorted = sorted(b for _, b in pairs)
    mid = len(pairs) // 2
    return ratios[mid] - 1.0, guarded_sorted[mid], bare_sorted[mid]


def test_chaos_off_overhead(benchmark, reporter, json_reporter):
    guard_overhead, guarded_s, bare_s = measure_guard_overhead()

    trace = record_session()
    disabled_cost, off_rate, disabled_rate = measure_disabled_cost(trace)
    chaotic_rate = measure_replay(trace, "default")

    lines = [
        "guarded IPC pump hot loop (%d messages, median of %d pairs):"
        % (MESSAGES, REPEATS),
        "  %-30s %.4fs" % ("pre-chaos pump replica", bare_s),
        "  %-30s %.4fs" % ("guarded pump (chaos off)", guarded_s),
        "  overhead: %+.2f%% (budget < %.0f%%)"
        % (guard_overhead * 100.0, MAX_OFF_OVERHEAD * 100.0),
        "",
        "end-to-end replay, %d commands (median of %d pairs):"
        % (len(trace), REPLAY_PAIRS),
        "  %-30s %.0f cmds/s" % ("chaos off", off_rate),
        "  %-30s %.0f cmds/s" % ("disabled profile installed",
                                 disabled_rate),
        "  %-30s %.0f cmds/s" % ("default profile + retries",
                                 chaotic_rate),
        "  disabled-profile cost: %+.1f%% (budget < %.0f%%)"
        % (disabled_cost * 100.0, MAX_DISABLED_COST * 100.0),
    ]
    reporter("Chaos overhead — guard check and disabled profile", lines)

    json_reporter("chaos", {
        "benchmark": "chaos",
        "quick": QUICK,
        "messages": MESSAGES,
        "guard": {
            "bare_seconds": round(bare_s, 4),
            "guarded_seconds": round(guarded_s, 4),
            "chaos_off_overhead": round(guard_overhead, 4),
            "budget": MAX_OFF_OVERHEAD,
        },
        "replay": {
            "commands": len(trace),
            "chaos_off_commands_per_second": round(off_rate, 1),
            "disabled_profile_commands_per_second": round(disabled_rate, 1),
            "default_profile_commands_per_second": round(chaotic_rate, 1),
            "disabled_profile_cost": round(disabled_cost, 4),
            "disabled_cost_budget": MAX_DISABLED_COST,
        },
    })

    # Timing assertions are meaningless on a quick smoke run.
    if not QUICK:
        assert guard_overhead < MAX_OFF_OVERHEAD, (
            "chaos-off guard costs %+.2f%% on the IPC pump hot path, "
            "over the %.0f%% budget"
            % (guard_overhead * 100.0, MAX_OFF_OVERHEAD * 100.0)
        )
        assert disabled_cost < MAX_DISABLED_COST, (
            "an installed all-zero-rate profile costs %+.1f%% end to "
            "end, over the %.0f%% budget — a zeroed layer should never "
            "reach the injector"
            % (disabled_cost * 100.0, MAX_DISABLED_COST * 100.0)
        )

    # pytest-benchmark number: one replay with the disabled profile.
    def disabled_replay():
        return replay_once(trace, "disabled")[1]

    result = benchmark(disabled_replay)
    assert result.complete
