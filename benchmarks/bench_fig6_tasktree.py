"""Figure 6: the task tree inferred for editing a website.

The paper's figure shows EditSite decomposed into subtasks (Authenticate,
Edit, ...) with leaf-level user actions. We record a two-phase session —
sign in at the portal-style login, then edit — and run WebErr's
grammar-inference pipeline; the printed tree is this reproduction's
Figure 6.
"""

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.weberr.inference import TaskTreeBuilder, infer_grammar
from repro.workloads.sessions import sites_edit_session

EDIT_URL = "http://sites.example.com/edit/home"


def record_edit_trace():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin(EDIT_URL)
    sites_edit_session(browser, text="Hello world!")
    return recorder.trace


def browser_factory():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


def test_figure6_task_tree(benchmark, reporter):
    trace = record_edit_trace()

    def infer():
        builder = TaskTreeBuilder(browser_factory)
        tree = builder.build(trace, label="EditSite")
        grammar = infer_grammar(tree, trace.start_url)
        return tree, grammar

    tree, grammar = benchmark(infer)

    reporter("Figure 6 — task tree inferred for editing a website",
             tree.pretty().splitlines())
    reporter("Figure 6 (continued) — the induced user-interaction grammar",
             grammar.pretty().splitlines())

    # Structure: task root, page-level phases, element-level steps.
    assert tree.name == "EditSite"
    assert tree.children, "no phases inferred"
    edit_phase = tree.children[0]
    assert len(edit_phase.children) == 3  # start / typing / save
    # The grammar regenerates the exact recorded interaction.
    assert grammar.to_trace().commands == list(trace.commands)
