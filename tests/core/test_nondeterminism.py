"""Recording and replaying page-script nondeterminism."""

import pytest

from repro.core.nondeterminism import (
    KIND_RANDOM,
    KIND_TIME,
    NondeterminismLog,
    NondeterminismRecorder,
    NondeterminismReplayer,
)
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from repro.util.errors import TraceFormatError
from tests.browser.helpers import build_browser, url


def lottery_script(window):
    """A page whose behaviour depends on randomness: clicking the box
    shows a 'ticket number' drawn from Math.random()."""
    box = window.get_element_by_id("box")
    window.env.tickets = []

    def on_click(event):
        ticket = int(window.random() * 1_000_000)
        window.env.tickets.append(ticket)
        box.set_attribute("data-ticket", str(ticket))

    box.add_event_listener("click", on_click)


def lottery_browser(developer_mode=False, seed=1234):
    browser = build_browser(
        extra_routes={
            "/lottery": lambda request:
                '<html><head><title>Lottery</title></head><body>'
                '<div id="box" contenteditable>draw</div>'
                '<script data-script="test.lottery"></script></body></html>',
        },
        extra_scripts={"test.lottery": lottery_script},
        developer_mode=developer_mode,
    )
    browser._script_rng.seed = seed  # annotate only; rng already built
    return browser


class TestLog:
    def test_append_and_iterate(self):
        log = NondeterminismLog()
        log.append(KIND_RANDOM, 0.25)
        log.append(KIND_TIME, 1500.0)
        assert list(log) == [(KIND_RANDOM, 0.25), (KIND_TIME, 1500.0)]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            NondeterminismLog().append("entropy", 1.0)

    def test_text_round_trip(self):
        log = NondeterminismLog([(KIND_RANDOM, 0.125), (KIND_TIME, 42.5)])
        assert NondeterminismLog.from_text(log.to_text()).entries == log.entries

    def test_missing_header_rejected(self):
        with pytest.raises(TraceFormatError):
            NondeterminismLog.from_text("random 0.5\n")

    def test_save_load(self, tmp_path):
        log = NondeterminismLog([(KIND_RANDOM, 0.75)])
        path = tmp_path / "run.ndlog"
        log.save(path)
        assert NondeterminismLog.load(path).entries == log.entries


class TestRecording:
    def test_random_draws_are_logged(self):
        browser = lottery_browser()
        nd_recorder = NondeterminismRecorder().attach(browser)
        tab = browser.new_tab(url("/lottery"))
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.click_element(tab.find('//div[@id="box"]'))
        assert len(nd_recorder.log) == 2
        assert all(kind == KIND_RANDOM for kind, _ in nd_recorder.log)

    def test_time_reads_are_logged(self):
        browser = build_browser(
            extra_routes={
                "/clocked": lambda request:
                    '<body><script data-script="test.clocked"></script></body>',
            },
            extra_scripts={
                "test.clocked": lambda window: setattr(
                    window.env, "loaded_at", window.now()),
            },
        )
        nd_recorder = NondeterminismRecorder().attach(browser)
        browser.new_tab(url("/clocked"))
        assert [kind for kind, _ in nd_recorder.log] == [KIND_TIME]

    def test_detach_stops_logging(self):
        browser = lottery_browser()
        nd_recorder = NondeterminismRecorder().attach(browser)
        tab = browser.new_tab(url("/lottery"))
        nd_recorder.detach()
        tab.click_element(tab.find('//div[@id="box"]'))
        assert len(nd_recorder.log) == 0


class TestReplayInjection:
    def record_lottery_session(self):
        browser = lottery_browser()
        warr = WarrRecorder().attach(browser)
        warr.begin(url("/lottery"))
        nd_recorder = NondeterminismRecorder().attach(browser)
        tab = browser.new_tab(url("/lottery"))
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.click_element(tab.find('//div[@id="box"]'))
        tickets = list(tab.engine.window.env.tickets)
        return warr.trace, nd_recorder.log, tickets

    def test_replay_with_log_reproduces_random_values(self):
        trace, nd_log, original_tickets = self.record_lottery_session()
        browser = lottery_browser(developer_mode=True, seed=999)
        NondeterminismReplayer(nd_log).install(browser)
        report = WarrReplayer(browser).replay(trace)
        assert report.complete
        replayed = browser.tabs[0].engine.window.env.tickets
        assert replayed == original_tickets

    def test_replay_without_log_diverges(self):
        """Different browser seed + no injection: tickets differ, which
        is exactly the nondeterminism the extension eliminates."""
        trace, _, original_tickets = self.record_lottery_session()
        browser = build_browser(developer_mode=True)
        # rebuild lottery app on a browser with another seed
        browser = lottery_browser(developer_mode=True)
        browser._script_rng.__init__(987654)
        WarrReplayer(browser).replay(trace)
        replayed = browser.tabs[0].engine.window.env.tickets
        assert replayed != original_tickets

    def test_exhausted_log_counts_overruns(self):
        trace, nd_log, _ = self.record_lottery_session()
        nd_log.entries = nd_log.entries[:1]  # drop the second draw
        browser = lottery_browser(developer_mode=True)
        replayer = NondeterminismReplayer(nd_log).install(browser)
        WarrReplayer(browser).replay(trace)
        assert replayer.overruns == 1
        assert replayer.consumed == 1
