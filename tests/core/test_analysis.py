"""Trace analytics."""

import pytest

from repro.core.analysis import analyze_trace
from repro.core.commands import (
    ClickCommand,
    DoubleClickCommand,
    DragCommand,
    SwitchFrameCommand,
    TypeCommand,
)
from repro.core.trace import WarrTrace


def rich_trace():
    return WarrTrace(start_url="http://x/", commands=[
        ClickCommand("//start", elapsed_ms=1000),
        TypeCommand("//field", key="h", code=72, elapsed_ms=100),
        TypeCommand("//field", key="i", code=73, elapsed_ms=100),
        TypeCommand("//field", key="!", code=49, elapsed_ms=100),
        SwitchFrameCommand("//iframe", elapsed_ms=0),
        DoubleClickCommand("//cell", elapsed_ms=400),
        DragCommand("//chart", dx=5, dy=5, elapsed_ms=200),
        ClickCommand("//save", elapsed_ms=2000),
    ])


@pytest.fixture
def stats():
    return analyze_trace(rich_trace())


def test_counts(stats):
    assert stats.command_count == 8
    assert stats.click_count == 2
    assert stats.double_click_count == 1
    assert stats.drag_count == 1
    assert stats.keystroke_count == 3
    assert stats.frame_switches == 1


def test_distinct_targets(stats):
    assert stats.distinct_targets == 6


def test_durations(stats):
    assert stats.total_duration_ms == 3900
    assert stats.longest_pause_ms == 2000
    assert stats.median_delay_ms in (100, 200)


def test_typing_speed(stats):
    # 3 keystrokes over 300 ms = 0.6 words over 0.005 min = 120 wpm.
    assert stats.typing_speed_wpm == pytest.approx(120.0)


def test_typed_text_collects_printables(stats):
    assert stats.typed_text == "hi!"


def test_lines_render(stats):
    text = "\n".join(stats.lines())
    assert "commands:          8" in text
    assert "typing speed" in text
    assert "frame switches" in text


def test_empty_trace():
    stats = analyze_trace(WarrTrace())
    assert stats.command_count == 0
    assert stats.typing_speed_wpm == 0.0
    assert stats.longest_pause_ms == 0
    assert stats.lines()  # still renders


def test_zero_delay_typing():
    trace = WarrTrace(commands=[
        TypeCommand("//f", key="a", code=65, elapsed_ms=0)])
    assert analyze_trace(trace).typing_speed_wpm == 0.0
