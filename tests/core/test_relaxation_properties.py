"""Property-based tests for the XPath relaxation pipeline."""

from hypothesis import given, settings, strategies as st

from repro.core.relaxation import RelaxationEngine, relax_candidates
from repro.dom.parser import parse_html
from repro.xpath.parser import parse_xpath

_expressions = st.sampled_from([
    '//td/div[@id="content"]',
    '//td/input[@id="w1_to"][@name="to"]',
    '//table/tr/td/div[@id="x"]',
    '//div/span[@id="start"]',
    '//td/div[text()="Save"]',
    '//form/input[@type="text"][@name="q"]',
    "/html/body/div[2]/span",
    '//ul/li[3]',
    '//a[contains(@href, "about")]',
])


@given(_expressions)
@settings(max_examples=30, deadline=None)
def test_candidates_are_parseable_and_unique(expression):
    candidates = relax_candidates(expression)
    rendered = [path.to_xpath() for _, path in candidates]
    assert len(rendered) == len(set(rendered))
    for text in rendered:
        parse_xpath(text)  # must not raise


@given(_expressions)
@settings(max_examples=30, deadline=None)
def test_original_is_always_first_candidate(expression):
    description, path = relax_candidates(expression)[0]
    assert description == "original"
    assert path == parse_xpath(expression)


@given(_expressions)
@settings(max_examples=30, deadline=None)
def test_candidates_never_grow_steps(expression):
    original_steps = len(parse_xpath(expression).steps)
    for _, path in relax_candidates(expression):
        assert len(path.steps) <= original_steps


@given(_expressions)
@settings(max_examples=30, deadline=None)
def test_candidates_never_add_predicates(expression):
    original = parse_xpath(expression)
    original_predicates = sum(len(s.predicates) for s in original.steps)
    for _, path in relax_candidates(expression):
        assert sum(len(s.predicates) for s in path.steps) <= original_predicates


# A document rich enough that most sampled expressions resolve.
_DOC = parse_html("""
<html><body>
  <div><span id="start">go</span></div>
  <form><input type="text" name="q"></form>
  <table><tr>
    <td><input id="w9_to" name="to"><div id="content">hi</div></td>
    <td><div>Save</div></td>
  </tr></table>
  <ul><li>1</li><li>2</li><li>3</li></ul>
  <div><a href="/about">about</a></div>
  <div><span>plain</span></div>
</body></html>
""")


@given(_expressions)
@settings(max_examples=30, deadline=None)
def test_resolution_matches_some_candidate(expression):
    """Whatever resolve() returns must be a match of one of the
    candidates it claims to have used."""
    from repro.xpath.evaluator import evaluate

    engine = RelaxationEngine()
    try:
        element, description = engine.resolve(expression, _DOC)
    except Exception:
        return  # nothing matches even relaxed: acceptable for this doc
    found = False
    for candidate_description, path in relax_candidates(expression):
        if element in evaluate(path, _DOC):
            found = True
            break
    assert found


def test_resolution_prefers_exact_when_exact_exists():
    engine = RelaxationEngine()
    element, description = engine.resolve('//td/div[@id="content"]', _DOC)
    assert description == "original"
    assert element.id == "content"
