"""The popup-logging extension (paper IV-D future work)."""

import pytest

from repro.core.popup_recorder import PopupRecorder, replay_popup_log
from repro.core.recorder import WarrRecorder
from tests.browser.helpers import build_browser, url


def test_popup_show_and_answer_logged():
    browser = build_browser()
    recorder = PopupRecorder().attach(browser)
    popup = browser.show_popup("Unsaved changes", ["Leave", "Stay"])
    popup.click_button("Stay")
    assert len(recorder.log) == 1
    event = recorder.log.events[0]
    assert event.title == "Unsaved changes"
    assert event.clicked == "Stay"
    assert event.answered


def test_unanswered_popup_logged_as_shown():
    browser = build_browser()
    recorder = PopupRecorder().attach(browser)
    browser.show_popup("Info", ["OK"])
    event = recorder.log.events[0]
    assert not event.answered
    assert recorder.log.answered_events() == []


def test_timestamps_use_virtual_clock():
    browser = build_browser()
    recorder = PopupRecorder().attach(browser)
    browser.clock.advance(500)
    popup = browser.show_popup("X", ["OK"])
    browser.clock.advance(250)
    popup.click_button("OK")
    event = recorder.log.events[0]
    assert event.shown_at == 500
    assert event.clicked_at == 750


def test_detach_restores_blind_spot():
    browser = build_browser()
    recorder = PopupRecorder().attach(browser)
    recorder.detach()
    popup = browser.show_popup("After detach", ["OK"])
    popup.click_button("OK")
    assert len(recorder.log) == 0


def test_double_attach_rejected():
    browser = build_browser()
    recorder = PopupRecorder().attach(browser)
    with pytest.raises(RuntimeError):
        recorder.attach(browser)


def test_popup_handlers_still_run_through_instrumentation():
    browser = build_browser()
    PopupRecorder().attach(browser)
    outcomes = []
    popup = browser.show_popup("Q", ["Yes", "No"])
    popup.on_button("Yes", lambda: outcomes.append("yes"))
    popup.click_button("Yes")
    assert outcomes == ["yes"]


def test_closes_the_warr_blind_spot():
    """With both recorders attached, a session mixing page clicks and
    popup answers is fully captured — commands in the trace, popup
    choices in the side log."""
    browser = build_browser()
    warr = WarrRecorder().attach(browser)
    warr.begin(url("/"))
    popups = PopupRecorder().attach(browser)

    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//span[@id="start"]'))
    dialog = browser.show_popup("Save before leaving?", ["Save", "Discard"])
    dialog.click_button("Save")
    tab.click_element(tab.find('//div[@id="box"]'))

    assert len(warr.trace) == 2  # page clicks
    assert len(popups.log) == 1  # the dialog answer
    assert popups.log.events[0].clicked == "Save"


def test_replay_auto_answers_recorded_dialogs():
    # Record.
    browser = build_browser()
    recorder = PopupRecorder().attach(browser)
    popup = browser.show_popup("Confirm delete", ["Delete", "Cancel"])
    popup.click_button("Cancel")
    log = recorder.log

    # Replay: the application shows the same dialog; the log answers it.
    replay_browser = build_browser()
    state = replay_popup_log(replay_browser, log)
    dialog = replay_browser.show_popup("Confirm delete", ["Delete", "Cancel"])
    dialog.on_button  # dialog exists
    assert dialog.dismissed  # answered automatically
    assert dialog.clicked[0][0] == "Cancel"
    assert state["consumed"] == 1
    assert state["unmatched"] == 0


def test_replay_counts_unmatched_dialogs():
    browser = build_browser()
    recorder = PopupRecorder().attach(browser)
    browser.show_popup("Never answered", ["OK"])

    replay_browser = build_browser()
    state = replay_popup_log(replay_browser, recorder.log)
    dialog = replay_browser.show_popup("Different title", ["OK"])
    assert not dialog.dismissed
    assert state["unmatched"] == 1
