"""WaRR Command model and the Figure-4 wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.core.commands import (
    ClickCommand,
    DoubleClickCommand,
    DragCommand,
    SwitchFrameCommand,
    TypeCommand,
    parse_command_line,
    DEFAULT_FRAME,
)
from repro.util.errors import TraceFormatError


class TestSerialization:
    def test_click_line_matches_figure4(self):
        command = ClickCommand('//div/span[@id="start"]', x=82, y=44,
                               elapsed_ms=1)
        assert command.to_line() == 'click //div/span[@id="start"] 82,44 1'

    def test_type_line_matches_figure4(self):
        command = TypeCommand('//td/div[@id="content"]', key="H", code=72,
                              elapsed_ms=3)
        assert command.to_line() == 'type //td/div[@id="content"] [H,72] 3'

    def test_space_key_payload(self):
        command = TypeCommand("//div", key=" ", code=32, elapsed_ms=12)
        assert command.to_line() == "type //div [ ,32] 12"

    def test_doubleclick_line(self):
        command = DoubleClickCommand("//div", x=5, y=6, elapsed_ms=9)
        assert command.to_line() == "doubleclick //div 5,6 9"

    def test_drag_line_with_negative_delta(self):
        command = DragCommand("//div", dx=-10, dy=4, elapsed_ms=2)
        assert command.to_line() == "drag //div -10,4 2"

    def test_switchframe_line(self):
        command = SwitchFrameCommand(DEFAULT_FRAME, elapsed_ms=0)
        assert command.to_line() == "switchframe default - 0"


class TestParsing:
    @pytest.mark.parametrize("line", [
        'click //div/span[@id="start"] 82,44 1',
        'type //td/div[@id="content"] [H,72] 3',
        'type //td/div[@id="content"] [ ,32] 12',
        'type //td/div[@id="content"] [!,49] 31',
        'click //td/div[text()="Save"] 74,51 37',
        "doubleclick //div[@id=\"cell\"] 10,20 5",
        "drag //div -3,-4 0",
        "switchframe //iframe[@id=\"x\"] - 2",
        "switchframe default - 0",
    ])
    def test_round_trip(self, line):
        assert parse_command_line(line).to_line() == line

    def test_figure4_trace_parses(self):
        figure4 = '''click //div/span[@id="start"] 82,44 1
type //td/div[@id="content"] [H,72] 3
type //td/div[@id="content"] [e,69] 4
type //td/div[@id="content"] [l,76] 7
type //td/div[@id="content"] [l,76] 9
type //td/div[@id="content"] [o,79] 11
type //td/div[@id="content"] [ ,32] 12
type //td/div[@id="content"] [w,87] 15
type //td/div[@id="content"] [o,79] 17
type //td/div[@id="content"] [r,82] 19
type //td/div[@id="content"] [l,76] 23
type //td/div[@id="content"] [d,68] 29
type //td/div[@id="content"] [!,49] 31
click //td/div[text()="Save"] 74,51 37'''
        commands = [parse_command_line(line) for line in figure4.splitlines()]
        assert len(commands) == 14
        typed = "".join(c.key for c in commands
                        if isinstance(c, TypeCommand))
        assert typed == "Hello world!"

    def test_xpath_with_spaces_in_text_predicate(self):
        line = 'click //div[text()="Save and close"] 1,2 3'
        command = parse_command_line(line)
        assert command.xpath == '//div[text()="Save and close"]'

    def test_comma_key_parses(self):
        command = parse_command_line("type //div [,,188] 5")
        assert command.key == ","
        assert command.code == 188

    @pytest.mark.parametrize("bad", [
        "", "click", "unknown //div 1,2 3", "click //div 1,2",
        "click //div nopayload 3", "type //div [H,notanumber] 3",
        "drag //div 5 3",
    ])
    def test_malformed_lines_rejected(self, bad):
        with pytest.raises(TraceFormatError):
            parse_command_line(bad)


class TestCopy:
    def test_copy_preserves_fields(self):
        command = ClickCommand("//a", x=1, y=2, elapsed_ms=3)
        clone = command.copy()
        assert clone == command
        assert clone is not command

    def test_copy_with_override(self):
        command = TypeCommand("//div", key="a", code=65, elapsed_ms=100)
        rushed = command.copy(elapsed_ms=0)
        assert rushed.elapsed_ms == 0
        assert rushed.key == "a"
        assert command.elapsed_ms == 100

    def test_equality_and_hash(self):
        a = TypeCommand("//div", key="a", code=65, elapsed_ms=1)
        b = TypeCommand("//div", key="a", code=65, elapsed_ms=1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != TypeCommand("//div", key="b", code=66, elapsed_ms=1)

    def test_click_and_doubleclick_differ(self):
        assert ClickCommand("//a", 1, 2, 3) != DoubleClickCommand("//a", 1, 2, 3)


_printable_keys = st.sampled_from(
    list("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
         "!@#$%^&*()-_=+;:'\"<>?/ ,"))


@given(key=_printable_keys, code=st.integers(0, 255),
       elapsed=st.integers(0, 10**6))
def test_property_type_command_round_trips(key, code, elapsed):
    command = TypeCommand('//td/div[@id="content"]', key=key, code=code,
                          elapsed_ms=elapsed)
    assert parse_command_line(command.to_line()) == command


@given(x=st.integers(-5000, 5000), y=st.integers(-5000, 5000),
       elapsed=st.integers(0, 10**6))
def test_property_click_command_round_trips(x, y, elapsed):
    command = ClickCommand('//div[text()="a b c"]', x=x, y=y,
                           elapsed_ms=elapsed)
    assert parse_command_line(command.to_line()) == command


class TestNegativeElapsed:
    def test_negative_elapsed_rejected(self):
        with pytest.raises(TraceFormatError, match="negative elapsed"):
            parse_command_line("click //div 1,2 -5")

    def test_zero_elapsed_still_parses(self):
        assert parse_command_line("click //div 1,2 0").elapsed_ms == 0

    @pytest.mark.parametrize("line", [
        "type //div [H,72] -1",
        "drag //div 3,4 -100",
        "switchframe default - -2",
    ])
    def test_every_command_kind_rejects_negative(self, line):
        with pytest.raises(TraceFormatError):
            parse_command_line(line)


class TestKeyEscaping:
    """Control characters in a typed key must survive the wire format.

    Without escaping, a newline key split the trace line in two and a
    ``]`` key ended the payload early — both corrupted the round trip.
    """

    @pytest.mark.parametrize("key", ["\n", "\r", "\t", "]", "\\", "a]b",
                                     "\\n", "line1\nline2", "[,]"])
    def test_special_keys_round_trip(self, key):
        command = TypeCommand("//div", key=key, code=13, elapsed_ms=4)
        line = command.to_line()
        assert "\n" not in line and "\r" not in line
        assert parse_command_line(line) == command
        assert parse_command_line(line).key == key

    def test_newline_key_serializes_on_one_line(self):
        command = TypeCommand("//div", key="\n", code=13)
        assert command.to_line() == "type //div [\\n,13] 0"

    def test_bracket_key_serializes_escaped(self):
        command = TypeCommand("//div", key="]", code=221)
        assert command.to_line() == "type //div [\\],221] 0"

    def test_plain_keys_unchanged(self):
        # The Figure-4 wire format is untouched for ordinary keys.
        command = TypeCommand("//div", key="H", code=72, elapsed_ms=3)
        assert command.to_line() == "type //div [H,72] 3"


@given(key=st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=0, max_size=3), code=st.integers(0, 255))
def test_property_any_key_round_trips(key, code):
    command = TypeCommand('//td/div[@id="content"]', key=key, code=code)
    line = command.to_line()
    assert "\n" not in line
    assert parse_command_line(line) == command
    assert parse_command_line(line).key == key
