"""ChromeDriver master/clients and the four WaRR fixes."""

import pytest

from repro.core.chromedriver import (
    ChromeDriverConfig,
    ChromeDriverMaster,
)
from repro.util.errors import DriverError, ReplayHaltedError
from tests.browser.helpers import build_browser, url


def make_driver(config=None, developer_mode=True, path="/"):
    browser = build_browser(developer_mode=developer_mode)
    tab = browser.new_tab(url(path))
    master = ChromeDriverMaster(browser, config)
    return browser, tab, master


class TestConfig:
    def test_warr_has_all_fixes(self):
        config = ChromeDriverConfig.warr()
        assert all([config.fix_double_click, config.fix_text_input,
                    config.fix_srcless_iframe, config.fix_switch_back,
                    config.fix_active_client])

    def test_stock_has_no_fixes(self):
        config = ChromeDriverConfig.stock()
        assert not any([config.fix_double_click, config.fix_text_input,
                        config.fix_srcless_iframe, config.fix_switch_back,
                        config.fix_active_client])


class TestClientLifecycle:
    def test_adopts_already_loaded_frames(self):
        browser, tab, master = make_driver(path="/frame")
        assert len(master.clients) == 2  # main + src iframe

    def test_main_frame_is_active(self):
        browser, tab, master = make_driver()
        assert master.active_client.engine is tab.engine

    def test_new_page_load_becomes_active(self):
        browser, tab, master = make_driver()
        tab.navigate(url("/about"))
        assert master.active_client.engine is tab.engine


class TestActiveClientBug:
    def test_stock_driver_halts_after_page_change(self):
        """The paper's last replay challenge: page change leaves no
        active client, and new commands are never executed."""
        browser, tab, master = make_driver(config=ChromeDriverConfig.stock())
        tab.navigate(url("/about"))
        with pytest.raises(ReplayHaltedError):
            master.active_client

    def test_warr_fix_survives_page_change(self):
        browser, tab, master = make_driver(config=ChromeDriverConfig.warr())
        tab.navigate(url("/about"))
        assert master.active_client.engine is tab.engine

    def test_has_active_client_probe(self):
        browser, tab, master = make_driver(config=ChromeDriverConfig.stock())
        assert master.has_active_client()
        tab.navigate(url("/about"))
        assert not master.has_active_client()


class TestClicks:
    def test_click_triggers_activation(self):
        browser, tab, master = make_driver()
        client = master.active_client
        link, _ = client.find('//a[text()="About"]')
        client.click(link)
        assert tab.document.title == "About"

    def test_click_at_coordinates(self):
        browser, tab, master = make_driver()
        client = master.active_client
        field, _ = client.find('//input[@name="who"]')
        x, y = tab.engine.layout.click_point(field)
        client.click_at(x, y)
        assert tab.engine.focused_element is field


class TestDoubleClick:
    def test_stock_driver_lacks_double_click(self):
        browser, tab, master = make_driver(config=ChromeDriverConfig.stock())
        client = master.active_client
        box, _ = client.find('//div[@id="box"]')
        with pytest.raises(DriverError):
            client.double_click(box)

    def test_warr_fix_triggers_dblclick_handlers(self):
        browser, tab, master = make_driver()
        client = master.active_client
        box, _ = client.find('//div[@id="box"]')
        seen = []
        box.add_event_listener("dblclick", lambda event: seen.append(event.detail))
        client.double_click(box)
        assert seen == [2]


class TestTextInput:
    def test_typing_into_input_works_without_fix(self):
        browser, tab, master = make_driver(config=ChromeDriverConfig.stock())
        client = master.active_client
        field, _ = client.find('//input[@name="who"]')
        client.send_key(field, "a", 65)
        assert field.value == "a"

    def test_stock_driver_loses_text_in_divs(self):
        """Paper IV-C: ChromeDriver sets .value, which does not exist
        meaningfully for container elements like div."""
        browser, tab, master = make_driver(config=ChromeDriverConfig.stock())
        client = master.active_client
        box, _ = client.find('//div[@id="box"]')
        client.send_key(box, "a", 65)
        assert box.text_content == ""  # the keystroke is lost

    def test_warr_fix_sets_text_content_for_divs(self):
        browser, tab, master = make_driver()
        client = master.active_client
        box, _ = client.find('//div[@id="box"]')
        for key, code in (("H", 72), ("i", 73)):
            client.send_key(box, key, code)
        assert box.text_content == "Hi"

    def test_backspace(self):
        browser, tab, master = make_driver()
        client = master.active_client
        box, _ = client.find('//div[@id="box"]')
        client.send_key(box, "a", 65)
        client.send_key(box, "Backspace", 8)
        assert box.text_content == ""

    def test_enter_submits_enclosing_form(self):
        browser, tab, master = make_driver()
        client = master.active_client
        field, _ = client.find('//input[@name="who"]')
        client.send_key(field, "x", 88)
        client.send_key(field, "Enter", 13)
        assert tab.document.title == "Greet"

    def test_developer_mode_gives_handlers_real_key_codes(self):
        browser, tab, master = make_driver(developer_mode=True)
        client = master.active_client
        box, _ = client.find('//div[@id="box"]')
        client.send_key(box, "H", 72)
        assert tab.engine.window.env.keys == [72]

    def test_user_mode_gives_handlers_zero_key_codes(self):
        """Without the developer browser, synthetic events carry no key
        properties — handlers observe keyCode 0 (fidelity loss)."""
        browser, tab, master = make_driver(developer_mode=False)
        client = master.active_client
        box, _ = client.find('//div[@id="box"]')
        client.send_key(box, "H", 72)
        assert tab.engine.window.env.keys == [0]


class TestDrag:
    def test_drag_moves_element(self):
        browser, tab, master = make_driver()
        client = master.active_client
        widget, _ = client.find('//div[@id="widget"]')
        client.drag(widget, 12, 7)
        assert widget.get_attribute("data-offset-x") == "12"


class TestFrameSwitching:
    def test_switch_to_src_iframe(self):
        browser, tab, master = make_driver(path="/frame")
        client = master.switch_to_frame('//iframe[@id="child"]')
        assert client.engine.document.title == "Inner"
        assert master.active_client is client

    def test_commands_execute_in_switched_frame(self):
        browser, tab, master = make_driver(path="/frame")
        client = master.switch_to_frame('//iframe[@id="child"]')
        button, _ = client.find('//button[@id="innerbtn"]')
        assert button.text_content == "press"

    def test_switch_to_non_iframe_rejected(self):
        browser, tab, master = make_driver(path="/frame")
        with pytest.raises(DriverError):
            master.switch_to_frame("//body")

    def test_srcless_iframe_without_fix_fails(self):
        config = ChromeDriverConfig(fix_srcless_iframe=False)
        browser, tab, master = make_driver(config=config, path="/frame")
        with pytest.raises(DriverError):
            master.switch_to_frame('//iframe[@id="bare"]')

    def test_srcless_iframe_with_fix_scopes_parent_client(self):
        browser, tab, master = make_driver(path="/frame")
        client = master.switch_to_frame('//iframe[@id="bare"]')
        assert client.root_element is not None
        inline, _ = client.find('//p[@id="inline"]')
        assert inline.text_content == "inline"

    def test_switch_back_without_fix_fails(self):
        config = ChromeDriverConfig(fix_switch_back=False)
        browser, tab, master = make_driver(config=config, path="/frame")
        master.switch_to_frame('//iframe[@id="child"]')
        with pytest.raises(DriverError):
            master.switch_to_default()

    def test_switch_back_with_fix(self):
        browser, tab, master = make_driver(path="/frame")
        master.switch_to_frame('//iframe[@id="child"]')
        client = master.switch_to_default()
        assert client.engine is tab.engine
