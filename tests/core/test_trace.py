"""Trace container, derivation, and file format."""

import pytest

from repro.core.commands import ClickCommand, TypeCommand
from repro.core.trace import WarrTrace
from repro.util.errors import TraceFormatError


def sample_trace():
    return WarrTrace(
        start_url="http://sites.example.com/edit/home",
        commands=[
            ClickCommand('//span[@id="start"]', x=82, y=44, elapsed_ms=100),
            TypeCommand('//div[@id="content"]', key="H", code=72, elapsed_ms=50),
            TypeCommand('//div[@id="content"]', key="i", code=73, elapsed_ms=25),
            ClickCommand('//div[text()="Save"]', x=74, y=51, elapsed_ms=200),
        ],
        label="edit session",
    )


class TestContainer:
    def test_len_iter_index(self):
        trace = sample_trace()
        assert len(trace) == 4
        assert [c.action for c in trace] == ["click", "type", "type", "click"]
        assert trace[1].key == "H"

    def test_slice_returns_trace(self):
        trace = sample_trace()
        prefix = trace[:2]
        assert isinstance(prefix, WarrTrace)
        assert len(prefix) == 2
        assert prefix.start_url == trace.start_url

    def test_append_validates_type(self):
        trace = WarrTrace()
        with pytest.raises(TypeError):
            trace.append("not a command")


class TestDerivation:
    def test_copy_is_deep_for_commands(self):
        trace = sample_trace()
        clone = trace.copy()
        clone.commands[0].x = 999
        assert trace.commands[0].x == 82

    def test_scale_delays_to_zero(self):
        fast = sample_trace().with_delays_scaled(0)
        assert all(c.elapsed_ms == 0 for c in fast)

    def test_scale_delays_half(self):
        half = sample_trace().with_delays_scaled(0.5)
        assert [c.elapsed_ms for c in half] == [50, 25, 12, 100]

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            sample_trace().with_delays_scaled(-1)

    def test_fixed_delays(self):
        fixed = sample_trace().with_delays_fixed(10)
        assert all(c.elapsed_ms == 10 for c in fixed)

    def test_original_untouched_by_derivation(self):
        trace = sample_trace()
        trace.with_delays_scaled(0)
        assert trace.total_duration_ms() == 375


class TestMeasurement:
    def test_total_duration(self):
        assert sample_trace().total_duration_ms() == 375

    def test_action_counts(self):
        assert sample_trace().action_counts() == {"click": 2, "type": 2}


class TestFileFormat:
    def test_round_trip_via_text(self):
        trace = sample_trace()
        assert WarrTrace.from_text(trace.to_text()) == trace

    def test_header_carries_url_and_label(self):
        text = sample_trace().to_text()
        assert text.startswith("#! warr-trace v1\n")
        assert "#! url http://sites.example.com/edit/home" in text
        assert "#! label edit session" in text

    def test_missing_magic_rejected(self):
        with pytest.raises(TraceFormatError):
            WarrTrace.from_text("click //a 1,2 3\n")

    def test_comment_lines_skipped(self):
        text = ("#! warr-trace v1\n#! url http://x/\n"
                "# a comment\nclick //a 1,2 3\n")
        trace = WarrTrace.from_text(text)
        assert len(trace) == 1

    def test_blank_lines_skipped(self):
        text = "#! warr-trace v1\n\nclick //a 1,2 3\n\n"
        assert len(WarrTrace.from_text(text)) == 1

    def test_save_and_load(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "session.warr"
        trace.save(path)
        assert WarrTrace.load(path) == trace

    def test_label_round_trips(self, tmp_path):
        trace = sample_trace()
        path = tmp_path / "t.warr"
        trace.save(path)
        assert WarrTrace.load(path).label == "edit session"


class TestEquality:
    def test_equal(self):
        assert sample_trace() == sample_trace()

    def test_url_matters(self):
        other = sample_trace()
        other.start_url = "http://elsewhere/"
        assert sample_trace() != other

    def test_commands_matter(self):
        other = sample_trace()
        other.commands.pop()
        assert sample_trace() != other

    def test_label_does_not_matter(self):
        # Equality is content-only (start URL + commands); the label is
        # descriptive metadata — consistent with copy(), whose
        # relabelled copies must still compare equal.
        other = sample_trace()
        other.label = "a different name"
        assert sample_trace() == other

    def test_relabelled_copy_is_equal(self):
        trace = sample_trace()
        assert trace.copy(label="renamed") == trace
