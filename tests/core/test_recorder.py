"""The WaRR Recorder: completeness, shift combining, timing, frames."""

import pytest

from repro.core.commands import (
    ClickCommand,
    DoubleClickCommand,
    DragCommand,
    SwitchFrameCommand,
    TypeCommand,
)
from repro.core.recorder import WarrRecorder
from tests.browser.helpers import build_browser, url


@pytest.fixture
def recording():
    browser = build_browser()
    recorder = WarrRecorder().attach(browser)
    recorder.begin(url("/"))
    tab = browser.new_tab(url("/"))
    return browser, recorder, tab


class TestBasicRecording:
    def test_click_recorded_with_xpath_and_position(self, recording):
        browser, recorder, tab = recording
        start = tab.find('//span[@id="start"]')
        tab.click_element(start)
        command = recorder.trace[0]
        assert isinstance(command, ClickCommand)
        assert command.xpath == '//div/span[@id="start"]'
        expected = tab.engine.layout.click_point(start)
        assert (command.x, command.y) == expected

    def test_doubleclick_recorded(self, recording):
        _, recorder, tab = recording
        tab.double_click_element(tab.find('//div[@id="box"]'))
        assert isinstance(recorder.trace[0], DoubleClickCommand)

    def test_keystrokes_recorded_individually(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_text("hey")
        keys = [c.key for c in recorder.trace if isinstance(c, TypeCommand)]
        assert keys == ["h", "e", "y"]

    def test_drag_recorded_with_delta(self, recording):
        _, recorder, tab = recording
        tab.drag_element(tab.find('//div[@id="widget"]'), 15, -4)
        command = recorder.trace[0]
        assert isinstance(command, DragCommand)
        assert (command.dx, command.dy) == (15, -4)

    def test_recording_continues_across_navigation(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//a[text()="About"]'))
        assert tab.document.title == "About"
        tab2_actions = len(recorder.trace)
        assert tab2_actions == 1  # the link click


class TestShiftCombining:
    def test_shift_letter_is_one_command(self, recording):
        """Paper IV-B: Shift+h logs only the combined [H,72]."""
        _, recorder, tab = recording
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_key("H")
        types = [c for c in recorder.trace if isinstance(c, TypeCommand)]
        assert len(types) == 1
        assert (types[0].key, types[0].code) == ("H", 72)

    def test_bang_logs_one_key(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_key("!")
        types = [c for c in recorder.trace if isinstance(c, TypeCommand)]
        assert (types[0].key, types[0].code) == ("!", 49)

    def test_control_keys_are_logged(self, recording):
        """Control (unlike Shift) is logged with its code."""
        _, recorder, tab = recording
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_key("Control")
        types = [c for c in recorder.trace if isinstance(c, TypeCommand)]
        assert (types[0].key, types[0].code) == ("Control", 17)

    def test_enter_logged(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_key("Enter")
        types = [c for c in recorder.trace if isinstance(c, TypeCommand)]
        assert (types[0].key, types[0].code) == ("Enter", 13)


class TestTiming:
    def test_elapsed_measured_between_actions(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//span[@id="start"]'))
        tab.wait(300)
        tab.click_element(tab.find('//div[@id="box"]'))
        assert recorder.trace[1].elapsed_ms == 300

    def test_first_elapsed_measured_from_begin(self):
        browser = build_browser()
        recorder = WarrRecorder().attach(browser)
        recorder.begin(url("/"))
        tab = browser.new_tab(url("/"))  # 50ms navigation latency
        tab.wait(200)
        tab.click_element(tab.find('//span[@id="start"]'))
        assert recorder.trace[0].elapsed_ms == 250

    def test_trace_total_duration_matches_session(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//span[@id="start"]'))
        tab.wait(100)
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.wait(50)
        tab.type_text("a")
        total = recorder.trace.total_duration_ms()
        assert total >= 150


class TestLifecycle:
    def test_detach_stops_recording(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//span[@id="start"]'))
        recorder.detach()
        tab.click_element(tab.find('//div[@id="box"]'))
        assert len(recorder.trace) == 1

    def test_begin_resets_trace(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//span[@id="start"]'))
        recorder.begin(url("/fresh"))
        assert len(recorder.trace) == 0
        assert recorder.trace.start_url == url("/fresh")

    def test_overhead_samples_collected(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//span[@id="start"]'))
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_text("ab")
        assert len(recorder.overhead_samples_us) == 4
        assert recorder.mean_overhead_us() > 0

    def test_mean_overhead_zero_when_no_samples(self):
        assert WarrRecorder().mean_overhead_us() == 0.0


class TestFrames:
    def test_iframe_interaction_emits_switchframe(self):
        browser = build_browser()
        recorder = WarrRecorder().attach(browser)
        recorder.begin(url("/frame"))
        tab = browser.new_tab(url("/frame"))
        iframe = tab.find('//iframe[@id="child"]')
        child = tab.engine.frame_for(iframe)
        button = child.document.get_element_by_id("innerbtn")
        outer_box = tab.engine.layout.box_for(iframe)
        inner = child.layout.click_point(button)
        tab.click(int(outer_box.rect.x + inner[0]),
                  int(outer_box.rect.y + inner[1]))
        actions = [c.action for c in recorder.trace]
        assert actions == ["switchframe", "click"]
        assert recorder.trace[0].xpath != "default"

    def test_returning_to_main_frame_emits_default_switch(self):
        browser = build_browser()
        recorder = WarrRecorder().attach(browser)
        recorder.begin(url("/frame"))
        tab = browser.new_tab(url("/frame"))
        iframe = tab.find('//iframe[@id="child"]')
        child = tab.engine.frame_for(iframe)
        button = child.document.get_element_by_id("innerbtn")
        outer_box = tab.engine.layout.box_for(iframe)
        inner = child.layout.click_point(button)
        tab.click(int(outer_box.rect.x + inner[0]),
                  int(outer_box.rect.y + inner[1]))
        # now click in the main document
        tab.click_element(tab.find('//iframe[@id="bare"]'))
        switches = [c for c in recorder.trace
                    if isinstance(c, SwitchFrameCommand)]
        assert len(switches) == 2
        assert switches[1].is_default
