"""The WaRR Replayer: timing modes, reports, fallbacks, halting."""


from repro.core.chromedriver import ChromeDriverConfig
from repro.core.commands import ClickCommand, TypeCommand
from repro.core.recorder import WarrRecorder
from repro.core.replayer import CommandResult, TimingMode, WarrReplayer
from repro.core.trace import WarrTrace
from tests.browser.helpers import build_browser, url


def record_home_session():
    browser = build_browser()
    recorder = WarrRecorder().attach(browser)
    recorder.begin(url("/"))
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//input[@name="who"]'))
    tab.type_text("Ada", think_time_ms=20)
    tab.click_element(tab.find('//input[@type="submit"]'))
    # Interact on the page after the navigation: this is what exposes
    # the stock driver's lost-active-client bug during replay.
    tab.click_element(tab.find('//a[text()="back"]'))
    return recorder.trace


class TestTimingMode:
    def test_recorded_keeps_delays(self):
        mode = TimingMode.recorded()
        assert mode.delay_for(ClickCommand("//a", elapsed_ms=120)) == 120

    def test_no_wait_zeroes_delays(self):
        mode = TimingMode.no_wait()
        assert mode.delay_for(ClickCommand("//a", elapsed_ms=120)) == 0

    def test_scaled(self):
        mode = TimingMode.scaled(0.5)
        assert mode.delay_for(ClickCommand("//a", elapsed_ms=120)) == 60

    def test_fixed(self):
        mode = TimingMode.fixed(10)
        assert mode.delay_for(ClickCommand("//a", elapsed_ms=120)) == 10


class TestBasicReplay:
    def test_full_session_replays(self):
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        assert report.complete
        assert report.replayed_count == len(trace)
        # The session ends back on the home page after the final click.
        assert report.final_url == url("/")

    def test_replay_reproduces_timing(self):
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        WarrReplayer(browser, timing=TimingMode.recorded()).replay(trace)
        # Total virtual time >= sum of recorded delays.
        assert browser.clock.now() >= trace.total_duration_ms()

    def test_no_wait_is_faster(self):
        trace = record_home_session()
        slow = build_browser(developer_mode=True)
        WarrReplayer(slow, timing=TimingMode.recorded()).replay(trace)
        fast = build_browser(developer_mode=True)
        WarrReplayer(fast, timing=TimingMode.no_wait()).replay(trace)
        assert fast.clock.now() < slow.clock.now()

    def test_bad_start_url_halts(self):
        trace = WarrTrace(start_url="http://nowhere.example/",
                          commands=[ClickCommand("//a")])
        browser = build_browser(developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        assert report.halted
        assert "navigation" in report.halt_reason


class TestFailureHandling:
    def test_unresolvable_type_command_is_failure(self):
        trace = WarrTrace(start_url=url("/"), commands=[
            TypeCommand("//video", key="a", code=65),
        ])
        browser = build_browser(developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        assert report.failed_count == 1
        assert not report.complete

    def test_replay_continues_after_failure_by_default(self):
        trace = WarrTrace(start_url=url("/"), commands=[
            TypeCommand("//video", key="a", code=65),
            ClickCommand('//a[text()="About"]', x=0, y=0),
        ])
        browser = build_browser(developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        assert report.failed_count == 1
        assert report.replayed_count == 1
        assert browser.tabs[0].document.title == "About"

    def test_stop_on_failure(self):
        trace = WarrTrace(start_url=url("/"), commands=[
            TypeCommand("//video", key="a", code=65),
            ClickCommand('//a[text()="About"]', x=0, y=0),
        ])
        browser = build_browser(developer_mode=True)
        report = WarrReplayer(browser, stop_on_failure=True).replay(trace)
        assert len(report.results) == 1
        assert browser.tabs[0].document.title == "Home"


class TestCoordinateFallback:
    def test_click_falls_back_to_recorded_position(self):
        # Record a click on the About link, then corrupt the xpath.
        browser = build_browser()
        recorder = WarrRecorder().attach(browser)
        recorder.begin(url("/"))
        tab = browser.new_tab(url("/"))
        tab.click_element(tab.find('//a[text()="About"]'))
        original = recorder.trace[0]
        corrupted = WarrTrace(start_url=url("/"), commands=[
            ClickCommand("//video[@id='gone']", x=original.x, y=original.y),
        ])
        replay_browser = build_browser(developer_mode=True)
        report = WarrReplayer(replay_browser).replay(corrupted)
        assert report.results[0].status == CommandResult.COORDINATE
        assert replay_browser.tabs[0].document.title == "About"


class TestRelaxationReporting:
    def test_relaxed_commands_flagged(self):
        trace = WarrTrace(start_url=url("/"), commands=[
            ClickCommand('//div/span[@id="stale"]', x=1, y=1),
        ])
        browser = build_browser(developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        assert report.results[0].status == CommandResult.RELAXED
        assert report.relaxed_count == 1


class TestHalting:
    def test_stock_driver_halts_on_navigation(self):
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        replayer = WarrReplayer(browser, config=ChromeDriverConfig.stock())
        report = replayer.replay(trace)
        assert report.halted
        assert "active" in report.halt_reason.lower() or "halted" in report.halt_reason.lower()

    def test_warr_driver_does_not_halt(self):
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        report = WarrReplayer(browser, config=ChromeDriverConfig.warr()).replay(trace)
        assert not report.halted


class TestReportSummary:
    def test_summary_mentions_counts(self):
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        summary = report.summary()
        assert "%d/%d" % (len(trace), len(trace)) in summary

    def test_page_errors_scoped_to_this_replay(self):
        browser = build_browser(developer_mode=True)
        browser.page_errors.append("pre-existing")
        trace = record_home_session()
        report = WarrReplayer(browser).replay(trace)
        assert report.page_errors == []
