"""Progressive XPath relaxation heuristics."""

import pytest

from repro.core.relaxation import RelaxationEngine, relax_candidates
from repro.dom.parser import parse_html
from repro.util.errors import ElementNotFoundError


class TestCandidateGeneration:
    def test_original_comes_first(self):
        candidates = relax_candidates('//td/div[@id="x"]')
        assert candidates[0][0] == "original"
        assert candidates[0][1].to_xpath() == '//td/div[@id="x"]'

    def test_volatile_attributes_dropped(self):
        candidates = relax_candidates('//td/div[@id="x"]')
        rendered = [path.to_xpath() for _, path in candidates]
        assert "//td/div" in rendered

    def test_stable_name_attribute_kept(self):
        candidates = relax_candidates('//td/input[@id="w1_to"][@name="to"]')
        rendered = [path.to_xpath() for _, path in candidates]
        assert '//td/input[@name="to"]' in rendered

    def test_prefix_discarded(self):
        """The paper's example: //td/div[@id="id1"] -> //div[@id="id1"]."""
        candidates = relax_candidates('//td/div[@id="id1"]')
        rendered = [path.to_xpath() for _, path in candidates]
        assert '//div[@id="id1"]' in rendered

    def test_no_duplicate_candidates(self):
        candidates = relax_candidates('//td/div[@id="x"]')
        rendered = [path.to_xpath() for _, path in candidates]
        assert len(rendered) == len(set(rendered))

    def test_text_predicates_survive_relaxation(self):
        candidates = relax_candidates('//td/div[text()="Save"]')
        rendered = [path.to_xpath() for _, path in candidates]
        assert '//div[text()="Save"]' in rendered

    def test_least_relaxed_ordering(self):
        candidates = relax_candidates('//table/td/div[@id="x"]')
        descriptions = [description for description, _ in candidates]
        # attribute relaxations of the full path come before prefix drops
        first_prefix = next(i for i, d in enumerate(descriptions)
                            if "prefix" in d)
        assert "original" == descriptions[0]
        assert first_prefix > 1


class TestResolution:
    def make_doc(self, body):
        return parse_html("<html><body>%s</body></html>" % body)

    def test_exact_match_used_when_available(self):
        doc = self.make_doc('<table><tr><td><div id="x">a</div></td></tr></table>')
        engine = RelaxationEngine()
        element, heuristic = engine.resolve('//td/div[@id="x"]', doc)
        assert heuristic == "original"
        assert element.id == "x"

    def test_stale_id_relaxed_to_structure(self):
        """GMail's regenerated ids (paper IV-C): recorded id w1, live w2."""
        doc = self.make_doc('<table><tr><td><div id="w2_body">b</div></td></tr></table>')
        engine = RelaxationEngine()
        element, heuristic = engine.resolve('//td/div[@id="w1_body"]', doc)
        assert element.id == "w2_body"
        assert heuristic != "original"
        assert engine.relaxed_count() == 1

    def test_name_attribute_disambiguates(self):
        doc = self.make_doc(
            '<table><tr><td><input id="w2_to" name="to">'
            '<input id="w2_subject" name="subject"></td></tr></table>')
        engine = RelaxationEngine()
        element, _ = engine.resolve('//td/input[@id="w1_subject"][@name="subject"]',
                                    doc)
        assert element.name == "subject"

    def test_prefix_discard_finds_moved_element(self):
        """Element moved out of the td: suffix search still finds it."""
        doc = self.make_doc('<section><div id="id1">x</div></section>')
        engine = RelaxationEngine()
        element, heuristic = engine.resolve('//td/div[@id="id1"]', doc)
        assert element.id == "id1"
        assert "prefix" in heuristic

    def test_ambiguous_fallback_uses_first_match(self):
        doc = self.make_doc(
            '<table><tr><td><div id="a2">one</div></td>'
            '<td><div id="b2">two</div></td></tr></table>')
        engine = RelaxationEngine()
        element, heuristic = engine.resolve('//td/div[@id="stale"]', doc)
        assert element.text_content == "one"
        assert "ambiguous" in heuristic

    def test_unresolvable_raises(self):
        doc = self.make_doc("<p>nothing here</p>")
        with pytest.raises(ElementNotFoundError):
            RelaxationEngine().resolve('//td/div[@id="x"]', doc)

    def test_disabled_engine_requires_exact_match(self):
        doc = self.make_doc('<table><tr><td><div id="w2">b</div></td></tr></table>')
        engine = RelaxationEngine(enabled=False)
        with pytest.raises(ElementNotFoundError):
            engine.resolve('//td/div[@id="w1"]', doc)

    def test_disabled_engine_still_finds_exact(self):
        doc = self.make_doc('<div id="x">a</div>')
        engine = RelaxationEngine(enabled=False)
        element, heuristic = engine.resolve('//div[@id="x"]', doc)
        assert element.id == "x"
        assert heuristic == "original"

    def test_resolution_log_accumulates(self):
        doc = self.make_doc('<table><tr><td><div id="w2">b</div></td></tr></table>')
        engine = RelaxationEngine()
        engine.resolve('//td/div[@id="w2"]', doc)
        engine.resolve('//td/div[@id="stale"]', doc)
        assert len(engine.resolutions) == 2
        assert engine.relaxed_count() == 1

    def test_dom_free_to_change_around_target(self):
        """Paper: 'a web application's DOM is free to extensively change
        ... only some DOM properties in close vicinity need persist'."""
        recorded_against = '//td/div[@id="content"]'
        changed_doc = self.make_doc(
            '<header>new banner</header>'
            '<main><section><table><tr>'
            '<td><div id="content">still here</div></td>'
            '</tr></table></section></main>'
            '<footer>new footer</footer>')
        engine = RelaxationEngine()
        element, heuristic = engine.resolve(recorded_against, changed_doc)
        assert element.text_content == "still here"
        assert heuristic == "original"  # vicinity (td parent) preserved
