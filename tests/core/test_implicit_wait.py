"""Implicit waits: locating content that appears asynchronously."""

import pytest

from repro.core.commands import ClickCommand
from repro.core.replayer import TimingMode, WarrReplayer
from repro.core.trace import WarrTrace
from repro.core.webdriver import WebDriver
from repro.util.errors import ElementNotFoundError
from tests.browser.helpers import build_browser, url


def late_button_script(window):
    """A page that grows a button 400 ms after load (AJAX-style)."""
    def add_button():
        button = window.create_element("button", {"id": "late"})
        button.text_content = "Ready"
        window.document.body.append_child(button)
        window.env.clicked = False

        def on_click(event):
            window.env.clicked = True

        button.add_event_listener("click", on_click)

    window.set_timeout(400, add_button)


def late_browser(developer_mode=True):
    return build_browser(
        extra_routes={
            "/late": lambda request:
                '<html><head><title>Late</title></head><body>'
                '<p>loading...</p>'
                '<script data-script="test.late"></script></body></html>',
        },
        extra_scripts={"test.late": late_button_script},
        developer_mode=developer_mode,
    )


class TestDriverImplicitWait:
    def test_without_wait_misses_late_elements(self):
        driver = WebDriver(late_browser(), implicit_wait_ms=0)
        driver.get(url("/late"))
        with pytest.raises(ElementNotFoundError):
            driver.find_element('//button[@id="late"]')

    def test_with_wait_finds_late_elements(self):
        driver = WebDriver(late_browser(), implicit_wait_ms=1000)
        driver.get(url("/late"))
        element = driver.find_element('//button[@id="late"]')
        assert element.text_content == "Ready"
        # Waited only as long as needed.
        assert driver.browser.clock.now() == pytest.approx(450, abs=60)

    def test_wait_gives_up_at_deadline(self):
        driver = WebDriver(late_browser(), implicit_wait_ms=100)
        driver.get(url("/late"))
        with pytest.raises(ElementNotFoundError):
            driver.find_element('//button[@id="late"]')

    def test_wait_not_paid_for_present_elements(self):
        driver = WebDriver(late_browser(), implicit_wait_ms=5000)
        driver.get(url("/late"))
        before = driver.browser.clock.now()
        driver.find_element("//p")
        assert driver.browser.clock.now() == before

    def test_exact_match_preferred_over_relaxed_while_waiting(self):
        """With a wait configured, a missing locator first waits for the
        exact element instead of immediately grabbing a relaxed match."""
        driver = WebDriver(late_browser(), implicit_wait_ms=1000)
        driver.get(url("/late"))
        element = driver.find_element('//body/button[@id="late"]')
        assert element.id == "late"


class TestReplayerImplicitWait:
    def test_no_wait_replay_rescued_by_implicit_wait(self):
        """An impatient (no-wait) replay clicks a button that does not
        exist yet; with an implicit wait the replayer pauses just long
        enough instead of failing."""
        trace = WarrTrace(start_url=url("/late"), commands=[
            ClickCommand('//button[@id="late"]', x=1, y=1, elapsed_ms=1000),
        ])
        impatient = WarrReplayer(late_browser(),
                                 timing=TimingMode.no_wait())
        report = impatient.replay(trace)
        # Without waiting, the click degrades to the coordinate fallback
        # (which hits nothing useful).
        assert not any(r.status == "ok" for r in report.results)

        patient = WarrReplayer(late_browser(), timing=TimingMode.no_wait(),
                               implicit_wait_ms=1000)
        report = patient.replay(trace)
        assert report.results[0].status == "ok"
