"""Bounded always-on recording."""

import pytest

from repro.core.replayer import WarrReplayer
from repro.core.ring_recorder import RingBufferRecorder
from tests.browser.helpers import build_browser, url


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        RingBufferRecorder(capacity=0)


def test_records_like_a_normal_recorder_under_capacity():
    browser = build_browser()
    ring = RingBufferRecorder(capacity=100).attach(browser)
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//span[@id="start"]'))
    tab.click_element(tab.find('//div[@id="box"]'))
    tab.type_text("hi")
    assert len(ring) == 4
    assert ring.dropped_count == 0


def test_oldest_commands_dropped_at_capacity():
    browser = build_browser()
    ring = RingBufferRecorder(capacity=3).attach(browser)
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//div[@id="box"]'))
    tab.type_text("abcde")
    assert len(ring) == 3
    assert ring.dropped_count == 3  # click + 'a' + 'b'
    snapshot = ring.snapshot()
    assert [c.key for c in snapshot] == ["c", "d", "e"]


def test_snapshot_zeroes_first_elapsed():
    browser = build_browser()
    ring = RingBufferRecorder(capacity=2).attach(browser)
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//div[@id="box"]'))
    tab.wait(500)
    tab.type_text("xy")
    snapshot = ring.snapshot()
    assert snapshot[0].elapsed_ms == 0


def test_snapshot_anchored_at_current_page():
    browser = build_browser()
    ring = RingBufferRecorder(capacity=2).attach(browser)
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//span[@id="start"]'))  # on /
    tab.click_element(tab.find('//a[text()="About"]'))  # navigates
    tab.back()
    tab.click_element(tab.find('//div[@id="box"]'))
    tab.type_text("z")
    snapshot = ring.snapshot()
    # Window holds the last 2 actions, both on the home page.
    assert snapshot.start_url == url("/")


def test_snapshot_replays():
    browser = build_browser()
    ring = RingBufferRecorder(capacity=10).attach(browser)
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//input[@name="who"]'))
    tab.type_text("Zoe")
    tab.click_element(tab.find('//input[@type="submit"]'))
    snapshot = ring.snapshot()

    replay_browser = build_browser(developer_mode=True)
    report = WarrReplayer(replay_browser).replay(snapshot)
    assert report.complete
    assert replay_browser.tabs[0].url.endswith("who=Zoe")


def test_empty_snapshot():
    browser = build_browser()
    ring = RingBufferRecorder(capacity=5).attach(browser)
    snapshot = ring.snapshot()
    assert len(snapshot) == 0


def test_overhead_tracking_delegates():
    browser = build_browser()
    ring = RingBufferRecorder(capacity=5).attach(browser)
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//div[@id="box"]'))
    assert len(ring.overhead_samples_us) == 1
    assert ring.mean_overhead_us() > 0


def test_detach_stops_recording():
    browser = build_browser()
    ring = RingBufferRecorder(capacity=5).attach(browser)
    tab = browser.new_tab(url("/"))
    ring.detach()
    tab.click_element(tab.find('//div[@id="box"]'))
    assert len(ring) == 0
