"""Property-based tests over traces and commands."""

from hypothesis import given, settings, strategies as st

from repro.auser.privacy import scrub_trace
from repro.core.commands import (
    ClickCommand,
    DoubleClickCommand,
    DragCommand,
    SwitchFrameCommand,
    TypeCommand,
)
from repro.core.trace import WarrTrace

_xpaths = st.sampled_from([
    '//div/span[@id="start"]',
    '//td/div[@id="content"]',
    '//td/div[text()="Save"]',
    '//input[@name="passwd"]',
    "/html/body/div[2]/p",
    '//a[contains(@href, "about")]',
])

_keys = st.sampled_from(list("abcxyzABC123!? ,.") + ["Enter", "Backspace",
                                                     "Control"])


@st.composite
def commands(draw):
    kind = draw(st.integers(0, 4))
    xpath = draw(_xpaths)
    elapsed = draw(st.integers(0, 100_000))
    if kind == 0:
        return ClickCommand(xpath, x=draw(st.integers(0, 2000)),
                            y=draw(st.integers(0, 2000)), elapsed_ms=elapsed)
    if kind == 1:
        return DoubleClickCommand(xpath, x=draw(st.integers(0, 2000)),
                                  y=draw(st.integers(0, 2000)),
                                  elapsed_ms=elapsed)
    if kind == 2:
        return DragCommand(xpath, dx=draw(st.integers(-300, 300)),
                           dy=draw(st.integers(-300, 300)),
                           elapsed_ms=elapsed)
    if kind == 3:
        key = draw(_keys)
        return TypeCommand(xpath, key=key, code=draw(st.integers(0, 255)),
                           elapsed_ms=elapsed)
    return SwitchFrameCommand(draw(st.sampled_from(
        ["default", '//iframe[@id="child"]'])), elapsed_ms=elapsed)


@st.composite
def traces(draw):
    return WarrTrace(
        start_url="http://app.example/%s" % draw(st.sampled_from(
            ["", "edit/home", "compose"])),
        commands=draw(st.lists(commands(), max_size=25)),
    )


@given(traces())
@settings(max_examples=60, deadline=None)
def test_trace_text_round_trips(trace):
    assert WarrTrace.from_text(trace.to_text()) == trace


@given(traces())
@settings(max_examples=40, deadline=None)
def test_every_command_line_round_trips(trace):
    from repro.core.commands import parse_command_line

    for command in trace:
        assert parse_command_line(command.to_line()) == command


@given(traces(), st.floats(0.0, 4.0))
@settings(max_examples=40, deadline=None)
def test_delay_scaling_bounds_duration(trace, factor):
    scaled = trace.with_delays_scaled(factor)
    assert len(scaled) == len(trace)
    # int() truncation: scaled duration never exceeds factor * original.
    assert scaled.total_duration_ms() <= factor * trace.total_duration_ms() + 1


@given(traces())
@settings(max_examples=40, deadline=None)
def test_no_wait_has_zero_duration(trace):
    assert trace.with_delays_scaled(0).total_duration_ms() == 0


@given(traces())
@settings(max_examples=40, deadline=None)
def test_scrub_preserves_shape(trace):
    scrubbed = scrub_trace(trace)
    assert len(scrubbed) == len(trace)
    assert [c.action for c in scrubbed] == [c.action for c in trace]
    assert [c.elapsed_ms for c in scrubbed] == [c.elapsed_ms for c in trace]


@given(traces())
@settings(max_examples=40, deadline=None)
def test_scrub_is_idempotent(trace):
    once = scrub_trace(trace)
    twice = scrub_trace(once)
    assert [c.to_line() for c in twice] == [c.to_line() for c in once]


@given(traces())
@settings(max_examples=40, deadline=None)
def test_scrub_never_leaks_sensitive_keys(trace):
    scrubbed = scrub_trace(trace)
    for command in scrubbed:
        if isinstance(command, TypeCommand) and "passwd" in command.xpath:
            assert command.key == "*"
            assert command.code == 0


@given(traces())
@settings(max_examples=30, deadline=None)
def test_copy_is_equal_but_independent(trace):
    clone = trace.copy()
    assert clone == trace
    if clone.commands:
        clone.commands.pop()
        assert len(clone) == len(trace) - 1
