"""WebDriver facade."""

import pytest

from repro.core.webdriver import WebDriver
from tests.browser.helpers import build_browser, url


@pytest.fixture
def driver():
    browser = build_browser(developer_mode=True)
    return WebDriver(browser)


class TestSession:
    def test_get_opens_tab(self, driver):
        tab = driver.get(url("/"))
        assert tab.document.title == "Home"

    def test_get_reuses_tab(self, driver):
        first = driver.get(url("/"))
        second = driver.get(url("/about"))
        assert first is second
        assert len(driver.browser.tabs) == 1

    def test_tab_before_get_raises(self, driver):
        with pytest.raises(RuntimeError):
            driver.tab


class TestElementOperations:
    def test_find_element(self, driver):
        driver.get(url("/"))
        element = driver.find_element('//span[@id="start"]')
        assert element.text_content == "start"

    def test_click_navigates_links(self, driver):
        driver.get(url("/"))
        driver.click('//a[text()="About"]')
        assert driver.tab.document.title == "About"

    def test_send_keys_types_string(self, driver):
        driver.get(url("/"))
        element = driver.send_keys('//input[@name="who"]', "Hello!")
        assert element.value == "Hello!"

    def test_send_key_single(self, driver):
        driver.get(url("/"))
        driver.send_key('//div[@id="box"]', "a", 65)
        assert driver.find_element('//div[@id="box"]').text_content == "a"

    def test_double_click(self, driver):
        driver.get(url("/"))
        seen = []
        box = driver.find_element('//div[@id="box"]')
        box.add_event_listener("dblclick", lambda event: seen.append(1))
        driver.double_click('//div[@id="box"]')
        assert seen == [1]

    def test_drag(self, driver):
        driver.get(url("/"))
        widget = driver.drag('//div[@id="widget"]', 9, 9)
        assert widget.get_attribute("data-offset-x") == "9"

    def test_click_at(self, driver):
        driver.get(url("/"))
        field = driver.find_element('//input[@name="who"]')
        x, y = driver.tab.engine.layout.click_point(field)
        driver.click_at(x, y)
        assert driver.tab.engine.focused_element is field


class TestRelaxationIntegration:
    def test_stale_locator_relaxed(self, driver):
        driver.get(url("/"))
        element = driver.find_element('//div/span[@id="stale-id"]')
        # Only one span under a div: the relaxation fallback finds it.
        assert element.tag == "span"
        assert driver.relaxation.relaxed_count() >= 1

    def test_relaxation_disabled(self):
        browser = build_browser(developer_mode=True)
        driver = WebDriver(browser, relaxation=False)
        driver.get(url("/"))
        from repro.util.errors import ElementNotFoundError

        with pytest.raises(ElementNotFoundError):
            driver.find_element('//div/span[@id="stale-id"]')


class TestFrames:
    def test_switch_and_back(self, driver):
        driver.get(url("/frame"))
        driver.switch_to_frame('//iframe[@id="child"]')
        assert driver.find_element("//button").text_content == "press"
        driver.switch_to_default()
        assert driver.find_element('//iframe[@id="bare"]') is not None


class TestWait:
    def test_wait_advances_clock(self, driver):
        driver.get(url("/"))
        before = driver.browser.clock.now()
        driver.wait(500)
        assert driver.browser.clock.now() == before + 500
