"""The command-line interface."""

import io

import pytest

from repro.cli import main
from repro.core.trace import WarrTrace


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def recorded_trace(tmp_path):
    path = tmp_path / "session.warr"
    code, output = run_cli(["record", "--app", "sites", "--out", str(path)])
    assert code == 0
    return path


class TestRecord:
    def test_record_writes_trace_file(self, tmp_path):
        path = tmp_path / "out.warr"
        code, output = run_cli(["record", "--app", "portal",
                                "--out", str(path)])
        assert code == 0
        assert "recorded" in output
        trace = WarrTrace.load(path)
        assert len(trace) > 0
        assert trace.start_url == "http://portal.example.com/"

    @pytest.mark.parametrize("app", ["sites", "gmail", "portal", "docs",
                                     "dashboard"])
    def test_every_app_records(self, tmp_path, app):
        path = tmp_path / ("%s.warr" % app)
        code, _ = run_cli(["record", "--app", app, "--out", str(path)])
        assert code == 0
        assert len(WarrTrace.load(path)) > 0

    def test_unknown_app_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli(["record", "--app", "ghost",
                     "--out", str(tmp_path / "x.warr")])


class TestReplay:
    def test_replay_succeeds(self, recorded_trace):
        code, output = run_cli(["replay", str(recorded_trace),
                                "--app", "sites"])
        assert code == 0
        assert "0 page error(s)" in output

    def test_no_wait_finds_the_bug_and_fails(self, recorded_trace):
        code, output = run_cli(["replay", str(recorded_trace),
                                "--app", "sites", "--no-wait"])
        assert code == 1
        assert "editorState" in output

    def test_stock_driver_option(self, tmp_path):
        path = tmp_path / "gmail.warr"
        run_cli(["record", "--app", "gmail", "--out", str(path)])
        code, output = run_cli(["replay", str(path), "--app", "gmail",
                                "--stock-driver"])
        assert code == 1
        assert "HALTED" in output

    def test_scale_option(self, recorded_trace):
        code, output = run_cli(["replay", str(recorded_trace),
                                "--app", "sites", "--scale", "2.0"])
        assert code == 0

    def test_no_relaxation_option_with_stable_ids(self, recorded_trace):
        # Sites ids are stable, so exact matching suffices and the
        # option just disables the fallback machinery.
        code, output = run_cli(["replay", str(recorded_trace),
                                "--app", "sites", "--no-relaxation"])
        assert code == 0

    def test_user_browser_option_still_replays(self, recorded_trace):
        # A user (non-developer) browser replays commands, but key events
        # carry degraded properties; the sites flow does not depend on
        # handler-visible key codes, so it completes.
        code, output = run_cli(["replay", str(recorded_trace),
                                "--app", "sites", "--user-browser"])
        assert code == 0


class TestBatch:
    def test_batch_replays_four_traces_isolated(self, recorded_trace,
                                                tmp_path):
        paths = []
        for i in range(4):
            path = tmp_path / ("copy-%d.warr" % i)
            path.write_text(recorded_trace.read_text())
            paths.append(str(path))
        code, output = run_cli(["batch"] + paths + ["--app", "sites"])
        assert code == 0
        assert "batch: 4/4 trace(s) complete" in output
        # One per-trace summary line per isolated session.
        for path in paths:
            assert "[%s]" % path in output

    def test_batch_reports_failures(self, recorded_trace, tmp_path):
        from repro.core.commands import TypeCommand

        trace = WarrTrace.load(recorded_trace)
        # A keystroke into a non-existent element has no coordinate
        # fallback, so this trace cannot replay completely.
        bad = trace.copy(commands=list(trace)
                         + [TypeCommand("//video", "x", 88)])
        bad_path = tmp_path / "bad.warr"
        bad.save(bad_path)
        code, output = run_cli(["batch", str(bad_path), str(recorded_trace),
                                "--app", "sites", "--failures"])
        assert code == 1
        assert "failed:" in output

    def test_batch_prints_perf_counters(self, recorded_trace):
        code, output = run_cli(["batch", str(recorded_trace),
                                "--app", "sites"])
        assert code == 0
        assert "perf:" in output

    def test_batch_workers_matches_serial_output(self, recorded_trace,
                                                 tmp_path):
        paths = []
        for i in range(4):
            path = tmp_path / ("copy-%d.warr" % i)
            path.write_text(recorded_trace.read_text())
            paths.append(str(path))
        serial_code, serial_out = run_cli(
            ["batch"] + paths + ["--app", "sites"])
        pooled_code, pooled_out = run_cli(
            ["batch"] + paths + ["--app", "sites", "--workers", "2"])
        assert serial_code == pooled_code == 0
        assert "batch: 4/4 trace(s) complete" in pooled_out

        def split(output):
            lines = output.splitlines()
            return ([line for line in lines if not line.startswith("perf:")],
                    {line.split()[1] for line in lines
                     if line.startswith("perf:")})

        serial_lines, serial_caches = split(serial_out)
        pooled_lines, pooled_caches = split(pooled_out)
        # Same per-trace summaries and batch summary; perf counter
        # *values* differ (caches are per-process) but the cache set
        # must not.
        assert pooled_lines == serial_lines
        assert pooled_caches == serial_caches

    def test_batch_trace_timeout_flag_accepted(self, recorded_trace):
        code, output = run_cli(["batch", str(recorded_trace),
                                "--app", "sites", "--workers", "2",
                                "--trace-timeout", "60"])
        assert code == 0
        assert "batch: 1/1 trace(s) complete" in output


class TestInspect:
    def test_inspect_prints_stats(self, recorded_trace):
        code, output = run_cli(["inspect", str(recorded_trace)])
        assert code == 0
        assert "commands:" in output
        assert "typing speed" in output
        assert "start url: http://sites.example.com/edit/home" in output

    def test_inspect_commands_listing(self, recorded_trace):
        code, output = run_cli(["inspect", str(recorded_trace),
                                "--commands"])
        assert 'click //div/span[@id="start"]' in output


class TestWebErrCommand:
    def test_timing_campaign_reports_bug(self, recorded_trace):
        code, output = run_cli(["weberr", str(recorded_trace),
                                "--app", "sites", "--campaign", "timing"])
        assert code == 0
        assert "BUG no-wait" in output
        assert "editorState" in output

    def test_navigation_campaign_runs(self, recorded_trace):
        code, output = run_cli(["weberr", str(recorded_trace),
                                "--app", "sites", "--campaign", "navigation",
                                "--max-tests", "8"])
        assert code == 0
        assert "[navigation]" in output
