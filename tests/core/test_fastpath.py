"""Replay fast path: cache invalidation, on/off equivalence, coalescing.

The caches (compiled XPath, DOM indexes, relaxation memo, lazy layout)
are only allowed to be fast — never to change an answer. These tests
mutate documents between queries and require every cached layer to
reflect the new tree, and replay whole sessions with the fast path on
and off requiring identical outcomes.
"""

import pytest

from repro import perf
from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.relaxation import RelaxationEngine
from repro.core.replayer import TimingMode, WarrReplayer
from repro.dom.parser import parse_html
from repro.layout.engine import LayoutEngine
from repro.xpath.evaluator import evaluate

HTML = """
<html><body>
  <div id="main">
    <ul id="list">
      <li id="one">one</li>
      <li id="two">two</li>
    </ul>
    <span id="status">ready</span>
  </div>
</body></html>
"""


@pytest.fixture
def fast_on():
    with perf.fast_path(True):
        yield


@pytest.fixture
def doc(fast_on):
    return parse_html(HTML)


def resolve_hits():
    return perf.stats.counter("relax.resolve")[0]


class TestIndexInvalidation:
    """XPath answers must track the live tree, not the warmed index."""

    def test_appended_element_appears(self, doc):
        assert len(evaluate("//li", doc)) == 2  # warm the indexes
        ul = doc.get_element_by_id("list")
        ul.append_child(doc.create_element("li", {"id": "three"}))
        matches = evaluate("//li", doc)
        assert [li.id for li in matches] == ["one", "two", "three"]

    def test_removed_element_disappears(self, doc):
        assert len(evaluate("//li", doc)) == 2
        ul = doc.get_element_by_id("list")
        removed = doc.get_element_by_id("one")
        ul.remove_child(removed)
        matches = evaluate("//li", doc)
        assert [li.id for li in matches] == ["two"]
        assert removed not in matches

    def test_attribute_change_updates_predicates(self, doc):
        assert evaluate('//li[@data-state="done"]', doc) == []
        doc.get_element_by_id("two").set_attribute("data-state", "done")
        matches = evaluate('//li[@data-state="done"]', doc)
        assert [li.id for li in matches] == ["two"]

    def test_tag_index_tracks_mutations(self, doc):
        assert len(doc.get_elements_by_tag("li")) == 2
        ul = doc.get_element_by_id("list")
        ul.append_child(doc.create_element("li", {"id": "three"}))
        assert len(doc.get_elements_by_tag("li")) == 3
        ul.remove_child(doc.get_element_by_id("one"))
        assert [li.id for li in doc.get_elements_by_tag("li")] \
            == ["two", "three"]

    def test_all_elements_tracks_mutations(self, doc):
        before = len(doc.all_elements())
        doc.body.append_child(doc.create_element("p"))
        assert len(doc.all_elements()) == before + 1

    def test_document_order_after_prepend(self, doc):
        assert len(evaluate("//li", doc)) == 2
        ul = doc.get_element_by_id("list")
        first = doc.create_element("li", {"id": "zero"})
        ul.insert_before(first, doc.get_element_by_id("one"))
        assert [li.id for li in evaluate("//li", doc)] \
            == ["zero", "one", "two"]


class TestLayoutInvalidation:
    """Dirty-tracked layout: stale boxes are never served, and bursts
    of invalidations coalesce into a single relayout."""

    def test_boxes_reflect_mutation(self, doc):
        engine = LayoutEngine(doc)
        assert engine.box_for(doc.get_element_by_id("status")) is not None
        added = doc.create_element("div", {"id": "new"})
        added.append_child(doc.create_text_node("fresh"))
        doc.body.append_child(added)
        engine.invalidate()
        assert engine.box_for(added) is not None

    def test_removed_element_loses_box(self, doc):
        engine = LayoutEngine(doc)
        status = doc.get_element_by_id("status")
        assert engine.box_for(status) is not None
        status.remove()
        engine.invalidate()
        assert engine.box_for(status) is None

    def test_invalidation_bursts_coalesce(self, doc, monkeypatch):
        engine = LayoutEngine(doc)
        relayouts = []
        original = engine.relayout
        monkeypatch.setattr(
            engine, "relayout", lambda: (relayouts.append(1), original())[1]
        )
        for _ in range(5):
            engine.invalidate()
        assert relayouts == []  # nothing recomputed yet
        engine.box_for(doc.body)
        engine.hit_test(10, 10)
        assert len(relayouts) == 1

    def test_uncached_invalidate_is_eager(self, doc, monkeypatch):
        engine = LayoutEngine(doc)
        relayouts = []
        original = engine.relayout
        monkeypatch.setattr(
            engine, "relayout", lambda: (relayouts.append(1), original())[1]
        )
        with perf.fast_path(False):
            engine.invalidate()
            engine.invalidate()
        assert len(relayouts) == 2


class TestRelaxationMemo:
    """The memoized resolver must never serve a detached or stale
    element, and must keep serving hits across unobserved mutations."""

    def test_stable_dom_is_memoized(self, doc):
        engine = RelaxationEngine()
        first, _ = engine.resolve('//li[@id="one"]', doc)
        hits = resolve_hits()
        second, description = engine.resolve('//li[@id="one"]', doc)
        assert second is first
        assert description == "original"
        assert resolve_hits() == hits + 1

    def test_never_returns_detached_element(self, doc):
        engine = RelaxationEngine()
        target, _ = engine.resolve('//span[@id="status"]', doc)
        target.remove()
        doc.body.append_child(
            doc.create_element("span", {"id": "status"})
        )
        element, _ = engine.resolve('//span[@id="status"]', doc)
        assert element is not target
        assert element.root() is doc

    def test_attribute_move_is_observed(self, doc):
        engine = RelaxationEngine()
        one = doc.get_element_by_id("one")
        two = doc.get_element_by_id("two")
        one.set_attribute("data-k", "v")
        found, _ = engine.resolve('//li[@data-k="v"]', doc)
        assert found is one
        # Move the attribute: the memo observes attribute mutations for
        # attribute locators, so the answer must follow.
        one.remove_attribute("data-k")
        two.set_attribute("data-k", "v")
        found, _ = engine.resolve('//li[@data-k="v"]', doc)
        assert found is two

    def test_text_mutation_keeps_id_locator_memoized(self, doc):
        engine = RelaxationEngine()
        engine.resolve('//li[@id="one"]', doc)
        hits = resolve_hits()
        # A pure text edit elsewhere must not evict an id locator.
        doc.get_element_by_id("status").text_content = "typing..."
        element, _ = engine.resolve('//li[@id="one"]', doc)
        assert element is doc.get_element_by_id("one")
        assert resolve_hits() == hits + 1


EXPRESSIONS = [
    "//li",
    '//li[@id="two"]',
    "//ul/li[2]",
    "//div//span",
    "/html/body/div",
    "//*",
]


class TestOnOffEquivalence:
    """The fast path must change throughput only, never answers."""

    def test_xpath_results_identical(self):
        doc = parse_html(HTML)
        with perf.fast_path(False):
            slow = [evaluate(expr, doc) for expr in EXPRESSIONS]
        with perf.fast_path(True):
            fast = [evaluate(expr, doc) for expr in EXPRESSIONS]
        for expr, a, b in zip(EXPRESSIONS, slow, fast):
            assert a == b, expr

    def test_xpath_results_identical_after_mutation(self):
        doc = parse_html(HTML)
        with perf.fast_path(True):
            evaluate("//li", doc)  # warm
        doc.get_element_by_id("list").append_child(doc.create_element("li"))
        with perf.fast_path(True):
            fast = [evaluate(expr, doc) for expr in EXPRESSIONS]
        with perf.fast_path(False):
            slow = [evaluate(expr, doc) for expr in EXPRESSIONS]
        for expr, a, b in zip(EXPRESSIONS, slow, fast):
            assert a == b, expr

    def test_hit_test_targets_identical(self):
        doc = parse_html(HTML)
        points = [(x, y) for x in range(0, 400, 40) for y in range(0, 120, 12)]
        with perf.fast_path(False):
            engine = LayoutEngine(doc).relayout()
            slow = [engine.hit_test(x, y) for x, y in points]
        with perf.fast_path(True):
            engine = LayoutEngine(doc).relayout()
            fast = [engine.hit_test(x, y) for x, y in points]
        assert slow == fast

    def test_replay_reports_identical(self, sites_trace):
        def replay(fast):
            with perf.fast_path(fast):
                browser, _ = make_browser(
                    [SitesApplication], developer_mode=True)
                return WarrReplayer(
                    browser, timing=TimingMode.no_wait()).replay(sites_trace)

        uncached = replay(False)
        cached = replay(True)
        assert [r.status for r in cached.results] \
            == [r.status for r in uncached.results]
        assert cached.final_url == uncached.final_url
        assert cached.replayed_count == uncached.replayed_count
        assert cached.summary().splitlines()[0] \
            == uncached.summary().splitlines()[0]


class TestPerfDelta:
    """Pin the delta() contract: hit_rate is always a real rate."""

    def test_zero_activity_caches_are_dropped(self):
        before = perf.snapshot()
        assert perf.delta(before) == {}

    def test_hit_rate_is_always_a_float(self):
        before = perf.snapshot()
        perf.record("pin.hits", hit=True)
        perf.record("pin.mixed", hit=True)
        perf.record("pin.mixed", hit=False)
        perf.record("pin.misses", hit=False)
        counters = perf.delta(before)
        assert set(counters) == {"pin.hits", "pin.mixed", "pin.misses"}
        for name, counts in counters.items():
            rate = counts["hit_rate"]
            assert isinstance(rate, float), name
            assert 0.0 <= rate <= 1.0, name
        assert counters["pin.hits"]["hit_rate"] == 1.0
        assert counters["pin.mixed"]["hit_rate"] == 0.5
        assert counters["pin.misses"]["hit_rate"] == 0.0
