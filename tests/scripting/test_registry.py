"""Script registry."""

import pytest

from repro.scripting.registry import ScriptRegistry
from repro.util.errors import ScriptError


def test_register_direct_and_get():
    registry = ScriptRegistry()
    fn = lambda window: None
    registry.register("app.main", fn)
    assert registry.get("app.main") is fn


def test_register_as_decorator():
    registry = ScriptRegistry()

    @registry.register("app.page")
    def page(window):
        return "ran"

    assert registry.get("app.page") is page


def test_unknown_name_raises_script_error():
    with pytest.raises(ScriptError):
        ScriptRegistry().get("ghost")


def test_has_and_names():
    registry = ScriptRegistry()
    registry.register("b", lambda w: None)
    registry.register("a", lambda w: None)
    assert registry.has("a")
    assert not registry.has("c")
    assert registry.names() == ["a", "b"]


def test_merge_combines_registries():
    first = ScriptRegistry()
    second = ScriptRegistry()
    first.register("one", lambda w: 1)
    second.register("two", lambda w: 2)
    first.merge(second)
    assert first.has("one") and first.has("two")


def test_merge_later_wins():
    first = ScriptRegistry()
    second = ScriptRegistry()
    original = lambda w: "old"
    replacement = lambda w: "new"
    first.register("x", original)
    second.register("x", replacement)
    first.merge(second)
    assert first.get("x") is replacement
