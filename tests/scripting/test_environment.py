"""JS-like namespace semantics (the uninitialized-variable bug class)."""

import pytest

from repro.scripting.environment import JSEnvironment
from repro.util.errors import JSReferenceError


def test_read_before_assign_raises_reference_error():
    env = JSEnvironment()
    with pytest.raises(JSReferenceError) as exc:
        env.editorState
    assert "editorState is not defined" in str(exc.value)


def test_assign_then_read():
    env = JSEnvironment()
    env.counter = 3
    assert env.counter == 3


def test_initial_values():
    env = JSEnvironment(ready=False)
    assert env.ready is False


def test_delete_defined_variable():
    env = JSEnvironment()
    env.x = 1
    del env.x
    with pytest.raises(JSReferenceError):
        env.x


def test_delete_undefined_raises():
    env = JSEnvironment()
    with pytest.raises(JSReferenceError):
        del env.nothing


def test_contains_and_defined():
    env = JSEnvironment()
    assert "x" not in env
    assert not env.defined("x")
    env.x = None
    assert "x" in env
    assert env.defined("x")


def test_get_with_default_never_raises():
    env = JSEnvironment()
    assert env.get("missing") is None
    assert env.get("missing", 7) == 7


def test_names_sorted():
    env = JSEnvironment()
    env.b = 1
    env.a = 2
    assert env.names() == ["a", "b"]


def test_reassignment_overwrites():
    env = JSEnvironment()
    env.x = 1
    env.x = 2
    assert env.x == 2
