"""Window context: timers, console, navigation, XHR wiring."""

import pytest

from repro.dom.parser import parse_html
from repro.net.server import Network, RouteServer
from repro.net.http import HttpResponse
from repro.scripting.context import Console, Window
from repro.util.clock import VirtualClock
from repro.util.errors import JSReferenceError, ScriptError
from repro.util.event_loop import EventLoop


@pytest.fixture
def loop():
    return EventLoop(VirtualClock())


def make_window(loop, network=None, navigate=None, error_sink=None):
    document = parse_html("<div id='x'>hi</div>", url="http://page/")
    return Window(document, loop, network=network, navigate=navigate,
                  error_sink=error_sink)


class TestConsole:
    def test_log_collects(self):
        console = Console()
        console.log("hello")
        console.log(42)
        assert console.messages == ["hello", "42"]

    def test_error_wraps_non_script_errors(self):
        console = Console()
        console.error("plain message")
        assert isinstance(console.errors[0], ScriptError)
        assert console.has_errors

    def test_sink_receives_errors(self):
        collected = []
        console = Console(sink=collected.append)
        error = ScriptError("boom")
        console.error(error)
        assert collected == [error]


class TestTimers:
    def test_set_timeout_runs_later(self, loop):
        window = make_window(loop)
        fired = []
        window.set_timeout(100, lambda: fired.append(loop.clock.now()))
        assert fired == []
        loop.run_until_idle()
        assert fired == [100.0]

    def test_clear_timeout(self, loop):
        window = make_window(loop)
        fired = []
        task = window.set_timeout(10, lambda: fired.append(1))
        window.clear_timeout(task)
        loop.run_until_idle()
        assert fired == []

    def test_cancel_all_timers_on_unload(self, loop):
        window = make_window(loop)
        fired = []
        window.set_timeout(10, lambda: fired.append(1))
        window.set_timeout(20, lambda: fired.append(2))
        window.cancel_all_timers()
        loop.run_until_idle()
        assert fired == []

    def test_timer_error_lands_on_console(self, loop):
        window = make_window(loop)

        def explode():
            raise JSReferenceError("x is not defined")

        window.set_timeout(5, explode)
        loop.run_until_idle()
        assert window.console.has_errors
        assert isinstance(window.console.errors[0], JSReferenceError)

    def test_timer_wraps_plain_exception(self, loop):
        window = make_window(loop)
        window.set_timeout(5, lambda: 1 / 0)
        loop.run_until_idle()
        assert isinstance(window.console.errors[0], ScriptError)


class TestNavigation:
    def test_navigate_invokes_hook(self, loop):
        target = []
        window = make_window(loop, navigate=target.append)
        window.navigate("http://other/")
        assert target == ["http://other/"]

    def test_navigate_without_hook_raises(self, loop):
        with pytest.raises(ScriptError):
            make_window(loop).navigate("http://x/")

    def test_location(self, loop):
        assert make_window(loop).location == "http://page/"


class TestXhr:
    def test_xhr_bound_to_network(self, loop):
        network = Network(loop, default_latency_ms=10)
        server = RouteServer()
        server.add_route("/d", lambda request: HttpResponse.json("1"))
        network.register("api", server)
        window = make_window(loop, network=network)
        xhr = window.xhr()
        xhr.open("GET", "http://api/d")
        xhr.send()
        loop.run_until_idle()
        assert xhr.response_text == "1"

    def test_xhr_without_network_raises(self, loop):
        with pytest.raises(ScriptError):
            make_window(loop).xhr()


class TestDomSugar:
    def test_get_element_by_id(self, loop):
        window = make_window(loop)
        assert window.get_element_by_id("x").text_content == "hi"

    def test_create_element(self, loop):
        window = make_window(loop)
        el = window.create_element("span", {"id": "n"})
        assert el.tag == "span"
        assert el.owner_document is window.document

    def test_env_is_js_environment(self, loop):
        window = make_window(loop)
        with pytest.raises(JSReferenceError):
            window.env.undefined_thing
