"""Virtual key codes (the [H,72] payloads of Figure 4)."""

import pytest

from repro.events import keys


class TestLetterCodes:
    def test_letters_map_to_uppercase_ascii(self):
        assert keys.virtual_key_code("H") == 72
        assert keys.virtual_key_code("h") == 72

    @pytest.mark.parametrize("char,code", [
        ("e", 69), ("l", 76), ("o", 79), ("w", 87), ("r", 82), ("d", 68),
    ])
    def test_figure4_letters(self, char, code):
        assert keys.virtual_key_code(char) == code


class TestShiftedSymbols:
    def test_bang_logs_the_one_key(self):
        # Figure 4 logs '!' as [!,49] — the code of the '1' key.
        assert keys.virtual_key_code("!") == 49

    @pytest.mark.parametrize("symbol,base", [
        ("@", "2"), ("#", "3"), ("$", "4"), ("%", "5"), ("^", "6"),
        ("&", "7"), ("*", "8"), ("(", "9"), (")", "0"),
    ])
    def test_digit_row(self, symbol, base):
        assert keys.virtual_key_code(symbol) == ord(base)

    def test_colon_matches_semicolon_key(self):
        assert keys.virtual_key_code(":") == keys.virtual_key_code(";")

    def test_question_mark_matches_slash_key(self):
        assert keys.virtual_key_code("?") == keys.virtual_key_code("/")


class TestControlKeys:
    @pytest.mark.parametrize("name,code", [
        ("Backspace", 8), ("Tab", 9), ("Enter", 13), ("Shift", 16),
        ("Control", 17), ("Alt", 18), ("Escape", 27), ("Delete", 46),
    ])
    def test_named_keys(self, name, code):
        assert keys.virtual_key_code(name) == code

    def test_space(self):
        assert keys.virtual_key_code(" ") == 32

    def test_unknown_multi_char_raises(self):
        with pytest.raises(ValueError):
            keys.virtual_key_code("NotAKey")

    def test_key_name_round_trip(self):
        assert keys.key_name(13) == "Enter"
        assert keys.key_name(999) is None


class TestNeedsShift:
    def test_uppercase_letters(self):
        assert keys.needs_shift("H")
        assert not keys.needs_shift("h")

    def test_shifted_symbols(self):
        assert keys.needs_shift("!")
        assert keys.needs_shift("?")
        assert not keys.needs_shift("1")
        assert not keys.needs_shift("/")

    def test_named_keys_do_not_need_shift(self):
        assert not keys.needs_shift("Enter")


class TestPrintable:
    def test_single_chars_printable(self):
        assert keys.is_printable("a")
        assert keys.is_printable(" ")

    def test_named_keys_not_printable(self):
        assert not keys.is_printable("Enter")
        assert not keys.is_printable("Shift")


def test_exotic_letter_uses_uppercase_code_point():
    assert keys.virtual_key_code("é") == ord("É")


def test_exotic_symbol_falls_back_to_code_point():
    assert keys.virtual_key_code("€") == ord("€")
