"""Capture/target/bubble dispatch semantics."""

import pytest

from repro.dom.parser import parse_html
from repro.events.dispatch import dispatch_event
from repro.events.event import Event
from repro.util.errors import JSReferenceError, ScriptError


@pytest.fixture
def tree():
    doc = parse_html('<div id="outer"><p id="mid"><span id="inner">x</span></p></div>')
    return (doc, doc.get_element_by_id("outer"), doc.get_element_by_id("mid"),
            doc.get_element_by_id("inner"))


def test_full_phase_order(tree):
    doc, outer, mid, inner = tree
    order = []
    outer.add_event_listener("click", lambda e: order.append("outer-capture"),
                             capture=True)
    mid.add_event_listener("click", lambda e: order.append("mid-capture"),
                           capture=True)
    inner.add_event_listener("click", lambda e: order.append("target"))
    mid.add_event_listener("click", lambda e: order.append("mid-bubble"))
    outer.add_event_listener("click", lambda e: order.append("outer-bubble"))
    dispatch_event(inner, Event("click"))
    assert order == ["outer-capture", "mid-capture", "target",
                     "mid-bubble", "outer-bubble"]


def test_target_runs_capture_listeners_first(tree):
    _, _, _, inner = tree
    order = []
    inner.add_event_listener("click", lambda e: order.append("bubble"))
    inner.add_event_listener("click", lambda e: order.append("capture"),
                             capture=True)
    dispatch_event(inner, Event("click"))
    assert order == ["capture", "bubble"]


def test_non_bubbling_event_skips_ancestors(tree):
    _, outer, _, inner = tree
    called = []
    outer.add_event_listener("focus", lambda e: called.append("outer"))
    inner.add_event_listener("focus", lambda e: called.append("inner"))
    dispatch_event(inner, Event("focus", bubbles=False))
    assert called == ["inner"]


def test_stop_propagation_in_capture_blocks_target(tree):
    _, outer, _, inner = tree
    called = []
    outer.add_event_listener("click", lambda e: e.stop_propagation(),
                             capture=True)
    inner.add_event_listener("click", lambda e: called.append("target"))
    dispatch_event(inner, Event("click"))
    assert called == []


def test_stop_propagation_at_target_blocks_bubble(tree):
    _, outer, _, inner = tree
    called = []

    def stop(event):
        event.stop_propagation()
        called.append("target")

    inner.add_event_listener("click", stop)
    outer.add_event_listener("click", lambda e: called.append("outer"))
    dispatch_event(inner, Event("click"))
    assert called == ["target"]


def test_return_value_reflects_prevent_default(tree):
    _, _, _, inner = tree
    inner.add_event_listener("click", lambda e: e.prevent_default())
    assert dispatch_event(inner, Event("click")) is False
    assert dispatch_event(inner, Event("dblclick")) is True


def test_event_fields_set_during_dispatch(tree):
    _, outer, _, inner = tree
    seen = {}

    def capture_handler(event):
        seen["current"] = event.current_target
        seen["target"] = event.target

    outer.add_event_listener("click", capture_handler, capture=True)
    dispatch_event(inner, Event("click"))
    assert seen["current"] is outer
    assert seen["target"] is inner


def test_handler_error_goes_to_on_error_and_dispatch_continues(tree):
    _, outer, _, inner = tree
    errors = []
    called = []

    def broken(event):
        raise JSReferenceError("editorState is not defined")

    inner.add_event_listener("click", broken)
    outer.add_event_listener("click", lambda e: called.append("outer"))
    dispatch_event(inner, Event("click"), on_error=errors.append)
    assert len(errors) == 1
    assert isinstance(errors[0], JSReferenceError)
    assert called == ["outer"]


def test_handler_error_raises_without_on_error(tree):
    _, _, _, inner = tree
    inner.add_event_listener("click",
                             lambda e: (_ for _ in ()).throw(ValueError("x")))
    with pytest.raises(ScriptError):
        dispatch_event(inner, Event("click"))


def test_non_script_exception_is_wrapped(tree):
    _, _, _, inner = tree
    errors = []

    def broken(event):
        raise KeyError("missing")

    inner.add_event_listener("click", broken)
    dispatch_event(inner, Event("click"), on_error=errors.append)
    assert isinstance(errors[0], ScriptError)
    assert isinstance(errors[0].cause, KeyError)


def test_multiple_handlers_same_node_run_in_order(tree):
    _, _, _, inner = tree
    order = []
    inner.add_event_listener("click", lambda e: order.append(1))
    inner.add_event_listener("click", lambda e: order.append(2))
    dispatch_event(inner, Event("click"))
    assert order == [1, 2]
