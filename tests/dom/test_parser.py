"""HTML parser behaviour."""

import pytest

from repro.dom.node import Comment, Element, Text
from repro.dom.parser import decode_entities, parse_fragment, parse_html


class TestBasicParsing:
    def test_simple_document(self):
        doc = parse_html("<html><head><title>T</title></head>"
                         "<body><p>hi</p></body></html>")
        assert doc.title == "T"
        assert doc.body.children[0].tag == "p"

    def test_skeleton_added_when_missing(self):
        doc = parse_html("<p>bare</p>")
        assert doc.document_element.tag == "html"
        assert doc.head is not None
        assert doc.body is not None
        assert doc.body.children[0].tag == "p"

    def test_url_is_kept(self):
        doc = parse_html("<p>x</p>", url="http://a/b")
        assert doc.url == "http://a/b"

    def test_nested_elements(self):
        doc = parse_html("<div><ul><li><b>x</b></li></ul></div>")
        b = doc.get_elements_by_tag("b")[0]
        chain = [a.tag for a in b.ancestors() if hasattr(a, "tag")]
        assert chain[:4] == ["li", "ul", "div", "body"]

    def test_doctype_is_ignored(self):
        doc = parse_html("<!DOCTYPE html><html><body><p>x</p></body></html>")
        assert doc.body.children[0].tag == "p"


class TestAttributes:
    def test_double_quoted(self):
        doc = parse_html('<div id="main" class="a b">x</div>')
        el = doc.get_element_by_id("main")
        assert el.classes == ["a", "b"]

    def test_single_quoted(self):
        doc = parse_html("<div id='main'>x</div>")
        assert doc.get_element_by_id("main") is not None

    def test_unquoted(self):
        doc = parse_html("<input type=text name=q>")
        el = doc.get_elements_by_tag("input")[0]
        assert el.get_attribute("type") == "text"
        assert el.name == "q"

    def test_bare_attribute(self):
        doc = parse_html("<input disabled>")
        assert doc.get_elements_by_tag("input")[0].has_attribute("disabled")

    def test_attribute_names_lowercased(self):
        doc = parse_html('<div ID="x">y</div>')
        assert doc.get_element_by_id("x") is not None

    def test_entities_in_attribute_values(self):
        doc = parse_html('<div title="a &amp; b">x</div>')
        assert doc.get_elements_by_tag("div")[0].get_attribute("title") == "a & b"


class TestVoidAndSelfClosing:
    def test_void_elements_do_not_nest(self):
        doc = parse_html("<div><br><span>after</span></div>")
        div = doc.get_elements_by_tag("div")[0]
        assert [c.tag for c in div.child_elements()] == ["br", "span"]

    def test_self_closing_syntax(self):
        doc = parse_html("<div><img src='x.png'/><span>s</span></div>")
        div = doc.get_elements_by_tag("div")[0]
        assert [c.tag for c in div.child_elements()] == ["img", "span"]

    def test_stray_void_end_tag_ignored(self):
        doc = parse_html("<div><br></br><span>x</span></div>")
        assert doc.get_elements_by_tag("span")[0].text_content == "x"


class TestImpliedEndTags:
    def test_li_closes_li(self):
        doc = parse_html("<ul><li>a<li>b<li>c</ul>")
        ul = doc.get_elements_by_tag("ul")[0]
        assert [li.text_content for li in ul.child_elements()] == ["a", "b", "c"]

    def test_td_closes_td(self):
        doc = parse_html("<table><tr><td>a<td>b</tr></table>")
        tr = doc.get_elements_by_tag("tr")[0]
        assert [td.text_content for td in tr.child_elements()] == ["a", "b"]

    def test_tr_closes_tr(self):
        doc = parse_html("<table><tr><td>a</td><tr><td>b</td></table>")
        assert len(doc.get_elements_by_tag("tr")) == 2


class TestRawText:
    def test_script_content_not_parsed(self):
        doc = parse_html("<script>if (a < b) { x(); }</script><p>after</p>")
        script = doc.get_elements_by_tag("script")[0]
        assert "a < b" in script.text_content
        assert doc.get_elements_by_tag("p")[0].text_content == "after"

    def test_textarea_preserves_markup(self):
        doc = parse_html("<textarea><b>not bold</b></textarea>")
        area = doc.get_elements_by_tag("textarea")[0]
        assert area.text_content == "<b>not bold</b>"
        assert area.child_elements() == []

    def test_style_raw(self):
        doc = parse_html("<style>p > b { color: red }</style>")
        assert ">" in doc.get_elements_by_tag("style")[0].text_content


class TestComments:
    def test_comment_preserved(self):
        doc = parse_html("<div><!-- note --><p>x</p></div>")
        div = doc.get_elements_by_tag("div")[0]
        comments = [c for c in div.children if isinstance(c, Comment)]
        assert len(comments) == 1
        assert comments[0].data == " note "

    def test_unterminated_comment_swallows_rest(self):
        doc = parse_html("<div>a</div><!-- oops <p>x</p>")
        assert doc.get_elements_by_tag("p") == []


class TestRecovery:
    def test_mismatched_end_tag_pops_to_match(self):
        doc = parse_html("<div><span>x</div><p>y</p>")
        p = doc.get_elements_by_tag("p")[0]
        assert p.parent.tag == "body"

    def test_unknown_end_tag_ignored(self):
        doc = parse_html("<div>x</bogus></div>")
        assert doc.get_elements_by_tag("div")[0].text_content == "x"

    def test_lone_less_than_is_text(self):
        doc = parse_html("<p>1 < 2</p>")
        assert doc.get_elements_by_tag("p")[0].text_content == "1 < 2"


class TestEntities:
    @pytest.mark.parametrize("raw,expected", [
        ("&amp;", "&"), ("&lt;", "<"), ("&gt;", ">"),
        ("&quot;", '"'), ("&apos;", "'"), ("&nbsp;", "\xa0"),
        ("&#65;", "A"), ("&#x41;", "A"), ("&#x2764;", "❤"),
    ])
    def test_known_entities(self, raw, expected):
        assert decode_entities(raw) == expected

    def test_unknown_entity_left_alone(self):
        assert decode_entities("&bogus;") == "&bogus;"

    def test_unterminated_ampersand(self):
        assert decode_entities("AT&T") == "AT&T"

    def test_text_entities_decoded_in_document(self):
        doc = parse_html("<p>fish &amp; chips</p>")
        assert doc.get_elements_by_tag("p")[0].text_content == "fish & chips"


class TestFragment:
    def test_fragment_returns_detached_nodes(self):
        nodes = parse_fragment("<li>a</li><li>b</li>")
        assert [n.tag for n in nodes] == ["li", "li"]
        assert all(n.parent is None for n in nodes)

    def test_fragment_with_text(self):
        nodes = parse_fragment("hello <b>world</b>")
        assert isinstance(nodes[0], Text)
        assert isinstance(nodes[1], Element)


class TestWhitespace:
    def test_interelement_whitespace_dropped(self):
        doc = parse_html("<div>\n  <p>x</p>\n</div>")
        div = doc.get_elements_by_tag("div")[0]
        assert all(not isinstance(c, Text) for c in div.children)

    def test_meaningful_text_kept(self):
        doc = parse_html("<p>  spaced  </p>")
        assert doc.get_elements_by_tag("p")[0].text_content == "  spaced  "
