"""Serialization and parse/serialize round trips."""

from hypothesis import given, strategies as st

from repro.dom.node import Document, Text
from repro.dom.parser import parse_html
from repro.dom.serialize import serialize, serialize_pretty


class TestSerialize:
    def test_simple_element(self):
        doc = Document()
        el = doc.create_element("div", {"id": "x"})
        el.append_child(Text("hi"))
        assert serialize(el) == '<div id="x">hi</div>'

    def test_void_element_no_end_tag(self):
        doc = Document()
        assert serialize(doc.create_element("br")) == "<br>"

    def test_bare_attribute(self):
        doc = Document()
        el = doc.create_element("input", {"disabled": ""})
        assert serialize(el) == "<input disabled>"

    def test_text_is_escaped(self):
        doc = Document()
        el = doc.create_element("p")
        el.append_child(Text("a < b & c"))
        assert serialize(el) == "<p>a &lt; b &amp; c</p>"

    def test_attribute_quotes_escaped(self):
        doc = Document()
        el = doc.create_element("div", {"title": 'say "hi"'})
        assert '&quot;' in serialize(el)

    def test_comment(self):
        doc = parse_html("<div><!--note--></div>")
        assert "<!--note-->" in serialize(doc)

    def test_script_content_not_escaped(self):
        doc = parse_html("<script>a < b</script>")
        assert "a < b" in serialize(doc)


class TestRoundTrip:
    def test_structure_survives(self):
        html = ('<html><head><title>T</title></head><body>'
                '<div id="main" class="a"><span>x</span>'
                '<input type="text" name="q"></div></body></html>')
        once = serialize(parse_html(html))
        twice = serialize(parse_html(once))
        assert once == twice

    @given(st.lists(
        st.sampled_from(["div", "span", "p", "b", "ul", "li"]), min_size=1,
        max_size=6))
    def test_nested_tags_round_trip(self, tags):
        html = "".join("<%s>" % t for t in tags)
        html += "x"
        html += "".join("</%s>" % t for t in reversed(tags))
        once = serialize(parse_html(html))
        assert serialize(parse_html(once)) == once

    @given(st.text(
        alphabet=st.characters(blacklist_categories=("Cc", "Cs")),
        max_size=30))
    def test_text_content_round_trips(self, text):
        doc = Document()
        el = doc.create_element("p")
        el.append_child(Text(text))
        doc.append_child(el)
        reparsed = parse_html(serialize(doc))
        paragraphs = reparsed.get_elements_by_tag("p")
        # Whitespace-only text is dropped by design; otherwise exact.
        if text.strip():
            assert paragraphs[0].text_content == text


class TestPretty:
    def test_indents_children(self):
        doc = parse_html("<div><p>x</p></div>")
        pretty = serialize_pretty(doc.body)
        lines = pretty.splitlines()
        assert lines[0] == "<body>"
        assert lines[1].startswith("  <div>")

    def test_text_only_element_is_one_line(self):
        doc = parse_html("<p>hello</p>")
        pretty = serialize_pretty(doc.get_elements_by_tag("p")[0])
        assert pretty == "<p>hello</p>"

    def test_void_element(self):
        doc = parse_html("<div><br></div>")
        assert "<br>" in serialize_pretty(doc)
