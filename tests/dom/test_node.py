"""DOM node tree manipulation, attributes, and text content."""

import pytest

from repro.dom.node import Comment, Document, Element, Text
from repro.util.errors import DomError


@pytest.fixture
def doc():
    return Document(url="http://test/")


class TestTreeStructure:
    def test_append_child_sets_parent(self, doc):
        parent = doc.create_element("div")
        child = doc.create_element("span")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_adopts_owner_document(self, doc):
        parent = doc.create_element("div")
        doc.append_child(parent)
        child = Element("span")
        grandchild = Text("hi")
        child.append_child(grandchild)
        parent.append_child(child)
        assert child.owner_document is doc
        assert grandchild.owner_document is doc

    def test_insert_before(self, doc):
        parent = doc.create_element("ul")
        first = doc.create_element("li")
        second = doc.create_element("li")
        parent.append_child(second)
        parent.insert_before(first, second)
        assert parent.children == [first, second]

    def test_insert_before_unknown_reference_fails(self, doc):
        parent = doc.create_element("div")
        stranger = doc.create_element("p")
        with pytest.raises(DomError):
            parent.insert_before(doc.create_element("span"), stranger)

    def test_reinserting_moves_node(self, doc):
        a = doc.create_element("div")
        b = doc.create_element("div")
        child = doc.create_element("span")
        a.append_child(child)
        b.append_child(child)
        assert a.children == []
        assert child.parent is b

    def test_cannot_be_own_child(self, doc):
        node = doc.create_element("div")
        with pytest.raises(DomError):
            node.append_child(node)

    def test_cannot_insert_ancestor(self, doc):
        outer = doc.create_element("div")
        inner = doc.create_element("div")
        outer.append_child(inner)
        with pytest.raises(DomError):
            inner.append_child(outer)

    def test_remove_child(self, doc):
        parent = doc.create_element("div")
        child = doc.create_element("span")
        parent.append_child(child)
        parent.remove_child(child)
        assert parent.children == []
        assert child.parent is None

    def test_remove_child_not_present_fails(self, doc):
        with pytest.raises(DomError):
            doc.create_element("div").remove_child(doc.create_element("p"))

    def test_replace_child(self, doc):
        parent = doc.create_element("div")
        old = doc.create_element("span")
        new = doc.create_element("b")
        parent.append_child(old)
        parent.replace_child(new, old)
        assert parent.children == [new]
        assert old.parent is None

    def test_remove_self(self, doc):
        parent = doc.create_element("div")
        child = doc.create_element("span")
        parent.append_child(child)
        child.remove()
        assert parent.children == []

    def test_remove_detached_is_noop(self, doc):
        doc.create_element("div").remove()  # no exception

    def test_contains(self, doc):
        outer = doc.create_element("div")
        inner = doc.create_element("span")
        outer.append_child(inner)
        assert outer.contains(inner)
        assert outer.contains(outer)
        assert not inner.contains(outer)

    def test_void_elements_refuse_children(self, doc):
        br = doc.create_element("br")
        with pytest.raises(DomError):
            br.append_child(doc.create_element("span"))

    def test_text_nodes_refuse_children(self):
        with pytest.raises(DomError):
            Text("x").append_child(Text("y"))

    def test_comment_nodes_refuse_children(self):
        with pytest.raises(DomError):
            Comment("x").append_child(Text("y"))


class TestTraversal:
    def test_descendants_preorder(self, doc):
        root = doc.create_element("div")
        a = doc.create_element("a")
        b = doc.create_element("b")
        inner = doc.create_element("i")
        root.append_child(a)
        a.append_child(inner)
        root.append_child(b)
        assert list(root.descendants()) == [a, inner, b]

    def test_ancestors(self, doc):
        outer = doc.create_element("div")
        mid = doc.create_element("p")
        leaf = doc.create_element("span")
        doc.append_child(outer)
        outer.append_child(mid)
        mid.append_child(leaf)
        assert list(leaf.ancestors()) == [mid, outer, doc]

    def test_root(self, doc):
        el = doc.create_element("div")
        doc.append_child(el)
        assert el.root() is doc

    def test_index_in_parent(self, doc):
        parent = doc.create_element("div")
        first = doc.create_element("a")
        second = doc.create_element("b")
        parent.append_child(first)
        parent.append_child(second)
        assert first.index_in_parent() == 0
        assert second.index_in_parent() == 1
        assert parent.index_in_parent() == -1

    def test_child_elements_skips_text(self, doc):
        parent = doc.create_element("div")
        parent.append_child(Text("hello"))
        el = doc.create_element("span")
        parent.append_child(el)
        assert parent.child_elements() == [el]


class TestTextContent:
    def test_concatenates_descendant_text(self, doc):
        root = doc.create_element("div")
        root.append_child(Text("Hello "))
        child = doc.create_element("b")
        child.append_child(Text("world"))
        root.append_child(child)
        assert root.text_content == "Hello world"

    def test_setter_replaces_children(self, doc):
        root = doc.create_element("div")
        root.append_child(doc.create_element("span"))
        root.text_content = "fresh"
        assert len(root.children) == 1
        assert isinstance(root.children[0], Text)
        assert root.text_content == "fresh"

    def test_setting_empty_clears(self, doc):
        root = doc.create_element("div")
        root.text_content = "x"
        root.text_content = ""
        assert root.children == []


class TestElementAttributes:
    def test_get_set_remove(self, doc):
        el = doc.create_element("div")
        el.set_attribute("data-x", "1")
        assert el.get_attribute("data-x") == "1"
        assert el.has_attribute("data-x")
        el.remove_attribute("data-x")
        assert el.get_attribute("data-x") is None

    def test_set_stringifies(self, doc):
        el = doc.create_element("div")
        el.set_attribute("count", 5)
        assert el.get_attribute("count") == "5"

    def test_id_property(self, doc):
        el = doc.create_element("div")
        assert el.id is None
        el.id = "main"
        assert el.get_attribute("id") == "main"

    def test_classes(self, doc):
        el = doc.create_element("div", {"class": "a b  c"})
        assert el.classes == ["a", "b", "c"]
        assert doc.create_element("div").classes == []

    def test_tag_is_lowercased(self):
        assert Element("DIV").tag == "div"


class TestFormValue:
    def test_value_reflects_attribute_until_written(self, doc):
        el = doc.create_element("input", {"value": "initial"})
        assert el.value == "initial"
        el.value = "typed"
        assert el.value == "typed"
        assert el.get_attribute("value") == "initial"

    def test_value_defaults_empty(self, doc):
        assert doc.create_element("input").value == ""

    def test_supports_value(self, doc):
        assert doc.create_element("input").supports_value()
        assert doc.create_element("textarea").supports_value()
        assert not doc.create_element("div").supports_value()


class TestContentEditable:
    def test_direct_flag(self, doc):
        el = doc.create_element("div", {"contenteditable": ""})
        assert el.is_content_editable

    def test_inherited_from_ancestor(self, doc):
        outer = doc.create_element("div", {"contenteditable": "true"})
        inner = doc.create_element("span")
        outer.append_child(inner)
        assert inner.is_content_editable

    def test_false_value_disables(self, doc):
        outer = doc.create_element("div", {"contenteditable": "true"})
        inner = doc.create_element("span", {"contenteditable": "false"})
        outer.append_child(inner)
        assert not inner.is_content_editable

    def test_default_is_not_editable(self, doc):
        assert not doc.create_element("div").is_content_editable


class TestFocusable:
    @pytest.mark.parametrize("tag", ["input", "textarea", "select", "button", "a"])
    def test_form_controls_focusable(self, doc, tag):
        assert doc.create_element(tag).is_focusable()

    def test_div_not_focusable(self, doc):
        assert not doc.create_element("div").is_focusable()

    def test_contenteditable_focusable(self, doc):
        assert doc.create_element("div", {"contenteditable": ""}).is_focusable()

    def test_tabindex_focusable(self, doc):
        assert doc.create_element("div", {"tabindex": "0"}).is_focusable()


class TestDocument:
    def test_get_element_by_id(self, doc):
        root = doc.create_element("div")
        target = doc.create_element("span", {"id": "x"})
        doc.append_child(root)
        root.append_child(target)
        assert doc.get_element_by_id("x") is target
        assert doc.get_element_by_id("missing") is None

    def test_get_elements_by_tag(self, doc):
        root = doc.create_element("div")
        doc.append_child(root)
        items = [doc.create_element("li") for _ in range(3)]
        for item in items:
            root.append_child(item)
        assert doc.get_elements_by_tag("LI") == items

    def test_listeners_storage(self, doc):
        el = doc.create_element("div")
        handler = lambda event: None
        el.add_event_listener("click", handler)
        assert el.listeners_for("click", capture=False) == [handler]
        assert el.has_listener("click")
        el.remove_event_listener("click", handler)
        assert not el.has_listener("click")

    def test_remove_unknown_listener_is_noop(self, doc):
        doc.create_element("div").remove_event_listener("click", lambda e: None)

    def test_capture_and_bubble_are_separate(self, doc):
        el = doc.create_element("div")
        handler = lambda event: None
        el.add_event_listener("click", handler, capture=True)
        assert el.listeners_for("click", capture=True) == [handler]
        assert el.listeners_for("click", capture=False) == []
