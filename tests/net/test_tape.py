"""The tape store: blobs, entries, and the WT1 binary format."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.http import HttpRequest, HttpResponse
from repro.net.tape import TAPE_MAGIC, BlobStore, Tape, TapeError
from repro.net.transport import body_hash


def recorded_tape():
    tape = Tape(label="unit", config={"app": "unit", "seed": 7})
    tape.stamp_chaos("flaky_net", 3)
    shell = "<html>shell</html>"
    tape.record(HttpRequest("http://h.example/"),
                HttpResponse(body=shell))
    tape.record(HttpRequest("http://h.example/other"),
                HttpResponse(body=shell))  # duplicate body
    tape.record(HttpRequest("http://h.example/api", method="POST",
                            body='{"q": 1}'),
                HttpResponse(body='{"n": 1}', status=201,
                             content_type="application/json",
                             headers={"X-Api": "v1"}))
    return tape


class TestBlobStore:
    def test_identical_bodies_stored_once(self):
        store = BlobStore()
        first = store.put("same body")
        second = store.put("same body")
        assert first == second
        assert len(store) == 1
        assert store.logical_bytes == 2 * len("same body")
        assert store.stored_bytes == len("same body")
        assert store.dedup_ratio == 2.0

    def test_empty_store_ratio_is_one(self):
        assert BlobStore().dedup_ratio == 1.0

    def test_get_round_trips_and_missing_raises(self):
        store = BlobStore()
        digest = store.put("payload")
        assert store.get(digest) == "payload"
        assert digest in store
        with pytest.raises(TapeError):
            store.get(body_hash("never stored"))

    def test_digest_is_content_address(self):
        assert BlobStore().put("x") == body_hash("x")


class TestTapeRecording:
    def test_entries_indexed_by_fingerprint(self):
        tape = recorded_tape()
        assert len(tape) == 3
        entry = tape.entries[0]
        matches = tape.entries_for(entry.fingerprint)
        assert matches == [entry]
        assert tape.entries_for("no such fingerprint") == []

    def test_response_for_rebuilds_exchange(self):
        tape = recorded_tape()
        response = tape.response_for(tape.entries[2])
        assert response.status == 201
        assert response.content_type == "application/json"
        assert response.body == '{"n": 1}'
        assert response.headers == {"X-Api": "v1"}

    def test_duplicate_bodies_dedup(self):
        tape = recorded_tape()
        stats = tape.stats()
        assert stats["entries"] == 3
        assert stats["unique_bodies"] == 2
        assert stats["dedup_ratio"] > 1.0

    def test_compact_drops_only_orphans(self):
        tape = recorded_tape()
        assert tape.compact() == 0  # recording never orphans
        tape.entries = tape.entries[:1]  # orphans the JSON body blob
        dropped = tape.compact()
        assert dropped == 1
        assert len(tape.blobs) == 1
        assert tape.response_for(tape.entries[0]).body \
            == "<html>shell</html>"


class TestWT1Format:
    def assert_tapes_equal(self, original, decoded):
        assert decoded.label == original.label
        assert decoded.config == original.config
        assert decoded.chaos_profile == original.chaos_profile
        assert decoded.chaos_seed == original.chaos_seed
        assert [e.to_dict() for e in decoded.entries] \
            == [e.to_dict() for e in original.entries]
        assert decoded.blobs._blobs == original.blobs._blobs
        assert decoded.blobs.logical_bytes == original.blobs.logical_bytes
        for entry in original.entries:
            assert [e.ordinal for e in
                    decoded.entries_for(entry.fingerprint)] \
                == [e.ordinal for e in
                    original.entries_for(entry.fingerprint)]

    def test_round_trip(self):
        tape = recorded_tape()
        self.assert_tapes_equal(tape, Tape.decode(tape.encode()))

    def test_empty_tape_round_trips(self):
        tape = Tape()
        decoded = Tape.decode(tape.encode())
        assert decoded.label is None
        assert decoded.config == {}
        assert decoded.chaos_profile is None
        assert decoded.chaos_seed is None
        assert len(decoded) == 0

    def test_magic_enforced(self):
        assert Tape().encode().startswith(TAPE_MAGIC)
        with pytest.raises(TapeError):
            Tape.decode(b"WR1" + Tape().encode()[3:])
        with pytest.raises(TapeError):
            Tape.decode("not bytes")

    def test_trailing_bytes_rejected(self):
        with pytest.raises(TapeError):
            Tape.decode(recorded_tape().encode() + b"\x00")

    def test_truncation_rejected(self):
        blob = recorded_tape().encode()
        with pytest.raises(TapeError):
            Tape.decode(blob[:len(blob) // 2])

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "t.tape")
        tape = recorded_tape()
        tape.save(path)
        self.assert_tapes_equal(tape, Tape.load(path))

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_round_trip_property(self, data):
        text = st.text(max_size=20)
        tape = Tape(
            label=data.draw(st.none() | text),
            config=data.draw(st.dictionaries(
                st.text(min_size=1, max_size=8),
                st.integers(0, 100) | text, max_size=3)),
        )
        if data.draw(st.booleans()):
            tape.stamp_chaos(data.draw(text), data.draw(st.integers(0, 2**31)))
        for _ in range(data.draw(st.integers(0, 6))):
            url = "http://h.example/" + data.draw(
                st.text(alphabet="abcxyz", max_size=6))
            tape.record(
                HttpRequest(url,
                            method=data.draw(st.sampled_from(
                                ["GET", "POST"])),
                            body=data.draw(text)),
                HttpResponse(body=data.draw(text),
                             status=data.draw(st.integers(100, 599)),
                             content_type=data.draw(st.sampled_from(
                                 ["text/html", "application/json"])),
                             headers=data.draw(st.dictionaries(
                                 st.text(alphabet="abc-", min_size=1,
                                         max_size=6),
                                 text, max_size=3))),
            )
        decoded = Tape.decode(tape.encode())
        assert decoded.label == tape.label
        assert decoded.config == tape.config
        assert decoded.chaos_profile == tape.chaos_profile
        assert decoded.chaos_seed == tape.chaos_seed
        assert [e.to_dict() for e in decoded.entries] \
            == [e.to_dict() for e in tape.entries]
        assert decoded.blobs._blobs == tape.blobs._blobs
        assert decoded.blobs.logical_bytes == tape.blobs.logical_bytes


class TestJsonExport:
    def test_export_json_is_loadable_and_complete(self, tmp_path):
        path = str(tmp_path / "t.json")
        tape = recorded_tape()
        tape.export_json(path)
        with open(path) as handle:
            data = json.load(handle)
        assert data["format"] == "WT1"
        assert data["label"] == "unit"
        assert data["chaos"] == {"profile": "flaky_net", "seed": 3}
        assert len(data["entries"]) == 3
        assert data["stats"]["unique_bodies"] == 2
        # Every referenced body is present inline.
        for entry in data["entries"]:
            assert entry["body_digest"] in data["blobs"]
