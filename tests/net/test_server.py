"""Route servers, the network fabric, latency, and the wire log."""

import pytest

from repro.net.http import HttpResponse
from repro.net.server import Network, RouteServer
from repro.util.clock import VirtualClock
from repro.util.errors import NetworkError
from repro.util.event_loop import EventLoop


@pytest.fixture
def network():
    return Network(EventLoop(VirtualClock()), default_latency_ms=50.0)


def make_server():
    server = RouteServer()

    @server.route("/")
    def home(request):
        return "<p>home</p>"

    @server.route("/echo")
    def echo(request):
        return HttpResponse.html("q=%s" % request.query.get("q", ""))

    @server.route("/item/*")
    def item(request):
        return "<p>item %s</p>" % request.path.rsplit("/", 1)[-1]

    @server.route("/submit", method="POST")
    def submit(request):
        return HttpResponse.json('{"body": "%s"}' % request.body)

    return server


class TestRouteServer:
    def test_exact_route(self, network):
        network.register("h.example", make_server())
        assert "home" in network.fetch("http://h.example/").body

    def test_string_result_becomes_html(self, network):
        network.register("h.example", make_server())
        response = network.fetch("http://h.example/")
        assert response.content_type == "text/html"

    def test_query_passed(self, network):
        network.register("h.example", make_server())
        assert network.fetch("http://h.example/echo?q=42").body == "q=42"

    def test_prefix_route(self, network):
        network.register("h.example", make_server())
        assert "item 7" in network.fetch("http://h.example/item/7").body

    def test_method_dispatch(self, network):
        network.register("h.example", make_server())
        ok = network.fetch("http://h.example/submit", method="POST", body="x=1")
        assert ok.ok
        miss = network.fetch("http://h.example/submit")  # GET: no route
        assert miss.status == 404

    def test_unknown_path_404(self, network):
        network.register("h.example", make_server())
        assert network.fetch("http://h.example/nope").status == 404


class TestNetwork:
    def test_unregistered_host_raises(self, network):
        with pytest.raises(NetworkError):
            network.fetch("http://ghost.example/")

    def test_fetch_advances_clock_by_latency(self, network):
        network.register("h.example", make_server())
        network.fetch("http://h.example/")
        assert network.clock.now() == 50.0

    def test_per_host_latency(self, network):
        network.register("slow.example", make_server(), latency_ms=400)
        network.fetch("http://slow.example/")
        assert network.clock.now() == 400.0

    def test_fetch_async_delivers_after_latency(self, network):
        network.register("h.example", make_server())
        results = []
        network.fetch_async("http://h.example/", results.append)
        assert results == []  # not yet delivered
        network.event_loop.run_until_idle()
        assert len(results) == 1
        assert results[0].ok
        assert network.clock.now() == 50.0

    def test_fetch_async_unknown_host_gives_502(self, network):
        results = []
        network.fetch_async("http://ghost.example/", results.append)
        network.event_loop.run_until_idle()
        assert results[0].status == 502


class TestWireLog:
    def test_exchanges_are_logged(self, network):
        network.register("h.example", make_server())
        network.fetch("http://h.example/")
        network.fetch("http://h.example/echo?q=1")
        assert len(network.exchange_log) == 2
        assert network.exchange_log[0].request.path == "/"

    def test_https_bodies_are_opaque_on_the_wire(self, network):
        network.register("h.example", make_server())
        network.fetch("https://h.example/")
        exchange = network.exchange_log[0]
        assert exchange.is_secure
        assert "encrypted" in exchange.visible_body
        assert "home" not in exchange.visible_body

    def test_http_bodies_visible(self, network):
        network.register("h.example", make_server())
        network.fetch("http://h.example/")
        assert "home" in network.exchange_log[0].visible_body

    def test_log_timestamps_use_virtual_clock(self, network):
        network.register("h.example", make_server())
        network.fetch("http://h.example/")
        assert network.exchange_log[0].timestamp == 50.0
