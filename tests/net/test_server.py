"""Route servers, the network fabric, latency, and the wire log."""

import pytest

from repro.net.http import HttpResponse
from repro.net.server import Network, RouteServer
from repro.util.clock import VirtualClock
from repro.util.errors import NetworkError
from repro.util.event_loop import EventLoop


@pytest.fixture
def network():
    return Network(EventLoop(VirtualClock()), default_latency_ms=50.0)


def make_server():
    server = RouteServer()

    @server.route("/")
    def home(request):
        return "<p>home</p>"

    @server.route("/echo")
    def echo(request):
        return HttpResponse.html("q=%s" % request.query.get("q", ""))

    @server.route("/item/*")
    def item(request):
        return "<p>item %s</p>" % request.path.rsplit("/", 1)[-1]

    @server.route("/submit", method="POST")
    def submit(request):
        return HttpResponse.json('{"body": "%s"}' % request.body)

    return server


class TestRouteServer:
    def test_exact_route(self, network):
        network.register("h.example", make_server())
        assert "home" in network.fetch("http://h.example/").body

    def test_string_result_becomes_html(self, network):
        network.register("h.example", make_server())
        response = network.fetch("http://h.example/")
        assert response.content_type == "text/html"

    def test_query_passed(self, network):
        network.register("h.example", make_server())
        assert network.fetch("http://h.example/echo?q=42").body == "q=42"

    def test_prefix_route(self, network):
        network.register("h.example", make_server())
        assert "item 7" in network.fetch("http://h.example/item/7").body

    def test_method_dispatch(self, network):
        network.register("h.example", make_server())
        ok = network.fetch("http://h.example/submit", method="POST", body="x=1")
        assert ok.ok
        miss = network.fetch("http://h.example/submit")  # GET: no route
        assert miss.status == 404

    def test_unknown_path_404(self, network):
        network.register("h.example", make_server())
        assert network.fetch("http://h.example/nope").status == 404


class TestNetwork:
    def test_unregistered_host_raises(self, network):
        with pytest.raises(NetworkError):
            network.fetch("http://ghost.example/")

    def test_fetch_advances_clock_by_latency(self, network):
        network.register("h.example", make_server())
        network.fetch("http://h.example/")
        assert network.clock.now() == 50.0

    def test_per_host_latency(self, network):
        network.register("slow.example", make_server(), latency_ms=400)
        network.fetch("http://slow.example/")
        assert network.clock.now() == 400.0

    def test_fetch_async_delivers_after_latency(self, network):
        network.register("h.example", make_server())
        results = []
        network.fetch_async("http://h.example/", results.append)
        assert results == []  # not yet delivered
        network.event_loop.run_until_idle()
        assert len(results) == 1
        assert results[0].ok
        assert network.clock.now() == 50.0

    def test_fetch_async_unknown_host_gives_502(self, network):
        results = []
        network.fetch_async("http://ghost.example/", results.append)
        network.event_loop.run_until_idle()
        assert results[0].status == 502


class TestWireLog:
    def test_exchanges_are_logged(self, network):
        network.register("h.example", make_server())
        network.fetch("http://h.example/")
        network.fetch("http://h.example/echo?q=1")
        assert len(network.exchange_log) == 2
        assert network.exchange_log[0].request.path == "/"

    def test_https_bodies_are_opaque_on_the_wire(self, network):
        network.register("h.example", make_server())
        network.fetch("https://h.example/")
        exchange = network.exchange_log[0]
        assert exchange.is_secure
        assert "encrypted" in exchange.visible_body
        assert "home" not in exchange.visible_body

    def test_http_bodies_visible(self, network):
        network.register("h.example", make_server())
        network.fetch("http://h.example/")
        assert "home" in network.exchange_log[0].visible_body

    def test_log_timestamps_use_virtual_clock(self, network):
        network.register("h.example", make_server())
        network.fetch("http://h.example/")
        assert network.exchange_log[0].timestamp == 50.0


class TestExchangeLogBounds:
    def test_default_capacity_preserves_baseline_behavior(self, network):
        from repro.net.server import DEFAULT_LOG_CAPACITY

        assert network.exchange_log.capacity == DEFAULT_LOG_CAPACITY
        assert network.exchange_log.dropped == 0

    def test_ring_buffer_evicts_oldest(self):
        from repro.net.server import Network

        network = Network(EventLoop(VirtualClock()), log_capacity=3)
        network.register("h.example", make_server())
        for n in range(5):
            network.fetch("http://h.example/echo?q=%d" % n)
        log = network.exchange_log
        assert len(log) == 3
        assert log.total == 5
        assert log.dropped == 2
        assert [e.request.query["q"] for e in log] == ["2", "3", "4"]

    def test_list_like_surface(self, network):
        network.register("h.example", make_server())
        for n in range(3):
            network.fetch("http://h.example/echo?q=%d" % n)
        log = network.exchange_log
        assert log  # truthy when non-empty
        assert log[0].request.query["q"] == "0"
        assert log[-1].request.query["q"] == "2"
        assert [e.request.query["q"] for e in log[1:]] == ["1", "2"]
        log.clear()
        assert not log and len(log) == 0
        assert log.total == 3  # totals survive clearing

    def test_capacity_must_be_positive(self):
        from repro.net.server import ExchangeLog

        with pytest.raises(ValueError):
            ExchangeLog(0)


class TestPerRequestBackoff:
    """Regression: retry jitter was one shared iterator, so a request's
    backoff schedule depended on how many *other* requests had retried
    before it. Each request now owns a sequence derived from
    ``retry_jitter_seed`` + its fingerprint."""

    @staticmethod
    def delays(network, url, count=3):
        from repro.net.http import HttpRequest

        seq = network._backoff_for(HttpRequest(url))
        return [seq.delay_ms(attempt) for attempt in range(1, count + 1)]

    def test_schedule_is_stable_regardless_of_other_requests(self, network):
        baseline = self.delays(network, "http://a.example/x")
        # Another request draining jitter draws must not shift it.
        self.delays(network, "http://b.example/y", count=10)
        assert self.delays(network, "http://a.example/x") == baseline

    def test_different_requests_get_different_jitter(self, network):
        assert self.delays(network, "http://a.example/x") != \
            self.delays(network, "http://b.example/y")

    def test_seed_changes_every_schedule(self):
        from repro.net.server import Network

        a = Network(EventLoop(VirtualClock()), retry_jitter_seed=1)
        b = Network(EventLoop(VirtualClock()), retry_jitter_seed=2)
        assert self.delays(a, "http://a.example/x") != \
            self.delays(b, "http://a.example/x")

    def test_retry_timing_independent_of_request_order(self):
        """The end-to-end property: a request's total retry backoff is
        identical whether it runs alone or after other retrying
        requests."""
        from repro import chaos
        from repro.chaos.profile import FaultProfile
        from repro.net.server import Network
        from repro.util.errors import NetworkFaultError

        def failed_fetch_cost(urls):
            network = Network(EventLoop(VirtualClock()), retries=2,
                              retry_jitter_seed=5)
            network.register("h.example", make_server())
            profile = FaultProfile("all-fail", fetch_fail_rate=1.0)
            costs = []
            with chaos.active(profile, clock=network.clock):
                for url in urls:
                    start = network.clock.now()
                    with pytest.raises(NetworkFaultError):
                        network.fetch(url)
                    costs.append(network.clock.now() - start)
            return dict(zip(urls, costs))

        target = "http://h.example/echo?q=target"
        alone = failed_fetch_cost([target])[target]
        crowded = failed_fetch_cost(["http://h.example/",
                                     "http://h.example/item/1",
                                     target])[target]
        assert alone == crowded


class TestNetFidelityCounters:
    def test_failed_fetch_counts_sync_permanent(self, network):
        with pytest.raises(NetworkError):
            network.fetch("http://ghost.example/")
        assert network.failed_fetch_count == 1

    def test_failed_fetch_counts_async_502(self, network):
        results = []
        network.fetch_async("http://ghost.example/", results.append)
        network.event_loop.run_until_idle()
        assert results[0].status == 502
        assert network.failed_fetch_count == 1

    def test_timeout_counts(self):
        from repro.net.server import Network
        from repro.util.errors import NetworkTimeoutError

        network = Network(EventLoop(VirtualClock()),
                          default_latency_ms=100.0, timeout_ms=50.0)
        network.register("h.example", make_server())
        with pytest.raises(NetworkTimeoutError):
            network.fetch("http://h.example/")
        assert network.timeout_count == 1
        assert network.failed_fetch_count == 1
