"""XMLHttpRequest semantics on the event loop."""

import pytest

from repro.net.ajax import XmlHttpRequest
from repro.net.http import HttpResponse
from repro.net.server import Network, RouteServer
from repro.util.clock import VirtualClock
from repro.util.errors import NetworkError
from repro.util.event_loop import EventLoop


@pytest.fixture
def network():
    net = Network(EventLoop(VirtualClock()), default_latency_ms=30.0)
    server = RouteServer()
    server.add_route("/data", lambda request: HttpResponse.json('{"n": 1}'))
    server.add_route("/fail", lambda request: HttpResponse("no", status=500))
    server.add_route("/post", lambda request: HttpResponse.json(request.body),
                     method="POST")
    net.register("api.example", server)
    return net


def test_lifecycle_states(network):
    xhr = XmlHttpRequest(network)
    assert xhr.ready_state == XmlHttpRequest.UNSENT
    xhr.open("GET", "http://api.example/data")
    assert xhr.ready_state == XmlHttpRequest.OPENED
    xhr.send()
    network.event_loop.run_until_idle()
    assert xhr.ready_state == XmlHttpRequest.DONE


def test_onload_receives_self_with_body(network):
    xhr = XmlHttpRequest(network)
    xhr.open("GET", "http://api.example/data")
    seen = []
    xhr.onload = lambda request: seen.append(request.response_text)
    xhr.send()
    network.event_loop.run_until_idle()
    assert seen == ['{"n": 1}']
    assert xhr.status == 200


def test_response_is_asynchronous(network):
    xhr = XmlHttpRequest(network)
    xhr.open("GET", "http://api.example/data")
    xhr.send()
    assert xhr.ready_state != XmlHttpRequest.DONE
    network.event_loop.run_for(29)
    assert xhr.ready_state != XmlHttpRequest.DONE
    network.event_loop.run_for(1)
    assert xhr.ready_state == XmlHttpRequest.DONE


def test_error_status_calls_onerror_not_onload(network):
    xhr = XmlHttpRequest(network)
    xhr.open("GET", "http://api.example/fail")
    outcomes = []
    xhr.onload = lambda request: outcomes.append("load")
    xhr.onerror = lambda request: outcomes.append("error")
    xhr.send()
    network.event_loop.run_until_idle()
    assert outcomes == ["error"]
    assert xhr.status == 500


def test_post_body_reaches_server(network):
    xhr = XmlHttpRequest(network)
    xhr.open("POST", "http://api.example/post")
    xhr.send("k=v")
    network.event_loop.run_until_idle()
    assert xhr.response_text == "k=v"


def test_send_before_open_raises(network):
    with pytest.raises(NetworkError):
        XmlHttpRequest(network).send()


def test_missing_callbacks_are_tolerated(network):
    xhr = XmlHttpRequest(network)
    xhr.open("GET", "http://api.example/data")
    xhr.send()
    network.event_loop.run_until_idle()  # no exception despite no onload
    assert xhr.status == 200
