"""The transport seam: fingerprints, mode wiring, and seam coverage."""

import os

import pytest

from repro.net.http import HttpRequest, HttpResponse
from repro.net.server import Network, RouteServer
from repro.net.transport import (
    LIVE,
    PLAYBACK,
    RECORD,
    LiveTransport,
    PlaybackTransport,
    RecordTransport,
    TapeConfig,
    canonical_url,
    request_fingerprint,
)
from repro.util.clock import VirtualClock
from repro.util.errors import NetworkError, TapeMissError
from repro.util.event_loop import EventLoop


@pytest.fixture
def network():
    return Network(EventLoop(VirtualClock()), default_latency_ms=50.0)


def make_server():
    server = RouteServer()

    @server.route("/")
    def home(request):
        return "<p>home</p>"

    @server.route("/data")
    def data(request):
        return HttpResponse.json('{"n": 1}')

    return server


class TestFingerprint:
    def test_query_key_order_is_canonical(self):
        assert canonical_url("http://h.example/p?b=2&a=1") == \
            canonical_url("http://h.example/p?a=1&b=2")

    def test_scheme_and_host_case_fold(self):
        assert canonical_url("HTTP://H.Example/p") == \
            canonical_url("http://h.example/p")

    def test_identical_requests_fingerprint_identically(self):
        a = HttpRequest("http://h.example/p?a=1&b=2", body="x")
        b = HttpRequest("http://h.example/p?b=2&a=1", body="x")
        assert request_fingerprint(a) == request_fingerprint(b)

    def test_method_body_and_url_perturb(self):
        base = HttpRequest("http://h.example/p")
        assert request_fingerprint(base) != request_fingerprint(
            HttpRequest("http://h.example/p", method="POST"))
        assert request_fingerprint(base) != request_fingerprint(
            HttpRequest("http://h.example/p", body="x"))
        assert request_fingerprint(base) != request_fingerprint(
            HttpRequest("http://h.example/q"))

    def test_volatile_headers_excluded(self):
        a = HttpRequest("http://h.example/p",
                        headers={"Cookie": "session=1",
                                 "X-Request-Id": "abc",
                                 "User-Agent": "warr"})
        b = HttpRequest("http://h.example/p",
                        headers={"Cookie": "session=2",
                                 "X-Request-Id": "xyz"})
        assert request_fingerprint(a) == request_fingerprint(b)

    def test_stable_headers_included(self):
        a = HttpRequest("http://h.example/p",
                        headers={"Accept": "text/html"})
        b = HttpRequest("http://h.example/p",
                        headers={"Accept": "application/json"})
        assert request_fingerprint(a) != request_fingerprint(b)

    def test_header_name_case_and_order_do_not_matter(self):
        a = HttpRequest("http://h.example/p",
                        headers={"Accept": "x", "X-Warr": "y"})
        b = HttpRequest("http://h.example/p",
                        headers={"x-warr": "y", "ACCEPT": "x"})
        assert request_fingerprint(a) == request_fingerprint(b)


class TestSeamRouting:
    def test_network_dispatches_through_installed_transport(self, network):
        network.register("h.example", make_server())
        assert network.transport.mode == LIVE
        network.fetch("http://h.example/")
        assert network.transport.performed == 1

    def test_use_transport_swaps_and_returns_previous(self, network):
        previous = network.transport
        replacement = LiveTransport(network._servers.get)
        assert network.use_transport(replacement) is previous
        assert network.transport is replacement

    def test_async_fetch_uses_the_seam_too(self, network):
        network.register("h.example", make_server())
        results = []
        network.fetch_async("http://h.example/data", results.append)
        network.event_loop.run_until_idle()
        assert results and results[0].ok
        assert network.transport.performed == 1

    def test_live_transport_unknown_host_raises(self, network):
        with pytest.raises(NetworkError):
            network.fetch("http://ghost.example/")
        assert network.failed_fetch_count == 1

    def test_every_handle_call_site_is_behind_the_seam(self):
        """The seam property, statically: application servers are only
        invoked from LiveTransport._perform, or by another registered
        WebServer delegating upstream (the UsaProxy baseline) — no
        module reaches around the transport to call ``server.handle``
        directly."""
        allowed_suffixes = (
            os.path.join("net", "transport.py"),     # the seam itself
            os.path.join("baselines", "usaproxy.py"),  # server -> server
        )
        root = os.path.join(os.path.dirname(__file__), "..", "..",
                            "src", "repro")
        offenders = []
        for dirpath, _, filenames in os.walk(os.path.abspath(root)):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path) as handle:
                    for number, line in enumerate(handle, 1):
                        if ".handle(request)" in line \
                                and not line.lstrip().startswith("#") \
                                and not path.endswith(allowed_suffixes):
                            offenders.append((path, number))
        assert not offenders, \
            "server.handle called outside the transport seam: %r" \
            % (offenders,)


class TestRecordPlaybackTransports:
    def test_record_wraps_live_and_snapshots(self, network):
        from repro.net.tape import Tape

        network.register("h.example", make_server())
        tape = Tape(label="t")
        network.use_transport(RecordTransport(network.transport, tape))
        network.fetch("http://h.example/")
        network.fetch("http://h.example/data")
        assert len(tape.entries) == 2
        assert tape.entries[0].url == "http://h.example/"
        assert tape.entries[1].content_type == "application/json"

    def test_playback_serves_without_servers(self, network):
        from repro.net.tape import Tape

        network.register("h.example", make_server())
        tape = Tape(label="t")
        network.use_transport(RecordTransport(network.transport, tape))
        live_body = network.fetch("http://h.example/").body

        # A second, empty network: no servers at all.
        hermetic = Network(EventLoop(VirtualClock()))
        hermetic.use_transport(PlaybackTransport(tape))
        assert hermetic.fetch("http://h.example/").body == live_body

    def test_playback_miss_raises_and_counts(self, network):
        from repro.net.tape import Tape

        playback = PlaybackTransport(Tape(label="empty"))
        network.use_transport(playback)
        with pytest.raises(TapeMissError):
            network.fetch("http://h.example/")
        assert playback.misses == 1
        assert network.tape_miss_count == 1
        assert network.failed_fetch_count == 1

    def test_playback_replays_stateful_sequences_in_order(self):
        """Identical requests play back their recorded responses FIFO;
        the last repeats once the recording runs out (retries may
        lawfully re-ask)."""
        from repro.net.tape import Tape

        tape = Tape(label="t")
        request = HttpRequest("http://h.example/counter")
        for n in (1, 2, 3):
            tape.record(request, HttpResponse(body="count=%d" % n))
        playback = PlaybackTransport(tape)
        seen = [playback.perform(request).body for _ in range(5)]
        assert seen == ["count=1", "count=2", "count=3",
                        "count=3", "count=3"]
        assert playback.hits == 5


class TestTapeConfig:
    def test_modes_validate(self):
        with pytest.raises(ValueError):
            TapeConfig("vhs")
        with pytest.raises(ValueError):
            TapeConfig(RECORD)  # record needs a path
        with pytest.raises(ValueError):
            TapeConfig(PLAYBACK)

    def test_tape_path_file_vs_directory(self):
        config = TapeConfig.record("/tapes/run.tape")
        assert config.tape_path("anything") == "/tapes/run.tape"
        config = TapeConfig.record("/tapes")
        assert config.tape_path("a/b.warr") == "/tapes/a_b.warr.tape"
        assert config.tape_path() == "/tapes"

    def test_live_attach_is_inert(self, network):
        session = TapeConfig.live().attach(network)
        assert network.transport.mode == LIVE
        assert session.finish() is None

    def test_record_attach_roundtrip(self, network, tmp_path):
        network.register("h.example", make_server())
        path = str(tmp_path / "run.tape")
        session = TapeConfig.record(path, stamp={"app": "test"}) \
            .attach(network)
        network.fetch("http://h.example/")
        tape = session.finish()
        assert network.transport.mode == LIVE  # previous restored
        assert os.path.exists(path)
        assert tape.config == {"app": "test"}
        # finish() is idempotent: a second call must not re-save.
        assert session.finish() is tape

    def test_playback_attach_loads_tape(self, network, tmp_path):
        network.register("h.example", make_server())
        path = str(tmp_path / "run.tape")
        session = TapeConfig.record(path).attach(network)
        body = network.fetch("http://h.example/data").body
        session.finish()

        fresh = Network(EventLoop(VirtualClock()))
        playback = TapeConfig.playback(path).attach(fresh)
        assert fresh.fetch("http://h.example/data").body == body
        assert playback.transport.mode == PLAYBACK
        playback.finish()
