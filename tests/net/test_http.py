"""HTTP message types and URL handling."""

import pytest

from repro.net.http import (
    HttpRequest,
    HttpResponse,
    build_url,
    parse_url,
    resolve_url,
)
from repro.util.errors import NetworkError


class TestParseUrl:
    def test_full_url(self):
        assert parse_url("https://mail.example.com/compose?to=bob&cc=eve") == (
            "https", "mail.example.com", "/compose", {"to": "bob", "cc": "eve"})

    def test_no_path(self):
        scheme, host, path, query = parse_url("http://example.com")
        assert (path, query) == ("/", {})

    def test_host_lowercased(self):
        assert parse_url("http://EXAMPLE.com/")[1] == "example.com"

    def test_empty_query_value(self):
        assert parse_url("http://h/p?flag")[3] == {"flag": ""}

    def test_plus_and_percent_decoding(self):
        _, _, _, query = parse_url("http://h/s?q=world+cup+%21")
        assert query["q"] == "world cup !"

    def test_relative_url_rejected(self):
        with pytest.raises(NetworkError):
            parse_url("/just/a/path")

    def test_unsupported_scheme_rejected(self):
        with pytest.raises(NetworkError):
            parse_url("ftp://files.example.com/a")


class TestBuildUrl:
    def test_round_trip(self):
        url = build_url("http", "h.example", "/search", {"q": "a b"})
        assert parse_url(url) == ("http", "h.example", "/search", {"q": "a b"})

    def test_no_query(self):
        assert build_url("https", "h", "/x") == "https://h/x"

    def test_path_slash_added(self):
        assert build_url("http", "h", "x") == "http://h/x"


class TestResolveUrl:
    def test_absolute_passthrough(self):
        assert resolve_url("http://a/b", "https://c/d") == "https://c/d"

    def test_host_relative(self):
        assert resolve_url("http://a.example/x/y", "/z") == "http://a.example/z"

    def test_document_relative(self):
        assert resolve_url("http://a/x/page", "other") == "http://a/x/other"


class TestHttpRequest:
    def test_parses_its_url(self):
        request = HttpRequest("https://h.example/p?a=1", method="post")
        assert request.method == "POST"
        assert request.host == "h.example"
        assert request.query == {"a": "1"}
        assert request.is_secure

    def test_http_not_secure(self):
        assert not HttpRequest("http://h/").is_secure


class TestHttpResponse:
    def test_ok_range(self):
        assert HttpResponse(status=200).ok
        assert HttpResponse(status=204).ok
        assert not HttpResponse(status=404).ok
        assert not HttpResponse(status=500).ok

    def test_html_factory(self):
        response = HttpResponse.html("<p>x</p>")
        assert response.content_type == "text/html"
        assert response.ok

    def test_json_factory(self):
        assert HttpResponse.json("{}").content_type == "application/json"

    def test_not_found_factory(self):
        response = HttpResponse.not_found()
        assert response.status == 404
