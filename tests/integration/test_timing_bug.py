"""The Section V-C result: WebErr finds the Google Sites timing bug."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.sites import EDITOR_LOAD_MS, SitesApplication
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.util.errors import JSReferenceError
from repro.weberr.runner import WebErr
from repro.weberr.timing import TimingErrorInjector
from repro.workloads.sessions import sites_edit_session


@pytest.fixture(scope="module")
def trace():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="Hi!")
    return recorder.trace


def factory():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


class TestPatientVersusImpatient:
    def test_patient_replay_is_clean(self, trace):
        browser = factory()
        report = WarrReplayer(browser, timing=TimingMode.recorded()).replay(trace)
        assert report.complete
        assert report.page_errors == []

    def test_impatient_replay_hits_uninitialized_variable(self, trace):
        browser = factory()
        report = WarrReplayer(browser, timing=TimingMode.no_wait()).replay(trace)
        assert report.page_errors
        assert all(isinstance(e, JSReferenceError) for e in report.page_errors)
        assert "editorState" in str(report.page_errors[0])

    def test_every_early_action_is_affected(self, trace):
        """One error per interaction with the unready editor."""
        browser = factory()
        report = WarrReplayer(browser, timing=TimingMode.no_wait()).replay(trace)
        # click start + 3 keystrokes + click save = 5 handler invocations.
        assert len(report.page_errors) == 5

    def test_bug_threshold_is_the_editor_load_time(self, trace):
        """Scaling delays so the first action lands after EDITOR_LOAD_MS
        is safe; landing before it is buggy."""
        first_delay = trace[0].elapsed_ms
        safe_factor = (EDITOR_LOAD_MS + 100) / first_delay
        buggy_factor = (EDITOR_LOAD_MS / 2) / first_delay

        safe = WarrReplayer(factory(),
                            timing=TimingMode.scaled(safe_factor)).replay(trace)
        assert safe.page_errors == []

        buggy = WarrReplayer(factory(),
                             timing=TimingMode.scaled(buggy_factor)).replay(trace)
        assert buggy.page_errors


class TestRushPinpointing:
    def test_rushing_only_the_first_command_triggers_the_bug(self, trace):
        _, variant = TimingErrorInjector(trace).rush_command(0)
        report = WarrReplayer(factory()).replay(variant)
        assert report.page_errors  # the 850ms guard wait was the protection

    def test_rushing_a_late_command_is_harmless(self, trace):
        last = len(trace) - 1
        _, variant = TimingErrorInjector(trace).rush_command(last)
        report = WarrReplayer(factory()).replay(variant)
        assert report.page_errors == []


class TestWebErrEndToEnd:
    def test_campaign_reports_the_bug(self, trace):
        weberr = WebErr(factory)
        report = weberr.run_timing_campaign(trace)
        assert report.bugs
        assert any("editorState" in outcome.verdict.reason
                   for outcome in report.bugs)

    def test_server_state_never_corrupted(self, trace):
        """Even buggy sessions must not corrupt the stored page: the
        save handler fails before the XHR fires."""
        browser, (app,) = make_browser([SitesApplication],
                                       developer_mode=True)
        report = WarrReplayer(browser,
                              timing=TimingMode.no_wait()).replay(trace)
        assert report.page_errors
        assert app.save_count == 0
        assert app.pages["home"] == "Welcome to our site"
