"""Replay-level ablation of the four ChromeDriver fixes (paper IV-C).

Each fix is disabled in isolation and the scenario that needs it must
degrade in the documented way; with all fixes on, everything replays.
"""

import pytest

from repro.apps.docs import DocsApplication
from repro.apps.framework import make_browser
from repro.apps.gmail import GmailApplication
from repro.core.chromedriver import ChromeDriverConfig
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from repro.workloads.sessions import docs_edit_session, gmail_compose_session


@pytest.fixture(scope="module")
def docs_trace():
    browser, _ = make_browser([DocsApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://docs.example.com/sheet/budget")
    docs_edit_session(browser)
    return recorder.trace


@pytest.fixture(scope="module")
def gmail_trace():
    browser, _ = make_browser([GmailApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://mail.example.com/")
    gmail_compose_session(browser)
    return recorder.trace


def replay_docs(config):
    browser, (app,) = make_browser([DocsApplication], developer_mode=True)
    return app, browser


class TestDoubleClickFix:
    def test_without_fix_docs_editing_fails(self, docs_trace):
        browser, (app,) = make_browser([DocsApplication], developer_mode=True)
        config = ChromeDriverConfig(fix_double_click=False)
        report = WarrReplayer(browser, config=config).replay(docs_trace)
        failures = [r for r in report.failures()]
        assert failures
        assert all(r.command.action == "doubleclick" for r in failures)
        assert app.sheets["budget"].get((2, 0)) != "Travel"

    def test_with_fix_docs_editing_replays(self, docs_trace):
        browser, (app,) = make_browser([DocsApplication], developer_mode=True)
        report = WarrReplayer(browser).replay(docs_trace)
        assert report.complete
        assert app.sheets["budget"][(2, 0)] == "Travel"


class TestTextInputFix:
    def test_without_fix_contenteditable_text_lost(self, gmail_trace):
        browser, (app,) = make_browser([GmailApplication], developer_mode=True)
        config = ChromeDriverConfig(fix_text_input=False)
        WarrReplayer(browser, config=config).replay(gmail_trace)
        # Every command "succeeds" — but the email body silently lost
        # its text, the insidious form of the bug.
        assert app.sent
        assert app.sent[0]["body"] == ""
        assert app.sent[0]["to"] == "bob@example.com"  # inputs unaffected

    def test_with_fix_body_intact(self, gmail_trace):
        browser, (app,) = make_browser([GmailApplication], developer_mode=True)
        WarrReplayer(browser).replay(gmail_trace)
        assert app.sent[0]["body"] == "Hi Bob, lunch tomorrow?"


class TestActiveClientFix:
    def test_without_fix_replay_halts_at_page_change(self, gmail_trace):
        browser, (app,) = make_browser([GmailApplication], developer_mode=True)
        config = ChromeDriverConfig(fix_active_client=False)
        report = WarrReplayer(browser, config=config).replay(gmail_trace)
        assert report.halted
        assert app.sent == []  # never got past the first navigation

    def test_with_fix_replay_survives_page_changes(self, gmail_trace):
        browser, _ = make_browser([GmailApplication], developer_mode=True)
        report = WarrReplayer(browser).replay(gmail_trace)
        assert not report.halted


class TestStockVersusWarr:
    def test_stock_driver_fails_everywhere_warr_succeeds(self, gmail_trace,
                                                         docs_trace):
        for trace, factories in ((gmail_trace, [GmailApplication]),
                                 (docs_trace, [DocsApplication])):
            stock_browser, _ = make_browser(factories, developer_mode=True)
            stock = WarrReplayer(stock_browser,
                                 config=ChromeDriverConfig.stock()).replay(trace)
            warr_browser, _ = make_browser(factories, developer_mode=True)
            warr = WarrReplayer(warr_browser).replay(trace)
            assert warr.complete
            assert stock.halted or stock.failed_count > 0
