"""End-to-end record → replay across every application clone.

The headline property: replaying a recorded trace on a fresh instance of
the application reproduces the same server-side effects and the same
final page — WaRR's "high fidelity" claim.
"""


from repro.apps.docs import DocsApplication
from repro.apps.framework import make_browser
from repro.apps.gmail import GmailApplication
from repro.apps.portal import PortalApplication
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from repro.core.trace import WarrTrace
from repro.workloads.sessions import (
    docs_edit_session,
    gmail_compose_session,
    portal_authenticate_session,
    sites_edit_session,
)


def record(app_factories, session, start_url, **kwargs):
    browser, apps = make_browser(app_factories)
    recorder = WarrRecorder().attach(browser)
    recorder.begin(start_url)
    session(browser, **kwargs)
    return recorder.trace, apps, browser


class TestSitesRoundTrip:
    def test_replay_reproduces_the_save(self):
        trace, (original_app,), _ = record(
            [SitesApplication], sites_edit_session,
            "http://sites.example.com/edit/home", text="Hello world!")
        browser, (replay_app,) = make_browser([SitesApplication],
                                              developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        assert report.complete
        assert replay_app.save_count == original_app.save_count == 1
        assert replay_app.pages["home"] == original_app.pages["home"]
        assert browser.tabs[0].url == "http://sites.example.com/page/home"

    def test_trace_survives_file_round_trip(self, tmp_path):
        trace, _, _ = record(
            [SitesApplication], sites_edit_session,
            "http://sites.example.com/edit/home", text="Persisted!")
        path = tmp_path / "session.warr"
        trace.save(path)
        reloaded = WarrTrace.load(path)
        browser, (app,) = make_browser([SitesApplication], developer_mode=True)
        report = WarrReplayer(browser).replay(reloaded)
        assert report.complete
        assert app.pages["home"].endswith("Persisted!")


class TestGmailRoundTrip:
    def test_replay_sends_the_same_email(self):
        trace, (original_app,), _ = record(
            [GmailApplication], gmail_compose_session,
            "http://mail.example.com/",
            to="eve@x.com", subject="Plan", body="Meet at noon")
        browser, (replay_app,) = make_browser([GmailApplication],
                                              developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        assert report.complete
        assert replay_app.sent == original_app.sent

    def test_replay_under_id_churn(self):
        """The replay environment renders different element ids; XPath
        relaxation recovers every locator (paper IV-C, GMail)."""
        trace, (original_app,), _ = record(
            [GmailApplication], gmail_compose_session,
            "http://mail.example.com/")
        browser, (replay_app,) = make_browser([GmailApplication],
                                              developer_mode=True)
        # Pre-churn the id counter by rendering pages first.
        browser.new_tab("http://mail.example.com/compose")
        browser.new_tab("http://mail.example.com/compose")
        report = WarrReplayer(browser).replay(trace)
        assert report.complete
        assert report.relaxed_count > 0
        assert replay_app.sent == original_app.sent

    def test_id_churn_without_relaxation_fails(self):
        trace, _, _ = record(
            [GmailApplication], gmail_compose_session,
            "http://mail.example.com/")
        browser, (app,) = make_browser([GmailApplication],
                                       developer_mode=True)
        browser.new_tab("http://mail.example.com/compose")
        report = WarrReplayer(browser, relaxation=False).replay(trace)
        assert report.failed_count > 0


class TestPortalRoundTrip:
    def test_replay_authenticates(self):
        trace, _, _ = record(
            [PortalApplication], portal_authenticate_session,
            "http://portal.example.com/")
        browser, (app,) = make_browser([PortalApplication],
                                       developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        assert report.complete
        assert app.login_attempts == ["jane"]
        assert browser.tabs[0].document.title == "Portal - Home"


class TestDocsRoundTrip:
    def test_replay_reproduces_spreadsheet_edits(self):
        trace, (original_app,), _ = record(
            [DocsApplication], docs_edit_session,
            "http://docs.example.com/sheet/budget")
        browser, (replay_app,) = make_browser([DocsApplication],
                                              developer_mode=True)
        report = WarrReplayer(browser).replay(trace)
        assert report.complete
        assert replay_app.sheets["budget"] == original_app.sheets["budget"]

    def test_replay_moves_the_chart(self):
        trace, _, _ = record(
            [DocsApplication], docs_edit_session,
            "http://docs.example.com/sheet/budget")
        browser, _ = make_browser([DocsApplication], developer_mode=True)
        WarrReplayer(browser).replay(trace)
        chart = browser.tabs[0].find('//div[@id="chart"]')
        assert chart.get_attribute("data-offset-x") == "30"
        assert chart.get_attribute("data-offset-y") == "45"


class TestTimingAccuracy:
    def test_replay_takes_as_long_as_the_session(self):
        trace, _, original_browser = record(
            [SitesApplication], sites_edit_session,
            "http://sites.example.com/edit/home")
        browser, _ = make_browser([SitesApplication], developer_mode=True)
        WarrReplayer(browser).replay(trace)
        # Virtual durations agree to within the post-session settling.
        assert browser.clock.now() >= trace.total_duration_ms()


class TestDeveloperModeRequirement:
    def test_user_browser_replay_degrades_handler_fidelity(self):
        """Without the developer browser, replayed keyboard events carry
        keyCode 0, so handlers observe garbage (paper IV-C)."""
        trace, _, _ = record(
            [GmailApplication], gmail_compose_session,
            "http://mail.example.com/", body="Hi")
        browser, _ = make_browser([GmailApplication], developer_mode=False)
        WarrReplayer(browser).replay(trace)
        # Replay navigated to /sent; inspect errors instead: the page
        # observed zero key codes while recording observed real ones.
        record_browser, _ = make_browser([GmailApplication])
        tab = record_browser.new_tab("http://mail.example.com/compose")
        tab.click_element(tab.find('//div[contains(@class, "editable")]'))
        tab.type_text("Hi")
        assert record_browser.tabs[0].engine.window.env.observed_key_codes == [72, 73]

    def test_developer_browser_replay_matches_user_codes(self):
        trace, _, _ = record(
            [GmailApplication], gmail_compose_session,
            "http://mail.example.com/", body="Hi",
            to="a@b", subject="s")
        browser, _ = make_browser([GmailApplication], developer_mode=True)
        replayer = WarrReplayer(browser)
        # Stop before Send so the compose window is still live.
        prefix = trace[:len(trace) - 1]
        replayer.replay(prefix)
        observed = browser.tabs[0].engine.window.env.observed_key_codes
        assert observed == [72, 73]
