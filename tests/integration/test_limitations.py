"""The limitations the paper acknowledges (Section IV-D), reproduced.

A faithful reproduction includes the failure modes: popups invisible to
the recorder, missing cross-user timing in concurrent sessions, and the
environment-dependence of replay timing.
"""


from repro.apps.framework import AppEnvironment, make_browser
from repro.apps.sites import SitesApplication
from repro.baselines.fiddler import FiddlerProxy
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from repro.util.rng import SeededRandom
from repro.workloads.sessions import sites_edit_session


class TestPopupLimitation:
    def test_popup_clicks_never_reach_the_trace(self):
        browser, _ = make_browser([SitesApplication])
        recorder = WarrRecorder().attach(browser)
        recorder.begin("http://sites.example.com/")
        tab = browser.new_tab("http://sites.example.com/")
        tab.click_element(tab.find('//a[text()="home"]'))
        popup = browser.show_popup("Unsaved changes", ["Leave", "Stay"])
        popup.click_button("Stay")
        # Only the in-page click was recorded; replaying this trace
        # cannot reproduce the popup decision.
        assert len(recorder.trace) == 1
        assert popup.clicked  # the user really did interact


class TestConcurrentUsersLimitation:
    def test_traces_lack_cross_user_timing(self):
        """Two users interleave against one server; each trace holds its
        own delays but nothing relates one user's actions to the
        other's — the paper's concurrency caveat."""
        environment = AppEnvironment([SitesApplication(rng=SeededRandom(0))])
        browser_a = environment.browser()
        browser_b = environment.browser()
        recorder_a = WarrRecorder().attach(browser_a)
        recorder_a.begin("http://sites.example.com/edit/home")
        recorder_b = WarrRecorder().attach(browser_b)
        recorder_b.begin("http://sites.example.com/edit/team")

        tab_a = browser_a.new_tab("http://sites.example.com/edit/home")
        tab_b = browser_b.new_tab("http://sites.example.com/edit/team")
        tab_a.wait(700)
        tab_a.click_element(tab_a.find('//span[@id="start"]'))
        tab_b.click_element(tab_b.find('//span[@id="start"]'))  # later in real time
        serialized_a = recorder_a.trace.to_text()
        serialized_b = recorder_b.trace.to_text()
        # Neither serialized trace mentions the other user or any global
        # ordering; only per-trace relative delays survive.
        assert "team" not in serialized_a
        assert "home" not in serialized_b.replace(
            recorder_b.trace.start_url, "")

    def test_all_user_actions_are_still_available(self):
        """'If users use WaRR, developers have access to all the actions
        users performed' — each user's trace is individually complete."""
        environment = AppEnvironment([SitesApplication(rng=SeededRandom(0))])
        browsers = [environment.browser() for _ in range(2)]
        recorders = []
        for index, browser in enumerate(browsers):
            recorder = WarrRecorder().attach(browser)
            recorder.begin("http://sites.example.com/")
            recorders.append(recorder)
            tab = browser.new_tab("http://sites.example.com/")
            tab.click_element(tab.find('//a[text()="home"]'))
        assert all(len(recorder.trace) == 1 for recorder in recorders)


class TestEnvironmentTiming:
    def test_slower_environment_changes_handler_timing(self):
        """WaRR cannot ensure handlers finish in the same time during
        replay: the same trace against a slower backend leaves less
        slack before the editor is ready."""
        browser, _ = make_browser([SitesApplication])
        recorder = WarrRecorder().attach(browser)
        recorder.begin("http://sites.example.com/edit/home")
        sites_edit_session(browser, text="x",
                           wait_for_editor_ms=700.0)
        trace = recorder.trace

        fast_browser, _ = make_browser([SitesApplication],
                                       developer_mode=True, latency_ms=50.0)
        fast = WarrReplayer(fast_browser).replay(trace)
        assert fast.page_errors == []

        slow_browser, _ = make_browser([SitesApplication],
                                       developer_mode=True, latency_ms=700.0)
        WarrReplayer(slow_browser).replay(trace)
        # The editor initialization timer starts after the (slow) page
        # load, but the recorded first-action delay embeds the fast
        # load; the replayed click may race initialization. Either
        # outcome must at least differ in total time.
        assert slow_browser.clock.now() > fast_browser.clock.now()


class TestProxyBaselineLimitations:
    def test_https_blinds_the_proxy_but_not_warr(self):
        browser, _ = make_browser([SitesApplication])
        proxy = FiddlerProxy(browser.network).begin()
        recorder = WarrRecorder().attach(browser)
        recorder.begin("https://sites.example.com/edit/home")
        tab = browser.new_tab("https://sites.example.com/edit/home")
        tab.wait(700)
        tab.click_element(tab.find('//span[@id="start"]'))
        tab.type_text("Hi")
        # The proxy saw only ciphertext.
        assert all("encrypted" in body for body in proxy.visible_bodies())
        # WaRR recorded the actual user actions.
        assert len(recorder.trace) == 3
        assert recorder.trace[1].key == "H"
