"""Fuzzed end-to-end property: ANY recorded session replays completely.

Seeded random users hammer each application; whatever they did, the
recorded trace must replay without failures on a fresh instance, and the
replayed browser must end on the same URL with the same page structure.
"""

import pytest

from repro.apps.dashboard import DashboardApplication
from repro.apps.docs import DocsApplication
from repro.apps.framework import make_browser
from repro.apps.gmail import GmailApplication
from repro.apps.portal import PortalApplication
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from repro.weberr.similarity import dom_shape_similarity
from repro.workloads.fuzz import fuzz_session

TARGETS = [
    ([SitesApplication], "http://sites.example.com/"),
    ([GmailApplication], "http://mail.example.com/"),
    ([PortalApplication], "http://portal.example.com/"),
    ([DocsApplication], "http://docs.example.com/sheet/budget"),
    ([DashboardApplication], "http://dashboard.example.com/"),
]


def record_fuzzed(app_factories, start_url, seed, actions=15):
    browser, _ = make_browser(app_factories, seed=0)
    recorder = WarrRecorder().attach(browser)
    recorder.begin(start_url)
    generator = fuzz_session(browser, start_url, actions, seed=seed)
    recorder.detach()
    final_url = browser.tabs[0].url
    final_document = browser.tabs[0].document
    error_count = len(browser.page_errors)
    return recorder.trace, generator, final_url, final_document, error_count


@pytest.mark.parametrize("factories,start_url", TARGETS)
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_fuzzed_sessions_replay_completely(factories, start_url, seed):
    trace, generator, final_url, final_document, errors = record_fuzzed(
        factories, start_url, seed)
    if not trace:
        pytest.skip("fuzzer found nothing interactive (inert page)")

    browser, _ = make_browser(factories, seed=0, developer_mode=True)
    report = WarrReplayer(browser).replay(trace)

    assert report.complete, (
        "seed %d on %s: %s\ntrace:\n%s"
        % (seed, start_url, report.summary(), trace.to_text()))
    # Same destination and same page shape as the original session.
    assert browser.tabs[0].url == final_url
    similarity = dom_shape_similarity(browser.tabs[0].document,
                                      final_document)
    assert similarity > 0.95, "replayed page diverged (%.2f)" % similarity
    # Even script errors reproduce (same count: the bug is deterministic).
    assert len(report.page_errors) == errors


def test_fuzzer_is_deterministic():
    first = record_fuzzed([SitesApplication], "http://sites.example.com/", 7)
    second = record_fuzzed([SitesApplication], "http://sites.example.com/", 7)
    assert first[0].to_text() == second[0].to_text()


def test_fuzzer_performs_varied_actions():
    _, generator, _, _, _ = record_fuzzed(
        [DocsApplication], "http://docs.example.com/sheet/budget", 5,
        actions=40)
    kinds = {kind for kind, _ in generator.actions_performed}
    assert "click" in kinds
    assert len(kinds) >= 2  # not just clicking


def test_fuzzer_stops_on_inert_page():
    from repro.workloads.fuzz import RandomSessionGenerator
    from tests.browser.helpers import build_browser, url

    browser = build_browser(extra_routes={
        "/inert": lambda request:
            "<html><head><title>i</title></head><body><p>text only</p>"
            "</body></html>",
    })
    tab = browser.new_tab(url("/inert"))
    generator = RandomSessionGenerator(tab)
    assert generator.run(10) == []
