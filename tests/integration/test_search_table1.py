"""Table I: query-typo detection across the three search engines.

Paper result: Google 100%, Bing 59.1%, Yahoo! 84.4%. Our calibrated
clones reproduce the ordering and land within a few points of each
percentage (Google 100%, Yahoo ~86.6%, Bing ~61.3% at seed 42).
"""

import pytest

from repro.apps.framework import make_browser
from repro.apps.search import (
    BingSearchApplication,
    GoogleSearchApplication,
    YahooSearchApplication,
)
from repro.core.commands import TypeCommand
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from repro.events.keys import virtual_key_code
from repro.util.rng import SeededRandom
from repro.workloads.queries import FREQUENT_QUERIES
from repro.workloads.sessions import search_session
from repro.workloads.typos import TypoInjector

ENGINES = [GoogleSearchApplication, YahooSearchApplication,
           BingSearchApplication]


@pytest.fixture(scope="module")
def typos():
    return TypoInjector(SeededRandom(42)).inject_all(FREQUENT_QUERIES)


def detection_rate(engine_class, typos):
    application = engine_class(rng=SeededRandom(0))
    fixed = sum(
        1 for typo in typos
        if application.checker.correct(typo.corrupted) == typo.original)
    return 100.0 * fixed / len(typos)


class TestTable1Rates:
    def test_google_catches_everything(self, typos):
        assert detection_rate(GoogleSearchApplication, typos) == 100.0

    def test_yahoo_near_paper_rate(self, typos):
        rate = detection_rate(YahooSearchApplication, typos)
        assert 78.0 <= rate <= 92.0  # paper: 84.4%

    def test_bing_near_paper_rate(self, typos):
        rate = detection_rate(BingSearchApplication, typos)
        assert 52.0 <= rate <= 68.0  # paper: 59.1%

    def test_ordering_matches_paper(self, typos):
        google = detection_rate(GoogleSearchApplication, typos)
        yahoo = detection_rate(YahooSearchApplication, typos)
        bing = detection_rate(BingSearchApplication, typos)
        assert google > yahoo > bing


class TestThroughTheBrowser:
    """The WebErr methodology: record a correct query session, inject a
    typo into the type commands, replay against the live engine, and
    read the correction banner."""

    def drive(self, engine_class, query, typo_query):
        # Record the correct session.
        browser, _ = make_browser([engine_class])
        recorder = WarrRecorder().attach(browser)
        recorder.begin("http://%s/" % engine_class.host)
        search_session(browser, "http://%s" % engine_class.host, query)
        trace = recorder.trace
        # Substitute the typed keystrokes (WebErr step 2/3).
        corrupted = trace.copy(commands=[
            command for command in trace.commands
            if not isinstance(command, TypeCommand)
        ])
        insert_at = next(
            index for index, command in enumerate(trace.commands)
            if isinstance(command, TypeCommand))
        keystrokes = [
            TypeCommand(trace.commands[insert_at].xpath, key=char,
                        code=virtual_key_code(char), elapsed_ms=15)
            for char in typo_query
        ]
        corrupted.commands[insert_at:insert_at] = keystrokes
        # Replay against a fresh engine (WebErr step 4).
        replay_browser, (application,) = make_browser(
            [engine_class], developer_mode=True)
        report = WarrReplayer(replay_browser).replay(corrupted)
        assert report.complete
        document = replay_browser.tabs[0].document
        return application, document

    def test_google_fixes_typo_in_live_session(self):
        application, document = self.drive(
            GoogleSearchApplication, "world cup 2010", "worl cup 2010")
        assert application.queries_received == ["worl cup 2010"]
        assert application.correction_shown(document) == "world cup 2010"

    def test_bing_misses_ambiguous_typo(self):
        # 'cupp' -> distance-1 candidates are ambiguous enough? Use a
        # short word Bing refuses to correct (min length 5).
        application, document = self.drive(
            BingSearchApplication, "world cup 2010", "worl cup 2010")
        assert application.correction_shown(document) is None

    def test_yahoo_fixes_transposition(self):
        application, document = self.drive(
            YahooSearchApplication, "youtube videos", "youtbue videos")
        assert application.correction_shown(document) == "youtube videos"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_browser_and_checker_agree(self, engine, typos):
        """The full-browser path and the direct checker must agree — the
        UI faithfully reports what the checker decided."""
        for typo in typos[:5]:
            application, document = self.drive(engine, typo.original,
                                               typo.corrupted)
            banner = application.correction_shown(document)
            direct = application.checker.correct(typo.corrupted)
            if direct != typo.corrupted:
                assert banner == direct
            else:
                assert banner is None
