"""The Table I study driven exactly as the paper describes: WebErr
injects typos into a recorded search trace via grammar substitution and
replays against the live engine (Figure 5's four steps).
"""

import pytest

from repro.apps.framework import make_browser
from repro.apps.search import GoogleSearchApplication, BingSearchApplication
from repro.core.commands import TypeCommand
from repro.core.recorder import WarrRecorder
from repro.weberr.grammar import Terminal
from repro.weberr.navigation import NavigationErrorInjector, substitute_typo
from repro.weberr.runner import WebErr
from repro.workloads.sessions import search_session


def record_search(engine_class, query):
    browser, _ = make_browser([engine_class])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://%s/" % engine_class.host)
    search_session(browser, "http://%s" % engine_class.host, query)
    return recorder.trace


def factory_for(engine_class):
    def factory():
        browser, _ = make_browser([engine_class], developer_mode=True)
        return browser
    return factory


class TestGrammarTypoInjection:
    def test_inferred_grammar_isolates_the_typing_rule(self):
        trace = record_search(GoogleSearchApplication, "world cup 2010")
        weberr = WebErr(factory_for(GoogleSearchApplication))
        _, grammar = weberr.infer(trace, label="Search")
        # One step rule holds the query-field interaction: the focusing
        # click plus every keystroke of the query.
        typing_rules = [
            rule for rule in grammar.rules.values()
            if any(isinstance(s, Terminal)
                   and isinstance(s.command, TypeCommand)
                   for s in rule.symbols)
        ]
        assert len(typing_rules) == 1
        typed = "".join(
            s.command.key for s in typing_rules[0].symbols
            if isinstance(s, Terminal) and isinstance(s.command, TypeCommand))
        assert typed == "world cup 2010"

    def test_typo_variant_replays_and_google_corrects(self):
        trace = record_search(GoogleSearchApplication, "world cup 2010")
        weberr = WebErr(factory_for(GoogleSearchApplication))
        _, grammar = weberr.infer(trace, label="Search")

        injector = NavigationErrorInjector(grammar)
        variants = list(injector.typo_variants())
        assert variants  # keystroke terminals exist to corrupt

        description, erroneous = variants[0]
        # Replay the typo'd search against a fresh engine.
        browser = factory_for(GoogleSearchApplication)()
        from repro.core.replayer import WarrReplayer

        report = WarrReplayer(browser).replay(erroneous.to_trace())
        assert report.complete
        application_host_doc = browser.tabs[0].document
        banner = application_host_doc.get_element_by_id("corrected")
        # Google's query-log checker snaps the typo'd query back.
        assert banner is not None
        assert "world cup 2010" in banner.text_content

    def test_same_typo_not_fixed_by_bing(self):
        trace = record_search(BingSearchApplication, "world cup 2010")
        weberr = WebErr(factory_for(BingSearchApplication))
        _, grammar = weberr.infer(trace, label="Search")
        variants = list(NavigationErrorInjector(grammar).typo_variants())
        # Find a variant corrupting the short word 'cup' (< Bing's
        # 5-char minimum): Bing refuses to correct it.
        cup_variant = None
        for description, erroneous in variants:
            typed = "".join(
                s.command.key
                for rule in erroneous.rules.values()
                for s in rule.symbols
                if isinstance(s, Terminal)
                and isinstance(s.command, TypeCommand))
            if "cup" not in typed and "world" in typed:
                cup_variant = erroneous
                break
        if cup_variant is None:
            pytest.skip("no cup-corrupting variant generated")
        browser = factory_for(BingSearchApplication)()
        from repro.core.replayer import WarrReplayer

        report = WarrReplayer(browser).replay(cup_variant.to_trace())
        assert report.complete
        banner = browser.tabs[0].document.get_element_by_id("corrected")
        assert banner is None  # Bing missed it

    def test_substitute_typo_preserves_timing(self):
        trace = record_search(GoogleSearchApplication, "weather forecast")
        weberr = WebErr(factory_for(GoogleSearchApplication))
        _, grammar = weberr.infer(trace, label="Search")
        typing_rule = next(
            rule for rule in grammar.rules.values()
            if any(isinstance(s, Terminal)
                   and isinstance(s.command, TypeCommand)
                   for s in rule.symbols))
        index = next(
            i for i, s in enumerate(typing_rule.symbols)
            if isinstance(s, Terminal) and isinstance(s.command, TypeCommand))
        mutated = substitute_typo(typing_rule, index, "q")
        assert mutated.symbols[index].command.elapsed_ms == \
            typing_rule.symbols[index].command.elapsed_ms
        assert mutated.symbols[index].command.key == "q"
