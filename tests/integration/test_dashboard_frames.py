"""Record/replay across iframes on a realistic application."""

import pytest

from repro.apps.dashboard import DashboardApplication
from repro.apps.framework import make_browser
from repro.core.chromedriver import ChromeDriverConfig
from repro.core.commands import SwitchFrameCommand
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from repro.workloads.sessions import dashboard_session


@pytest.fixture(scope="module")
def recorded():
    browser, (app,) = make_browser([DashboardApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://dashboard.example.com/")
    dashboard_session(browser, note="hello")
    return recorder.trace, app


def test_trace_contains_frame_choreography(recorded):
    trace, _ = recorded
    switches = [c for c in trace if isinstance(c, SwitchFrameCommand)]
    assert len(switches) == 2
    assert "news" in switches[0].xpath  # into the news widget
    assert switches[1].is_default       # back to the main document


def test_replay_reproduces_all_widget_effects(recorded):
    trace, original_app = recorded
    browser, (app,) = make_browser([DashboardApplication],
                                   developer_mode=True)
    report = WarrReplayer(browser).replay(trace)
    assert report.complete, report.summary()
    assert app.refresh_count == original_app.refresh_count == 1
    assert app.saved_notes == original_app.saved_notes == ["note=hello"]
    chart = browser.tabs[0].find('//div[@id="chart"]')
    assert chart.get_attribute("data-offset-x") == "18"


def test_replay_without_srcless_fix_fails_on_notes(recorded):
    trace, _ = recorded
    browser, (app,) = make_browser([DashboardApplication],
                                   developer_mode=True)
    config = ChromeDriverConfig(fix_srcless_iframe=True,
                                fix_switch_back=False)
    report = WarrReplayer(browser, config=config).replay(trace)
    # Cannot switch back to the default frame: the notes/save/drag
    # commands after the iframe interaction degrade.
    assert not report.complete


def test_news_refresh_happened_inside_child_frame(recorded):
    trace, _ = recorded
    browser, (app,) = make_browser([DashboardApplication],
                                   developer_mode=True)
    WarrReplayer(browser).replay(trace)
    tab = browser.tabs[0]
    child = tab.engine.frame_for(tab.find('//iframe[@id="news"]'))
    assert child.window.env.refreshes == 1
    assert "all widgets nominal" in child.document.text_content
