"""Table II: recording completeness, WaRR vs Selenium IDE.

Paper result:

    Application    Scenario          WaRR   Selenium IDE
    Google Sites   Edit site          C      P
    GMail          Compose email      C      P
    Yahoo          Authenticate       C      C
    Google Docs    Edit spreadsheet   C      P
"""

import pytest

from repro.apps.docs import DocsApplication
from repro.apps.framework import make_browser
from repro.apps.gmail import GmailApplication
from repro.apps.portal import PortalApplication
from repro.apps.sites import SitesApplication
from repro.baselines import (
    COMPLETE,
    PARTIAL,
    SeleniumIDERecorder,
    evaluate_recording_fidelity,
)
from repro.core.recorder import WarrRecorder
from repro.workloads.sessions import (
    docs_edit_session,
    gmail_compose_session,
    portal_authenticate_session,
    sites_edit_session,
)

SCENARIOS = [
    ("Google Sites", "Edit site", [SitesApplication], sites_edit_session),
    ("GMail", "Compose email", [GmailApplication], gmail_compose_session),
    ("Yahoo", "Authenticate", [PortalApplication],
     portal_authenticate_session),
    ("Google Docs", "Edit spreadsheet", [DocsApplication], docs_edit_session),
]

EXPECTED = {
    "Google Sites": (COMPLETE, PARTIAL),
    "GMail": (COMPLETE, PARTIAL),
    "Yahoo": (COMPLETE, COMPLETE),
    "Google Docs": (COMPLETE, PARTIAL),
}


def run_scenario(app_factories, session):
    browser, _ = make_browser(app_factories)
    warr = WarrRecorder().attach(browser)
    selenium = SeleniumIDERecorder().attach(browser).begin()
    user = session(browser)
    return evaluate_recording_fidelity(
        user.actions, warr.trace, selenium.recorded_actions())


@pytest.mark.parametrize("application,scenario,factories,session", SCENARIOS)
def test_table2_row(application, scenario, factories, session):
    warr_result, selenium_result = run_scenario(factories, session)
    expected_warr, expected_selenium = EXPECTED[application]
    assert warr_result.label == expected_warr, (
        "%s/%s: WaRR %r" % (application, scenario, warr_result))
    assert selenium_result.label == expected_selenium, (
        "%s/%s: Selenium %r" % (application, scenario, selenium_result))


def test_warr_coverage_is_total_everywhere():
    for _, _, factories, session in SCENARIOS:
        warr_result, _ = run_scenario(factories, session)
        assert warr_result.coverage == 1.0


def test_selenium_misses_are_in_rich_interactions():
    """Selenium's losses concentrate in keystrokes outside form controls
    plus drags/double clicks — the mechanism behind the table."""
    _, selenium_result = run_scenario([GmailApplication],
                                      gmail_compose_session)
    captured_keys, total_keys = selenium_result.per_kind["key"]
    assert captured_keys < total_keys  # body keystrokes lost
    assert captured_keys > 0  # to/subject values captured


def test_selenium_complete_only_for_classic_forms():
    labels = {}
    for application, _, factories, session in SCENARIOS:
        _, selenium_result = run_scenario(factories, session)
        labels[application] = selenium_result.label
    assert [labels[a] for a in ("Google Sites", "GMail", "Yahoo",
                                "Google Docs")] == [
        PARTIAL, PARTIAL, COMPLETE, PARTIAL]
