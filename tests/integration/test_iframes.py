"""Record and replay across iframes (the third IV-C challenge)."""


from repro.core.chromedriver import ChromeDriverConfig
from repro.core.commands import SwitchFrameCommand
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from tests.browser.helpers import build_browser, url


def record_iframe_session():
    browser = build_browser()
    recorder = WarrRecorder().attach(browser)
    recorder.begin(url("/frame"))
    tab = browser.new_tab(url("/frame"))
    iframe = tab.find('//iframe[@id="child"]')
    child = tab.engine.frame_for(iframe)
    button = child.document.get_element_by_id("innerbtn")
    pressed = []
    button.add_event_listener("click", lambda event: pressed.append(1))
    outer = tab.engine.layout.box_for(iframe)
    inner = child.layout.click_point(button)
    tab.click(int(outer.rect.x + inner[0]), int(outer.rect.y + inner[1]))
    # Back to the main document.
    tab.click_element(tab.find('//iframe[@id="bare"]'))
    return recorder.trace, pressed


def test_recorded_trace_includes_frame_switches():
    trace, pressed = record_iframe_session()
    assert pressed == [1]
    actions = [command.action for command in trace]
    assert actions == ["switchframe", "click", "switchframe", "click"]
    switches = [c for c in trace if isinstance(c, SwitchFrameCommand)]
    assert not switches[0].is_default
    assert switches[1].is_default


def test_replay_executes_in_the_right_frames():
    trace, _ = record_iframe_session()
    browser = build_browser(developer_mode=True)
    pressed = []

    def arm(engine):
        button = engine.document.get_element_by_id("innerbtn")
        if button is not None:
            button.add_event_listener("click", lambda event: pressed.append(1))

    browser.frame_load_listeners.append(arm)
    report = WarrReplayer(browser).replay(trace)
    assert report.complete
    assert pressed == [1]


def test_replay_without_switch_back_fix_fails():
    trace, _ = record_iframe_session()
    browser = build_browser(developer_mode=True)
    config = ChromeDriverConfig(fix_switch_back=False)
    report = WarrReplayer(browser, config=config).replay(trace)
    failures = report.failures()
    assert failures
    assert any(isinstance(r.command, SwitchFrameCommand) and
               r.command.is_default for r in failures)
