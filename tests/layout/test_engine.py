"""Layout engine: geometry, hit testing, drag offsets."""

import pytest

from repro.dom.parser import parse_html
from repro.layout.box import Rect
from repro.layout.engine import LayoutEngine, layout_document


def lay(html, width=1024):
    doc = parse_html(html)
    return doc, LayoutEngine(doc, viewport_width=width).relayout()


class TestRect:
    def test_contains_inclusive_top_left(self):
        rect = Rect(10, 10, 20, 20)
        assert rect.contains(10, 10)
        assert not rect.contains(30, 30)
        assert rect.contains(29, 29)

    def test_center(self):
        assert Rect(0, 0, 10, 20).center == (5, 10)

    def test_translated(self):
        moved = Rect(1, 2, 3, 4).translated(10, 20)
        assert (moved.x, moved.y) == (11, 22)
        assert (moved.width, moved.height) == (3, 4)


class TestBlocks:
    def test_blocks_stack_vertically(self):
        doc, engine = lay("<div id='a'>x</div><div id='b'>y</div>")
        a = engine.box_for(doc.get_element_by_id("a")).rect
        b = engine.box_for(doc.get_element_by_id("b")).rect
        assert b.y >= a.bottom

    def test_every_rendered_element_has_a_box(self):
        doc, engine = lay("<div><p><span>x</span></p><ul><li>i</li></ul></div>")
        for element in doc.body.descendants():
            if getattr(element, "tag", None) in ("div", "p", "span", "ul", "li"):
                assert engine.box_for(element) is not None

    def test_head_has_no_box(self):
        doc, engine = lay("<head><title>T</title></head><body><p>x</p></body>")
        assert engine.box_for(doc.head) is None

    def test_nested_block_inside_parent(self):
        doc, engine = lay("<div id='out'><div id='in'>x</div></div>")
        outer = engine.box_for(doc.get_element_by_id("out")).rect
        inner = engine.box_for(doc.get_element_by_id("in")).rect
        assert inner.x >= outer.x
        assert inner.y >= outer.y
        assert inner.right <= outer.right


class TestInline:
    def test_inline_elements_flow_horizontally(self):
        doc, engine = lay("<div><span id='a'>aa</span><span id='b'>bb</span></div>")
        a = engine.box_for(doc.get_element_by_id("a")).rect
        b = engine.box_for(doc.get_element_by_id("b")).rect
        assert b.x > a.x
        assert a.y == b.y

    def test_text_width_scales_with_length(self):
        doc, engine = lay("<div><span id='s'>sh</span>"
                          "<span id='l'>much longer text</span></div>")
        short = engine.box_for(doc.get_element_by_id("s")).rect
        long_ = engine.box_for(doc.get_element_by_id("l")).rect
        assert long_.width > short.width

    def test_input_gets_fixed_size(self):
        doc, engine = lay("<div><input type='text' id='i'></div>")
        rect = engine.box_for(doc.get_element_by_id("i")).rect
        assert rect.width > 0 and rect.height > 0

    def test_checkbox_is_small(self):
        doc, engine = lay("<div><input type='checkbox' id='c'>"
                          "<input type='text' id='t'></div>")
        checkbox = engine.box_for(doc.get_element_by_id("c")).rect
        text = engine.box_for(doc.get_element_by_id("t")).rect
        assert checkbox.width < text.width


class TestTables:
    def test_cells_share_the_row(self):
        doc, engine = lay("<table><tr><td id='a'>x</td><td id='b'>y</td></tr></table>")
        a = engine.box_for(doc.get_element_by_id("a")).rect
        b = engine.box_for(doc.get_element_by_id("b")).rect
        assert a.y == b.y
        assert b.x > a.x

    def test_rows_stack(self):
        doc, engine = lay("<table><tr><td id='a'>x</td></tr>"
                          "<tr><td id='b'>y</td></tr></table>")
        a = engine.box_for(doc.get_element_by_id("a")).rect
        b = engine.box_for(doc.get_element_by_id("b")).rect
        assert b.y > a.y


class TestHitTest:
    def test_click_point_hits_its_element(self):
        doc, engine = lay("""
        <div><span id="start">Go</span></div>
        <table><tr><td><div id="content">Hello</div></td>
        <td><div id="save">Save</div></td></tr></table>
        <input type="text" name="q">
        """)
        for element_id in ("start", "content", "save"):
            element = doc.get_element_by_id(element_id)
            x, y = engine.click_point(element)
            assert engine.hit_test(x, y) is element

    def test_miss_returns_none_or_body(self):
        doc, engine = lay("<p>x</p>")
        hit = engine.hit_test(100000, 100000)
        assert hit is None or hit.tag == "body"

    def test_deepest_element_wins(self):
        doc, engine = lay("<div id='outer'><div id='inner'>x</div></div>")
        inner = doc.get_element_by_id("inner")
        x, y = engine.click_point(inner)
        assert engine.hit_test(x, y) is inner


class TestDragOffsets:
    def test_offset_translates_box(self):
        doc, engine = lay("<div id='w'>widget</div>")
        before = engine.box_for(doc.get_element_by_id("w")).rect
        element = doc.get_element_by_id("w")
        element.set_attribute("data-offset-x", "30")
        element.set_attribute("data-offset-y", "40")
        engine.relayout()
        after = engine.box_for(element).rect
        assert after.x == before.x + 30
        assert after.y == before.y + 40

    def test_children_move_with_dragged_parent(self):
        doc, engine = lay("<div id='w' data-offset-x='10' data-offset-y='0'>"
                          "<span id='c'>x</span></div>")
        child = engine.box_for(doc.get_element_by_id("c")).rect
        doc.get_element_by_id("w").remove_attribute("data-offset-x")
        engine.relayout()
        unmoved = engine.box_for(doc.get_element_by_id("c")).rect
        assert child.x == unmoved.x + 10


class TestRelayout:
    def test_relayout_reflects_dom_changes(self):
        doc, engine = lay("<div id='a'>x</div>")
        new = doc.create_element("div", {"id": "b"})
        new.text_content = "y"
        doc.body.append_child(new)
        engine.relayout()
        assert engine.box_for(new) is not None

    def test_layout_document_helper(self):
        doc = parse_html("<p id='p'>x</p>")
        engine = layout_document(doc)
        assert engine.box_for(doc.get_element_by_id("p")) is not None

    def test_requires_document(self):
        doc = parse_html("<p>x</p>")
        with pytest.raises(TypeError):
            LayoutEngine(doc.body)
