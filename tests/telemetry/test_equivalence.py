"""Tracing must observe, never perturb: on/off replays are identical."""

from repro import telemetry
from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.replayer import WarrReplayer
from repro.dom import serialize


def replay_once(trace, tracing_on):
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    replayer = WarrReplayer(browser)
    if tracing_on:
        with telemetry.tracing(clock=browser.clock):
            report = replayer.replay(trace)
    else:
        report = replayer.replay(trace)
    dom = serialize(browser.active_tab.document)
    return report, dom


def test_tracing_does_not_change_replay_outcome(sites_trace):
    plain_report, plain_dom = replay_once(sites_trace, tracing_on=False)
    traced_report, traced_dom = replay_once(sites_trace, tracing_on=True)
    assert ([result.status for result in plain_report.results]
            == [result.status for result in traced_report.results])
    assert plain_report.final_url == traced_report.final_url
    assert plain_report.page_errors == traced_report.page_errors
    assert plain_dom == traced_dom


def test_tracing_off_emits_nothing(sites_trace):
    report, _ = replay_once(sites_trace, tracing_on=False)
    assert report.complete
    assert telemetry.current() is None
