"""Telemetry test fixtures: tracing always starts and ends off."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_tracer():
    telemetry.uninstall()
    yield
    telemetry.uninstall()
