"""The packed binary ring: records, interning, sampling, wire slices.

The packed path's contract is equivalence: everything the legacy
object-per-event ring records, the 48-byte binary records reproduce at
decode — same fields, same rounding, same args — while the hot path
stays a handful of integer writes. These tests pin the unit behaviors
(interning, overwrite-oldest counters, lazy growth, deferred args) and
the equivalence itself, property-tested across generated emit
sequences.
"""

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry.events import RingBuffer, TraceEvent
from repro.telemetry.packed import (
    F_ARGS,
    F_CAT,
    F_DUR,
    PH_COMPLETE,
    PH_INSTANT,
    RECORD_SIZE,
    SEGMENT_RECORDS,
    PackedRingBuffer,
    Sampler,
    StringTable,
    decode_wire_slice,
    is_wire_slice,
    materialize_args,
)
from repro.telemetry.tracer import Tracer
from repro.util.clock import VirtualClock


class TestStringTable:
    def test_interns_to_dense_ids(self):
        table = StringTable()
        assert table.intern("alpha") == 0
        assert table.intern("beta") == 1
        assert table.intern("alpha") == 0
        assert len(table) == 2
        assert table[1] == "beta"

    def test_seeds_from_existing_strings(self):
        table = StringTable(["x", "y"])
        assert table.intern("y") == 1
        assert table.intern("z") == 2


class TestSampler:
    def test_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            Sampler("cat", 1.5)
        with pytest.raises(ValueError):
            Sampler("cat", -0.1)

    def test_same_seed_same_stream(self):
        a = Sampler("session", 0.5, seed=42)
        b = Sampler("session", 0.5, seed=42)
        assert [a.keep() for _ in range(256)] == [
            b.keep() for _ in range(256)]

    def test_categories_get_distinct_streams(self):
        a = [Sampler("session", 0.5, seed=7).keep() for _ in range(64)]
        b = [Sampler("dispatch", 0.5, seed=7).keep() for _ in range(64)]
        assert a != b

    def test_rate_roughly_honored(self):
        sampler = Sampler("session", 0.25, seed=3)
        kept = sum(sampler.keep() for _ in range(4000))
        assert 800 < kept < 1200

    def test_deterministic_across_processes(self):
        """The decision stream survives hash randomization.

        ``Sampler`` seeds from ``crc32``, not ``hash()``, so two
        processes with different ``PYTHONHASHSEED`` keep the same
        events — the property that makes sampled traces comparable
        across a worker pool.
        """
        script = ("from repro.telemetry.packed import Sampler\n"
                  "s = Sampler('session', 0.5, seed=42)\n"
                  "print(''.join('1' if s.keep() else '0' "
                  "for _ in range(128)))\n")
        outputs = set()
        for hashseed in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hashseed})
            outputs.add(result.stdout.strip())
        local = Sampler("session", 0.5, seed=42)
        outputs.add("".join("1" if local.keep() else "0"
                            for _ in range(128)))
        assert len(outputs) == 1


class TestMaterializeArgs:
    def test_plain_dict_is_copied_not_mutated(self):
        caller = {"key": "value"}
        out = materialize_args(caller, 12.5)
        assert out == {"key": "value", "vt_ms": 12.5}
        assert caller == {"key": "value"}
        assert out is not caller

    def test_callable_values_deferred(self):
        calls = []

        def encode():
            calls.append(1)
            return "expensive"

        stash = {"detail": encode}
        assert not calls
        assert materialize_args(stash, None) == {"detail": "expensive"}
        assert calls == [1]

    def test_encoder_tuple_builds_whole_dict(self):
        def encoder(a, b):
            return {"a": a, "b": b}

        assert materialize_args((encoder, 1, 2), 3.0) == {
            "a": 1, "b": 2, "vt_ms": 3.0}

    def test_vt_only_makes_fresh_dict(self):
        assert materialize_args(None, 7.0) == {"vt_ms": 7.0}
        assert materialize_args(None, None) is None


class TestPackedRingBuffer:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PackedRingBuffer(0)

    def test_round_trips_fields(self):
        buffer = PackedRingBuffer(8)
        cat_id = buffer.cats.intern("session")
        buffer.append(PH_COMPLETE, "step", cat_id, 7, 9, 1.2345, 2.0,
                      5.5, {"k": 1}, None)
        (event,) = list(buffer)
        assert event.name == "step"
        assert event.ph == "X"
        assert event.pid == 7 and event.tid == 9
        # Quantized to integer nanoseconds — the exporter's precision.
        assert event.ts == pytest.approx(1.2345, abs=0.001)
        assert event.dur == pytest.approx(2.0, abs=0.001)
        assert event.cat == "session"
        assert event.args == {"k": 1, "vt_ms": 5.5}

    def test_string_ids_interned_and_restored(self):
        buffer = PackedRingBuffer(8)
        buffer.append(PH_INSTANT, "tick", None, 1, 1, 0.0, None, None,
                      None, "GET /index")
        (event,) = list(buffer)
        assert event.id == "GET /index"
        assert event.cat is None

    def test_overwrite_oldest_counts_drops(self):
        buffer = PackedRingBuffer(4)
        for index in range(10):
            buffer.append(PH_INSTANT, "e%d" % index, None, 1, 1,
                          float(index), None, None, None, None)
        assert buffer.total == 10
        assert buffer.dropped == 6
        assert len(buffer) == 4
        assert [event.name for event in buffer] == ["e6", "e7", "e8", "e9"]

    def test_since_skips_overwritten_records(self):
        buffer = PackedRingBuffer(4)
        mark = buffer.total
        for index in range(7):
            buffer.append(PH_INSTANT, "e%d" % index, None, 1, 1,
                          float(index), None, None, None, None)
        assert [event.name for event in buffer.since(mark)] == [
            "e3", "e4", "e5", "e6"]

    def test_backing_store_grows_lazily(self):
        buffer = PackedRingBuffer(SEGMENT_RECORDS * 4)
        assert buffer._alloc == SEGMENT_RECORDS
        assert len(buffer._data) == SEGMENT_RECORDS * RECORD_SIZE
        for index in range(SEGMENT_RECORDS + 1):
            buffer.append(PH_INSTANT, "e", None, 1, 1, 0.0, None, None,
                          None, None)
        assert buffer._alloc == SEGMENT_RECORDS * 2
        # Growth is capped at capacity, and decoding still sees
        # everything appended so far.
        assert len(list(buffer)) == SEGMENT_RECORDS + 1

    def test_grow_caps_at_capacity(self):
        buffer = PackedRingBuffer(SEGMENT_RECORDS + 10)
        for _ in range(SEGMENT_RECORDS + 5):
            buffer.append(PH_INSTANT, "e", None, 1, 1, 0.0, None, None,
                          None, None)
        assert buffer._alloc == buffer.capacity
        assert len(buffer._args) == buffer.capacity

    def test_append_raw_matches_append(self):
        """The observer's precompiled shape decodes like the generic one."""
        generic = PackedRingBuffer(8)
        raw = PackedRingBuffer(8)
        cat_id = generic.cats.intern("session")
        assert raw.cats.intern("session") == cat_id
        name_id = raw.names.intern("command")
        args = {"status": "ok"}
        generic.append(PH_COMPLETE, "command", cat_id, 3, 4, 10.5, 2.25,
                       None, dict(args), None)
        raw.append_raw(PH_COMPLETE, F_CAT | F_DUR | F_ARGS, cat_id,
                       name_id, 3, 4, 10500, 2250, 0.0, dict(args))
        (expected,), (actual,) = list(generic), list(raw)
        assert actual.to_dict() == expected.to_dict()

    def test_deferred_args_resolved_per_decode(self):
        buffer = PackedRingBuffer(8)
        command = ["click", "#save"]
        buffer.append(PH_INSTANT, "cmd", None, 1, 1, 0.0, None, None,
                      (lambda a, b: {"line": "%s %s" % (a, b)},
                       command[0], command[1]), None)
        (event,) = list(buffer)
        assert event.args == {"line": "click #save"}
        # Decoding is repeatable — the stash is not consumed.
        (again,) = list(buffer)
        assert again.args == {"line": "click #save"}


class TestWireSlice:
    def _fill(self, buffer, count):
        for index in range(count):
            buffer.append(PH_COMPLETE, "e%d" % index,
                          buffer.cats.intern("session"), 1, 2,
                          float(index), 0.5, None, {"i": index}, None)

    def test_detects_wire_slices(self):
        buffer = PackedRingBuffer(4)
        assert is_wire_slice(buffer.wire_slice(0))
        assert not is_wire_slice([{"name": "x"}])

    def test_round_trip_simple(self):
        buffer = PackedRingBuffer(8)
        self._fill(buffer, 3)
        decoded = decode_wire_slice(buffer.wire_slice(0))
        assert [event.to_dict() for event in decoded] == [
            event.to_dict() for event in buffer]

    def test_round_trip_across_the_wrap_seam(self):
        """A slice spanning the ring's wrap point reassembles in order."""
        buffer = PackedRingBuffer(4)
        self._fill(buffer, 7)
        decoded = decode_wire_slice(buffer.wire_slice(buffer.total - 4))
        assert [event.name for event in decoded] == ["e3", "e4", "e5", "e6"]
        assert [event.args["i"] for event in decoded] == [3, 4, 5, 6]

    def test_torn_slice_rejected(self):
        buffer = PackedRingBuffer(4)
        self._fill(buffer, 2)
        tag, data, args, names, cats = buffer.wire_slice(0)
        with pytest.raises(ValueError):
            decode_wire_slice((tag, data[:-1], args, names, cats))
        with pytest.raises(ValueError):
            decode_wire_slice(("BOGUS", data, args, names, cats))

    def test_interned_tables_stay_per_worker(self):
        """Two workers' tables intern in different orders; the decoded
        events still carry each worker's own strings — the property the
        pooled-merge path relies on when it concatenates slices."""
        first = PackedRingBuffer(8)
        second = PackedRingBuffer(8)
        first.append(PH_INSTANT, "alpha", first.cats.intern("net"), 1, 1,
                     0.0, None, None, None, None)
        second.append(PH_INSTANT, "beta", second.cats.intern("session"),
                      1, 1, 0.0, None, None, None, None)
        second.append(PH_INSTANT, "alpha", second.cats.intern("net"),
                      1, 1, 1.0, None, None, None, None)
        decoded = (decode_wire_slice(first.wire_slice(0))
                   + decode_wire_slice(second.wire_slice(0)))
        assert [(event.name, event.cat) for event in decoded] == [
            ("alpha", "net"), ("beta", "session"), ("alpha", "net")]


# -- packed ≡ legacy equivalence ------------------------------------------

_NAMES = st.sampled_from(["locate", "act", "dispatch", "reflow"])
_CATS = st.sampled_from([None, "session", "net", "dispatch"])
_ARGS = st.one_of(
    st.none(),
    st.dictionaries(st.sampled_from(["k", "n"]),
                    st.integers(-10, 10), max_size=2))
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("complete"), _NAMES, _CATS, _ARGS,
                  st.floats(0.0, 1e6), st.floats(0.0, 1e3)),
        st.tuples(st.just("instant"), _NAMES, _CATS, _ARGS),
        st.tuples(st.just("begin"), _NAMES, _CATS, _ARGS),
        st.tuples(st.just("end"), _NAMES, _CATS, _ARGS),
        st.tuples(st.just("async"), _NAMES, _CATS,
                  st.one_of(st.integers(0, 5),
                            st.sampled_from(["req-1", "req-2"]))),
        st.tuples(st.just("counter"), _NAMES, _CATS,
                  st.integers(0, 100)),
    ),
    max_size=60)


def _run_ops(tracer, ops):
    track = (1, 2)
    for op in ops:
        kind = op[0]
        if kind == "complete":
            _, name, cat, args, start, dur = op
            tracer.complete(name, start, end_us=start + dur, track=track,
                            cat=cat, args=dict(args) if args else args)
        elif kind == "instant":
            _, name, cat, args = op
            tracer.instant(name, track=track, cat=cat,
                           args=dict(args) if args else args)
        elif kind == "begin":
            _, name, cat, args = op
            tracer.begin(name, track=track, cat=cat,
                         args=dict(args) if args else args)
        elif kind == "end":
            _, name, cat, args = op
            tracer.end(name, track=track, cat=cat,
                       args=dict(args) if args else args)
        elif kind == "async":
            _, name, cat, event_id = op
            tracer.async_begin(name, event_id, track=track, cat=cat)
            tracer.async_end(name, event_id, track=track, cat=cat)
        elif kind == "counter":
            _, name, cat, value = op
            tracer.counter(name, {"v": value}, track=track, cat=cat)


def _comparable(tracer):
    """Exported dicts with the wall-clock-dependent fields stripped.

    ``complete`` timestamps are caller-supplied and must round-trip
    exactly; every other phase stamps ``now_us()``, which two tracers
    can never share.
    """
    out = []
    for event in tracer.buffer:
        data = event.to_dict()
        if data["ph"] != "X":
            del data["ts"]
        out.append(data)
    return out


class TestPackedLegacyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(ops=_OPS)
    def test_round_trip_matches_legacy(self, ops):
        packed = Tracer(buffer_size=256, packed=True)
        legacy = Tracer(buffer_size=256, packed=False)
        _run_ops(packed, ops)
        _run_ops(legacy, ops)
        assert _comparable(packed) == _comparable(legacy)

    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_round_trip_matches_with_category_filter(self, ops):
        packed = Tracer(buffer_size=256, packed=True,
                        categories="production")
        legacy = Tracer(buffer_size=256, packed=False,
                        categories="production")
        _run_ops(packed, ops)
        _run_ops(legacy, ops)
        assert _comparable(packed) == _comparable(legacy)

    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_round_trip_matches_under_sampling(self, ops):
        packed = Tracer(buffer_size=256, packed=True, sample=0.5,
                        sample_seed=9)
        legacy = Tracer(buffer_size=256, packed=False, sample=0.5,
                        sample_seed=9)
        _run_ops(packed, ops)
        _run_ops(legacy, ops)
        assert _comparable(packed) == _comparable(legacy)

    @settings(max_examples=30, deadline=None)
    @given(ops=_OPS)
    def test_virtual_clock_stamped_identically(self, ops):
        packed = Tracer(buffer_size=256, packed=True,
                        clock=VirtualClock(start=250.0))
        legacy = Tracer(buffer_size=256, packed=False,
                        clock=VirtualClock(start=250.0))
        _run_ops(packed, ops)
        _run_ops(legacy, ops)
        assert _comparable(packed) == _comparable(legacy)


class TestCallerArgsNeverMutated:
    """vt_ms stamping must never leak into the caller's dict.

    Regression pin: the legacy emit used to stamp ``vt_ms`` into the
    args dict it was handed, so a caller reusing one dict across
    emits saw it silently grow.
    """

    def _assert_pristine(self, packed):
        clock = VirtualClock(start=99.0)
        tracer = Tracer(buffer_size=16, packed=packed, clock=clock)
        caller_args = {"detail": "kept"}
        tracer.instant("tick", track=(1, 1), args=caller_args)
        tracer.complete("span", 0.0, end_us=5.0, track=(1, 1),
                        args=caller_args)
        (instant, span) = list(tracer.buffer)
        assert instant.args == {"detail": "kept", "vt_ms": 99.0}
        assert span.args == {"detail": "kept", "vt_ms": 99.0}
        assert caller_args == {"detail": "kept"}

    def test_packed_path(self):
        self._assert_pristine(packed=True)

    def test_legacy_path(self):
        self._assert_pristine(packed=False)


class TestSamplingDeterminismAcrossProcesses:
    def test_same_seed_keeps_same_events_in_a_subprocess(self):
        script = (
            "from repro.telemetry.tracer import Tracer\n"
            "tracer = Tracer(buffer_size=512, sample=0.5, sample_seed=21)\n"
            "for index in range(200):\n"
            "    tracer.complete('e%d' % index, float(index),\n"
            "                    end_us=index + 1.0, track=(1, 1),\n"
            "                    cat='session')\n"
            "print(','.join(event.name for event in tracer.buffer))\n")
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"})
        tracer = Tracer(buffer_size=512, sample=0.5, sample_seed=21)
        for index in range(200):
            tracer.complete("e%d" % index, float(index),
                            end_us=index + 1.0, track=(1, 1),
                            cat="session")
        local = ",".join(event.name for event in tracer.buffer)
        assert result.stdout.strip() == local
        # And a different seed really changes the kept set.
        other = Tracer(buffer_size=512, sample=0.5, sample_seed=22)
        for index in range(200):
            other.complete("e%d" % index, float(index),
                           end_us=index + 1.0, track=(1, 1),
                           cat="session")
        assert ",".join(event.name for event in other.buffer) != local
