"""Merging worker trace slices into one batch timeline."""

import json
import os

from repro.telemetry.merge import TraceMerger
from repro.session.batch import BatchRunner
from repro.session.policies import TimingPolicy
from tests.session.test_batch import factory, record_trace
from tests.telemetry.schema import validate_trace


def span(pid, tid, name="work", ts=1.0, dur=2.0):
    return {"name": name, "ph": "X", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid, "cat": "test"}


def process_name(pid, name):
    return {"name": "process_name", "ph": "M", "ts": 0.0,
            "pid": pid, "tid": 0, "args": {"name": name}}


def sort_index(pid, index):
    return {"name": "process_sort_index", "ph": "M", "ts": 0.0,
            "pid": pid, "tid": 0, "args": {"sort_index": index}}


class TestTraceMerger:
    def test_same_local_pid_from_different_workers_split_apart(self):
        merger = TraceMerger()
        (a,), _ = merger.add_session(0, [span(pid=1, tid=1)])
        (b,), _ = merger.add_session(1, [span(pid=1, tid=1)])
        assert a["pid"] != b["pid"]
        assert a["tid"] == b["tid"] == 1

    def test_same_worker_pid_stays_stable_across_sessions(self):
        merger = TraceMerger()
        (a,), _ = merger.add_session(0, [span(pid=2, tid=1)])
        (b,), _ = merger.add_session(0, [span(pid=2, tid=1, ts=10.0)])
        assert a["pid"] == b["pid"]

    def test_process_names_get_worker_suffix(self):
        merger = TraceMerger()
        _, (meta,) = merger.add_session(
            3, [], metadata=[process_name(1, "repro driver")])
        assert meta["args"]["name"] == "repro driver [w3]"

    def test_sort_index_follows_merged_pid(self):
        merger = TraceMerger()
        merger.add_session(0, [], metadata=[sort_index(1, 1)])
        _, (meta,) = merger.add_session(1, [], metadata=[sort_index(1, 1)])
        assert meta["args"]["sort_index"] == meta["pid"]

    def test_repeated_metadata_deduplicated_in_merged_trace(self):
        merger = TraceMerger()
        metadata = [process_name(1, "repro driver")]
        merger.add_session(0, [span(1, 1)], metadata=metadata)
        _, session_meta = merger.add_session(0, [span(1, 1, ts=9.0)],
                                             metadata=metadata)
        # The per-session return still carries it; the merged list once.
        assert len(session_meta) == 1
        assert len(merger.metadata) == 1
        assert len(merger.events) == 2

    def test_inputs_are_not_mutated(self):
        merger = TraceMerger()
        original = span(pid=1, tid=1)
        keep = dict(original)
        merger.add_session(0, [original])
        assert original == keep

    def test_trace_dict_validates(self):
        merger = TraceMerger()
        merger.add_session(0, [span(1, 1)],
                           metadata=[process_name(1, "repro driver")])
        merger.add_session(1, [span(1, 1)],
                           metadata=[process_name(1, "repro driver")])
        events = validate_trace(merger.trace_dict())
        assert {e["pid"] for e in events} == {1, 2}


class TestPooledTraceFiles:
    def test_pooled_batch_trace_merges_worker_tracks(self, tmp_path):
        traces = [record_trace("s%d" % i) for i in range(4)]
        batch = BatchRunner(factory, timing=TimingPolicy.no_wait(),
                            workers=2).run(traces,
                                           trace_dir=str(tmp_path))
        assert batch.complete

        with open(tmp_path / "batch.trace.json") as handle:
            merged = json.load(handle)
        events = validate_trace(merged)

        # One control pid + one browser pid per session, per worker —
        # remapped so no two sessions share a pid track.
        names = {}
        for event in merged["traceEvents"]:
            if event["ph"] == "M" and event["name"] == "process_name":
                names[event["pid"]] = event["args"]["name"]
        browser_pids = [pid for pid, name in names.items()
                        if name.startswith("BrowserWindow")]
        assert len(browser_pids) == 4
        assert all("[w" in name for name in names.values())
        assert {e["pid"] for e in events if e["ph"] != "M"} \
            <= set(names)

        # Each session also gets its own valid standalone trace file.
        for trace in traces:
            path = tmp_path / ("%s.trace.json" % trace.label)
            assert path.exists()
            with open(path) as handle:
                validate_trace(json.load(handle))

    def test_serial_and_pooled_emit_same_file_set(self, tmp_path):
        traces = [record_trace("a"), record_trace("b")]
        serial_dir = tmp_path / "serial"
        pooled_dir = tmp_path / "pooled"
        runner = BatchRunner(factory, timing=TimingPolicy.no_wait())
        runner.run(traces, trace_dir=str(serial_dir))
        BatchRunner(factory, timing=TimingPolicy.no_wait(), workers=2).run(
            traces, trace_dir=str(pooled_dir))
        assert sorted(os.listdir(serial_dir)) == sorted(os.listdir(pooled_dir))
