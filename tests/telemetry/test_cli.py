"""The tracing CLI surface: trace, replay --trace-out, batch --trace-dir."""

import io
import json

import pytest

from repro.cli import main
from tests.telemetry.schema import categories, validate_trace


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture
def recorded_trace(tmp_path):
    path = tmp_path / "session.warr"
    code, _ = run_cli(["record", "--app", "sites", "--out", str(path)])
    assert code == 0
    return path


class TestTraceCommand:
    def test_writes_valid_trace_and_summarizes(self, recorded_trace,
                                               tmp_path):
        out = tmp_path / "trace.json"
        code, output = run_cli(["trace", str(recorded_trace),
                                "--app", "sites", "--out", str(out)])
        assert code == 0
        assert "trace: wrote" in output
        assert "longest spans:" in output
        trace_dict = json.loads(out.read_text())
        events = validate_trace(trace_dict)
        assert {"ipc", "dispatch", "session"} <= categories(events)

    def test_summary_counts_events(self, recorded_trace, tmp_path):
        out = tmp_path / "trace.json"
        _, output = run_cli(["trace", str(recorded_trace),
                             "--app", "sites", "--out", str(out)])
        assert "trace event(s)" in output

    def test_summary_reports_ring_buffer_counters(self, recorded_trace,
                                                  tmp_path):
        out = tmp_path / "trace.json"
        _, output = run_cli(["trace", str(recorded_trace),
                             "--app", "sites", "--out", str(out)])
        assert "ring buffer:" in output
        assert "dropped" in output
        trace_dict = json.loads(out.read_text())
        assert trace_dict["otherData"]["events_total"] > 0

    def test_production_categories_filter_the_export(self, recorded_trace,
                                                     tmp_path):
        out = tmp_path / "trace.json"
        code, _ = run_cli(["trace", str(recorded_trace), "--app", "sites",
                           "--trace-categories", "production",
                           "--out", str(out)])
        assert code == 0
        events = validate_trace(json.loads(out.read_text()))
        kept = categories(events)
        assert "session" in kept
        assert not kept & {"dispatch", "ipc", "layout", "xpath"}


class TestReplayTraceOut:
    def test_trace_out_writes_file(self, recorded_trace, tmp_path):
        out = tmp_path / "replay.trace.json"
        code, output = run_cli(["replay", str(recorded_trace),
                                "--app", "sites",
                                "--trace-out", str(out)])
        assert code == 0
        assert "trace: wrote" in output
        validate_trace(json.loads(out.read_text()))

    def test_without_flag_no_trace(self, recorded_trace, tmp_path):
        code, output = run_cli(["replay", str(recorded_trace),
                                "--app", "sites"])
        assert code == 0
        assert "trace: wrote" not in output


class TestBatchTraceDir:
    def test_writes_per_session_and_merged(self, recorded_trace, tmp_path):
        trace_dir = tmp_path / "traces"
        code, output = run_cli(["batch", str(recorded_trace),
                                str(recorded_trace), "--app", "sites",
                                "--trace-dir", str(trace_dir)])
        assert code == 0
        assert "batch.trace.json" in output
        written = sorted(p.name for p in trace_dir.iterdir())
        assert "batch.trace.json" in written
        # One per-session slice per input trace (the repeated label is
        # suffixed, not overwritten), plus the merged file.
        assert len(written) == 3
        merged = json.loads((trace_dir / "batch.trace.json").read_text())
        events = validate_trace(merged)
        # Two sessions ran on two isolated browsers -> two browser pids.
        browser_pids = {event["pid"] for event in events
                        if event.get("cat") == "dispatch"}
        assert len(browser_pids) == 2
        for name in written:
            validate_trace(json.loads((trace_dir / name).read_text()))

    def test_pooled_batch_writes_merged_worker_tracks(self, recorded_trace,
                                                      tmp_path):
        trace_dir = tmp_path / "traces"
        code, output = run_cli(["batch", str(recorded_trace),
                                str(recorded_trace), "--app", "sites",
                                "--workers", "2",
                                "--trace-dir", str(trace_dir)])
        assert code == 0
        assert "batch.trace.json" in output
        written = sorted(p.name for p in trace_dir.iterdir())
        assert len(written) == 3
        merged = json.loads((trace_dir / "batch.trace.json").read_text())
        events = validate_trace(merged)
        # Two sessions on two isolated worker browsers: the merger must
        # keep their browser tracks apart and label each with its worker.
        browser_pids = {event["pid"] for event in events
                        if event.get("cat") == "dispatch"}
        assert len(browser_pids) == 2
        names = [event["args"]["name"] for event in merged["traceEvents"]
                 if event["ph"] == "M" and event["name"] == "process_name"]
        assert names and all("[w" in name for name in names)
        for name in written:
            validate_trace(json.loads((trace_dir / name).read_text()))
