"""Chrome trace-event schema validator shared by the telemetry tests.

``validate_trace`` asserts the structural invariants every exported
trace must satisfy to load cleanly in catapult's trace_viewer or
Perfetto:

- every event carries ``name``/``ph``/``ts``/``pid``/``tid`` with sane
  types, and ``ph`` is a phase the tracer is allowed to emit;
- ``B``/``E`` duration events balance as a stack per (pid, tid), with
  matching names;
- async ``b``/``e`` events pair one-to-one on (cat, id);
- synchronous spans (``X`` plus matched ``B``/``E``) form a laminar
  family per (pid, tid): any two either nest or are disjoint;
- the whole object round-trips through JSON unchanged.
"""

import json

from repro.telemetry.events import KNOWN_PHASES

#: Slack for interval comparisons: ts/dur are rounded to 3 decimals of
#: a microsecond on export, so boundaries can shift by half that.
EPSILON_US = 0.01


def validate_trace(trace_dict):
    """Assert ``trace_dict`` is a valid trace object; returns its events."""
    assert isinstance(trace_dict, dict)
    events = trace_dict["traceEvents"]
    assert isinstance(events, list)
    for event in events:
        _validate_event(event)
    _validate_duration_balance(events)
    _validate_async_pairing(events)
    _validate_span_nesting(events)
    assert json.loads(json.dumps(trace_dict)) == trace_dict
    return events


def _validate_event(event):
    assert isinstance(event.get("name"), str), event
    assert event.get("ph") in KNOWN_PHASES, event
    assert isinstance(event.get("ts"), (int, float)), event
    assert event["ts"] >= 0.0, event
    assert isinstance(event.get("pid"), int) and event["pid"] >= 1, event
    # Process-scoped metadata (process_name etc.) sits on tid 0.
    min_tid = 0 if event["ph"] == "M" else 1
    assert isinstance(event.get("tid"), int) and event["tid"] >= min_tid, event
    if event["ph"] == "X":
        assert isinstance(event.get("dur"), (int, float)), event
        assert event["dur"] >= 0.0, event
    if event["ph"] == "i":
        assert event.get("s") == "t", event
    if event["ph"] in ("b", "e"):
        assert event.get("id") is not None, event
    if event["ph"] == "M":
        assert event["name"] in ("process_name", "thread_name",
                                 "process_sort_index",
                                 "thread_sort_index"), event


def _validate_duration_balance(events):
    stacks = {}
    for event in events:
        track = (event["pid"], event["tid"])
        if event["ph"] == "B":
            stacks.setdefault(track, []).append(event["name"])
        elif event["ph"] == "E":
            stack = stacks.get(track)
            assert stack, "E %r without open B on %r" % (event["name"], track)
            opened = stack.pop()
            # The tracer names its E events; they must close in order.
            assert event["name"] in ("", opened), (
                "E %r closes B %r" % (event["name"], opened))
    for track, stack in stacks.items():
        assert not stack, "unclosed B spans %r on %r" % (stack, track)


def _validate_async_pairing(events):
    open_spans = {}
    for event in events:
        if event["ph"] not in ("b", "e"):
            continue
        key = (event.get("cat"), event["id"])
        if event["ph"] == "b":
            assert key not in open_spans, "duplicate async begin %r" % (key,)
            open_spans[key] = event
        else:
            begin = open_spans.pop(key, None)
            assert begin is not None, "async end %r without begin" % (key,)
            assert event["ts"] >= begin["ts"] - EPSILON_US
    assert not open_spans, "unclosed async spans %r" % sorted(open_spans)


def _sync_intervals(events):
    """[(pid, tid)] -> sorted [(start, end)] from X and B/E events."""
    intervals = {}
    stacks = {}
    for event in events:
        track = (event["pid"], event["tid"])
        if event["ph"] == "X":
            intervals.setdefault(track, []).append(
                (event["ts"], event["ts"] + event["dur"]))
        elif event["ph"] == "B":
            stacks.setdefault(track, []).append(event["ts"])
        elif event["ph"] == "E":
            start = stacks[track].pop()
            intervals.setdefault(track, []).append((start, event["ts"]))
    return intervals


def _validate_span_nesting(events):
    """Sync spans on one track must nest — no partial overlap."""
    for track, spans in _sync_intervals(events).items():
        spans.sort(key=lambda span: (span[0], -span[1]))
        open_ends = []
        for start, end in spans:
            while open_ends and start >= open_ends[-1] - EPSILON_US:
                open_ends.pop()
            if open_ends:
                assert end <= open_ends[-1] + EPSILON_US, (
                    "span (%f, %f) straddles enclosing end %f on track %r"
                    % (start, end, open_ends[-1], track))
            open_ends.append(end)


def categories(events):
    """The set of categories present (ignoring metadata events)."""
    return {event.get("cat") for event in events if event["ph"] != "M"}


def tracks_for_category(events, category):
    """All (pid, tid) tracks carrying events of ``category``."""
    return {(event["pid"], event["tid"]) for event in events
            if event.get("cat") == category}
