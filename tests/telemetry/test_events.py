"""TraceEvent serialization and the bounded ring buffer."""

import pytest

from repro.telemetry.events import RingBuffer, TraceEvent


class TestTraceEvent:
    def test_minimal_dict(self):
        event = TraceEvent("work", "X", 12.3456789, 1, 2, dur=3.14159)
        data = event.to_dict()
        assert data["name"] == "work"
        assert data["ph"] == "X"
        assert data["ts"] == 12.346
        assert data["dur"] == 3.142
        assert data["pid"] == 1 and data["tid"] == 2
        assert "cat" not in data and "args" not in data and "id" not in data

    def test_optional_fields(self):
        event = TraceEvent("q", "b", 1.0, 1, 1, cat="ipc",
                           args={"kind": "mouse"}, id=7)
        data = event.to_dict()
        assert data["cat"] == "ipc"
        assert data["args"] == {"kind": "mouse"}
        assert data["id"] == 7

    def test_instant_is_thread_scoped(self):
        assert TraceEvent("tick", "i", 0.0, 1, 1).to_dict()["s"] == "t"


class TestRingBuffer:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)

    def test_appends_within_capacity(self):
        buffer = RingBuffer(4)
        for n in range(3):
            buffer.append(n)
        assert list(buffer) == [0, 1, 2]
        assert buffer.total == 3
        assert buffer.dropped == 0

    def test_drops_oldest_when_full(self):
        buffer = RingBuffer(3)
        for n in range(5):
            buffer.append(n)
        assert list(buffer) == [2, 3, 4]
        assert buffer.total == 5
        assert buffer.dropped == 2

    def test_since_slices_incrementally(self):
        buffer = RingBuffer(10)
        for n in range(4):
            buffer.append(n)
        mark = buffer.total
        for n in range(4, 7):
            buffer.append(n)
        assert buffer.since(mark) == [4, 5, 6]
        assert buffer.since(0) == [0, 1, 2, 3, 4, 5, 6]

    def test_since_survives_eviction(self):
        buffer = RingBuffer(3)
        for n in range(3):
            buffer.append(n)
        mark = buffer.total  # 3; events 0..2 held
        for n in range(3, 8):
            buffer.append(n)  # evicts everything pre-mark and more
        assert buffer.since(mark) == [5, 6, 7]
