"""A real replay's exported timeline is schema-valid and complete."""

import json

import pytest

from repro import telemetry
from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.replayer import WarrReplayer
from repro.telemetry.tracks import CONTROL_PID, FIRST_BROWSER_PID
from tests.telemetry.schema import (
    categories,
    tracks_for_category,
    validate_trace,
)

#: Every boundary the subsystem instruments must show up in a replay.
REQUIRED_CATEGORIES = {"ipc", "input", "dispatch", "layout", "xpath",
                       "session", "perf"}


@pytest.fixture
def replay_trace_dict(sites_trace, tmp_path):
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    out = tmp_path / "trace.json"
    with telemetry.tracing(out=str(out), clock=browser.clock):
        report = WarrReplayer(browser).replay(sites_trace)
    assert report.complete
    return json.loads(out.read_text())


def test_trace_passes_schema_validation(replay_trace_dict):
    events = validate_trace(replay_trace_dict)
    assert events, "replay produced no trace events"


def test_every_instrumented_category_present(replay_trace_dict):
    events = validate_trace(replay_trace_dict)
    missing = REQUIRED_CATEGORIES - categories(events)
    assert not missing, "categories missing from trace: %r" % sorted(missing)


def test_categories_land_on_distinct_tracks(replay_trace_dict):
    events = validate_trace(replay_trace_dict)
    session = tracks_for_category(events, "session")
    xpath = tracks_for_category(events, "xpath")
    dispatch = tracks_for_category(events, "dispatch")
    ipc = tracks_for_category(events, "ipc")
    # Pipeline and locator both narrate on the control process, on
    # separate threads; browser-stack work runs on browser pids.
    assert all(pid == CONTROL_PID for pid, _ in session | xpath)
    assert not session & xpath
    assert all(pid >= FIRST_BROWSER_PID for pid, _ in dispatch | ipc)
    # IPC renders on both sides of the boundary: the browser-process
    # send/pump lane and the renderer delivery lane.
    assert len(ipc) >= 2


def test_virtual_clock_stamped_on_events(replay_trace_dict):
    events = validate_trace(replay_trace_dict)
    payload = [event for event in events if event["ph"] not in ("M",)]
    assert payload
    for event in payload:
        assert "vt_ms" in event.get("args", {}), event


def test_trace_is_self_describing(replay_trace_dict):
    events = replay_trace_dict["traceEvents"]
    named = {(event["pid"], event.get("args", {}).get("name"))
             for event in events if event["name"] == "process_name"}
    assert (CONTROL_PID, "repro driver") in named
    assert any(name and name.startswith("BrowserWindow")
               for _, name in named)
    assert replay_trace_dict["otherData"]["producer"] == "repro.telemetry"


def test_nothing_dropped_in_a_single_replay(replay_trace_dict):
    assert "dropped_events" not in replay_trace_dict["otherData"]
