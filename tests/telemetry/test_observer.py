"""TracingObserver: session-pipeline spans from the engine's events."""

import json

import pytest

from repro import telemetry
from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.commands import TypeCommand
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.core.trace import WarrTrace
from repro.telemetry.tracks import COUNTERS_TRACK, SESSION_TRACK
from repro.workloads.sessions import sites_edit_session
from tests.telemetry.schema import validate_trace


@pytest.fixture
def session_events(sites_trace):
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    with telemetry.tracing(clock=browser.clock) as tracer:
        report = WarrReplayer(browser).replay(sites_trace)
    assert report.complete
    events = [event for event in tracer.buffer
              if (event.pid, event.tid) == SESSION_TRACK]
    return sites_trace, events, list(tracer.buffer)


def test_one_session_span_wraps_the_run(session_events):
    _, events, _ = session_events
    begins = [e for e in events if e.ph == "B" and e.name == "session"]
    ends = [e for e in events if e.ph == "E" and e.name == "session"]
    assert len(begins) == len(ends) == 1
    assert begins[0].args["commands"] > 0
    assert begins[0].args["start_url"].startswith("http://")


def test_command_spans_one_per_command(session_events):
    trace, events, _ = session_events
    # One complete (X) event per command: stamped at command start,
    # emitted once at command finish.
    commands = [e for e in events if e.ph == "X" and e.name == "command"]
    assert len(commands) == len(trace)
    for span in commands:
        assert span.args["action"] in ("click", "doubleclick", "type",
                                       "drag", "switchframe")
        assert span.dur >= 0.0
        assert span.args["status"] == "ok"


def test_locate_and_act_phases_balance(session_events):
    _, events, _ = session_events
    for phase in ("locate", "act"):
        begins = sum(1 for e in events if e.ph == "B" and e.name == phase)
        ends = sum(1 for e in events if e.ph == "E" and e.name == phase)
        assert begins == ends
    assert sum(1 for e in events if e.ph == "B" and e.name == "locate") > 0


def test_schedule_spans_on_session_track(session_events):
    _, events, _ = session_events
    schedules = [e for e in events
                 if e.ph == "X" and e.name == "session.schedule"]
    assert schedules
    for span in schedules:
        assert span.args["wait_ms"] >= 0.0


def test_cache_counters_reported_on_counters_track(session_events):
    _, _, all_events = session_events
    cache_counters = [event for event in all_events
                      if event.ph == "C"
                      and event.name.startswith("session.cache.")]
    assert cache_counters
    for event in cache_counters:
        assert (event.pid, event.tid) == COUNTERS_TRACK


def test_failed_command_emits_instant():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    trace = WarrTrace(start_url="http://sites.example.com/edit/home")
    # Typing has no coordinate fallback, so a missing target fails.
    trace.append(TypeCommand("//input[@id='does-not-exist']",
                             key="a", code=65, elapsed_ms=0))
    with telemetry.tracing(clock=browser.clock) as tracer:
        WarrReplayer(browser).replay(trace)
    names = [event.name for event in tracer.buffer]
    assert "command.failed" in names


def test_observer_is_inert_without_tracer(sites_trace):
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    report = WarrReplayer(browser).replay(sites_trace)
    assert report.complete


@pytest.fixture
def production_run(sites_trace, tmp_path):
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    out = tmp_path / "trace.json"
    with telemetry.tracing(out=str(out), clock=browser.clock,
                           categories="production") as tracer:
        report = WarrReplayer(browser).replay(sites_trace)
    assert report.complete
    return sites_trace, tracer, json.loads(out.read_text())


class TestProductionFastPath:
    """The batched packed path the production category set compiles to."""

    def test_every_command_survives_the_batched_drain(self, production_run):
        # Commands are appended to a pending batch and drained in
        # chunks; the tail (len(trace) is not a multiple of the batch
        # size) must be flushed at session finish, not lost.
        trace, tracer, _ = production_run
        spans = [event for event in tracer.buffer
                 if event.ph == "X" and event.name == "command"]
        assert len(spans) == len(trace)
        timestamps = [span.ts for span in spans]
        assert timestamps == sorted(timestamps)

    def test_deferred_args_decode_to_the_command_payload(
            self, production_run):
        # The hot path stashes one encoder tuple per command; decoding
        # at export must reproduce the same payload the legacy path
        # built eagerly.
        trace, tracer, _ = production_run
        spans = [event for event in tracer.buffer
                 if event.ph == "X" and event.name == "command"]
        for span, command in zip(spans, trace):
            assert span.args["line"] == command.to_line()
            assert span.args["action"] == command.action
            assert span.args["status"] == "ok"
            assert "vt_ms" in span.args

    def test_no_phase_spans_in_production(self, production_run):
        _, tracer, _ = production_run
        names = {event.name for event in tracer.buffer}
        assert "locate" not in names
        assert "act" not in names

    def test_export_is_schema_valid_with_counters(self, production_run):
        trace, _, trace_dict = production_run
        events = validate_trace(trace_dict)
        assert events
        other = trace_dict["otherData"]
        assert other["events_total"] >= len(trace)
        assert "dropped_events" not in other


def test_page_errors_collapse_to_one_count_in_production():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="Hi!")
    trace = recorder.trace

    def impatient_replay(categories):
        replay_browser, _ = make_browser([SitesApplication],
                                         developer_mode=True)
        with telemetry.tracing(clock=replay_browser.clock,
                               categories=categories) as tracer:
            report = WarrReplayer(replay_browser,
                                  timing=TimingMode.no_wait()).replay(trace)
        assert report.page_errors
        return report, list(tracer.buffer)

    report, events = impatient_replay("production")
    names = [event.name for event in events]
    assert "page.error" not in names  # per-error instants filtered out
    counts = [event for event in events if event.name == "page.errors"]
    assert len(counts) == 1
    assert counts[0].args["count"] == len(report.page_errors)

    report, events = impatient_replay("all")
    names = [event.name for event in events]
    assert names.count("page.error") == len(report.page_errors)
    assert "page.errors" not in names  # the count is the filtered stand-in
