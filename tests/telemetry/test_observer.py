"""TracingObserver: session-pipeline spans from the engine's events."""

import pytest

from repro import telemetry
from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.commands import TypeCommand
from repro.core.replayer import WarrReplayer
from repro.core.trace import WarrTrace
from repro.telemetry.tracks import COUNTERS_TRACK, SESSION_TRACK


@pytest.fixture
def session_events(sites_trace):
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    with telemetry.tracing(clock=browser.clock) as tracer:
        report = WarrReplayer(browser).replay(sites_trace)
    assert report.complete
    events = [event for event in tracer.buffer
              if (event.pid, event.tid) == SESSION_TRACK]
    return sites_trace, events, list(tracer.buffer)


def test_one_session_span_wraps_the_run(session_events):
    _, events, _ = session_events
    begins = [e for e in events if e.ph == "B" and e.name == "session"]
    ends = [e for e in events if e.ph == "E" and e.name == "session"]
    assert len(begins) == len(ends) == 1
    assert begins[0].args["commands"] > 0
    assert begins[0].args["start_url"].startswith("http://")


def test_command_spans_one_per_command(session_events):
    trace, events, _ = session_events
    commands = [e for e in events if e.ph == "B" and e.name == "command"]
    assert len(commands) == len(trace)
    for begin in commands:
        assert begin.args["action"] in ("click", "doubleclick", "type",
                                        "drag", "switchframe")


def test_locate_and_act_phases_balance(session_events):
    _, events, _ = session_events
    for phase in ("locate", "act"):
        begins = sum(1 for e in events if e.ph == "B" and e.name == phase)
        ends = sum(1 for e in events if e.ph == "E" and e.name == phase)
        assert begins == ends
    assert sum(1 for e in events if e.ph == "B" and e.name == "locate") > 0


def test_schedule_spans_on_session_track(session_events):
    _, events, _ = session_events
    schedules = [e for e in events
                 if e.ph == "X" and e.name == "session.schedule"]
    assert schedules
    for span in schedules:
        assert span.args["wait_ms"] >= 0.0


def test_cache_counters_reported_on_counters_track(session_events):
    _, _, all_events = session_events
    cache_counters = [event for event in all_events
                      if event.ph == "C"
                      and event.name.startswith("session.cache.")]
    assert cache_counters
    for event in cache_counters:
        assert (event.pid, event.tid) == COUNTERS_TRACK


def test_failed_command_emits_instant():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    trace = WarrTrace(start_url="http://sites.example.com/edit/home")
    # Typing has no coordinate fallback, so a missing target fails.
    trace.append(TypeCommand("//input[@id='does-not-exist']",
                             key="a", code=65, elapsed_ms=0))
    with telemetry.tracing(clock=browser.clock) as tracer:
        WarrReplayer(browser).replay(trace)
    names = [event.name for event in tracer.buffer]
    assert "command.failed" in names


def test_observer_is_inert_without_tracer(sites_trace):
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    report = WarrReplayer(browser).replay(sites_trace)
    assert report.complete
