"""Tracer emission, track assignment, installation, and the perf bridge."""

import pytest

from repro import perf, telemetry
from repro.telemetry.tracer import Tracer, parse_category_spec
from repro.telemetry.tracks import (
    COUNTERS_TRACK,
    CONTROL_PID,
    FIRST_BROWSER_PID,
    LOCATOR_TRACK,
    SESSION_TRACK,
    TrackRegistry,
)
from repro.util.clock import VirtualClock
from tests.browser.helpers import build_browser, url


class TestTracerEmission:
    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("work", track=SESSION_TRACK, cat="test") as args:
            args["n"] = 3
        (event,) = list(tracer.buffer)
        assert event.ph == "X"
        assert event.name == "work"
        assert event.dur >= 0.0
        assert event.args["n"] == 3
        assert (event.pid, event.tid) == SESSION_TRACK

    def test_begin_end_pair(self):
        tracer = Tracer()
        tracer.begin("outer", track=SESSION_TRACK, cat="test")
        tracer.end("outer", track=SESSION_TRACK, cat="test")
        first, second = list(tracer.buffer)
        assert (first.ph, second.ph) == ("B", "E")
        assert second.ts >= first.ts

    def test_async_pair_carries_id(self):
        tracer = Tracer()
        tracer.async_begin("queue", 42, track=SESSION_TRACK, cat="ipc")
        tracer.async_end("queue", 42, track=LOCATOR_TRACK, cat="ipc")
        begin, end = list(tracer.buffer)
        assert (begin.ph, end.ph) == ("b", "e")
        assert begin.id == end.id == 42

    def test_counter_event(self):
        tracer = Tracer()
        tracer.counter("depth", {"value": 7}, track=COUNTERS_TRACK)
        (event,) = list(tracer.buffer)
        assert event.ph == "C"
        assert event.args == {"value": 7}

    def test_virtual_clock_stamped_into_args(self):
        clock = VirtualClock()
        clock.advance(250.0)
        tracer = Tracer(clock=clock)
        tracer.instant("tick", track=SESSION_TRACK)
        (event,) = list(tracer.buffer)
        assert event.args["vt_ms"] == 250.0

    def test_complete_between_uses_perf_counter_origin(self):
        import time

        tracer = Tracer()
        started = time.perf_counter()
        tracer.complete_between("op", started, track=SESSION_TRACK)
        (event,) = list(tracer.buffer)
        assert event.ph == "X"
        assert event.dur >= 0.0

    def test_mark_and_events_since(self):
        tracer = Tracer()
        tracer.instant("before", track=SESSION_TRACK)
        mark = tracer.mark()
        tracer.instant("after", track=SESSION_TRACK)
        names = [event.name for event in tracer.events_since(mark)]
        assert names == ["after"]


class TestCategorySpecRates:
    def test_rate_suffix_splits_into_categories_and_rates(self):
        categories, rates = parse_category_spec("session,dispatch:0.25")
        assert categories == frozenset({"session", "dispatch"})
        assert rates == {"dispatch": 0.25}

    def test_spec_without_rates_passes_through(self):
        assert parse_category_spec("production") == (
            telemetry.PRODUCTION_CATEGORIES, {})
        assert parse_category_spec(None) == (None, {})

    def test_rated_term_still_enables_its_category(self):
        def kept_names():
            tracer = Tracer(categories="session,dispatch:0.5",
                            sample_seed=3)
            for index in range(200):
                tracer.instant("d%d" % index, cat="dispatch")
            return [event.name for event in tracer.buffer]

        first, second = kept_names(), kept_names()
        assert first == second  # same seed keeps the same events
        assert 60 < len(first) < 140  # ~half of 200

    def test_explicit_sample_overrides_spec_rate(self):
        tracer = Tracer(categories="dispatch:0.0",
                        sample={"dispatch": 1.0})
        for index in range(5):
            tracer.instant("d%d" % index, cat="dispatch")
        assert len(list(tracer.buffer)) == 5


class TestTrackRegistry:
    def test_none_and_tuple_resolution(self):
        registry = TrackRegistry()
        assert registry.for_object(None) == SESSION_TRACK
        assert registry.for_object((9, 9)) == (9, 9)

    def test_browser_stack_gets_distinct_tracks(self):
        registry = TrackRegistry()
        browser = build_browser()
        tab = browser.new_tab(url("/"))
        browser_track = registry.for_object(browser)
        tab_track = registry.for_object(tab)
        renderer_track = registry.for_object(tab.renderer)
        assert browser_track == (FIRST_BROWSER_PID, 1)
        assert tab_track[0] == FIRST_BROWSER_PID
        assert renderer_track[0] == FIRST_BROWSER_PID
        assert len({browser_track, tab_track, renderer_track}) == 3

    def test_engine_shares_renderer_track(self):
        registry = TrackRegistry()
        browser = build_browser()
        tab = browser.new_tab(url("/"))
        assert (registry.for_object(tab.renderer.engine)
                == registry.for_object(tab.renderer))

    def test_second_browser_gets_new_pid(self):
        registry = TrackRegistry()
        first = build_browser()
        second = build_browser()
        assert registry.for_object(first)[0] != registry.for_object(second)[0]

    def test_metadata_names_every_track(self):
        registry = TrackRegistry()
        browser = build_browser()
        registry.for_object(browser)
        names = {(event.pid, event.tid, event.args.get("name"))
                 for event in registry.metadata_events
                 if event.name in ("process_name", "thread_name")}
        assert (CONTROL_PID, 0, "repro driver") in names
        assert (FIRST_BROWSER_PID, 0, "BrowserWindow 0") in names
        assert (FIRST_BROWSER_PID, 1, "browser (UI/IPC)") in names


class TestInstallation:
    def test_off_by_default(self):
        assert telemetry.current() is None
        assert not telemetry.enabled()

    def test_install_uninstall(self):
        tracer = Tracer()
        telemetry.install(tracer)
        assert telemetry.current() is tracer
        telemetry.uninstall()
        assert telemetry.current() is None

    def test_nested_install_refused(self):
        telemetry.install(Tracer())
        with pytest.raises(RuntimeError):
            telemetry.install(Tracer())

    def test_tracing_contextmanager_writes_file(self, tmp_path):
        out = tmp_path / "trace.json"
        with telemetry.tracing(out=str(out)) as tracer:
            tracer.instant("inside", track=SESSION_TRACK)
        assert telemetry.current() is None
        assert out.exists()

    def test_tracing_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry.tracing():
                raise RuntimeError("boom")
        assert telemetry.current() is None


class TestPerfBridge:
    def test_counter_activity_becomes_events(self):
        perf.reset()
        with telemetry.tracing() as tracer:
            perf.record("demo.cache", hit=True)
            perf.record("demo.cache", hit=False)
        counters = [event for event in tracer.buffer if event.ph == "C"]
        assert any(event.name == "perf.demo.cache" for event in counters)
        last = [event for event in counters
                if event.name == "perf.demo.cache"][-1]
        assert last.args == {"hits": 1, "misses": 1}

    def test_bridge_detached_after_tracing(self):
        with telemetry.tracing() as tracer:
            pass
        before = len(tracer.buffer)
        perf.record("demo.cache", hit=True)
        assert len(tracer.buffer) == before
