"""The chaos-matrix harness and its CLI surface."""

import json

from repro.chaos.harness import (
    SessionOutcome,
    SurvivalReport,
    default_workloads,
    run_chaos_matrix,
)
from repro.cli import APPS, main
from repro.session.policies import RetryPolicy


def _portal_workloads():
    return [("portal",) + APPS["portal"]]


class TestMatrix:
    def test_matrix_covers_profiles_times_seeds(self):
        report = run_chaos_matrix(["disabled", "default"], seeds=2,
                                  workloads=_portal_workloads())
        assert report.session_count == 4
        assert set(report.by_profile()) == {"disabled", "default"}
        stats = report.profile_stats("disabled")
        assert stats["sessions"] == 2
        assert stats["faults"] == 0
        assert stats["survival_rate"] == 1.0

    def test_matrix_is_deterministic(self):
        def run():
            return run_chaos_matrix(["default"], seeds=[0, 1],
                                    workloads=_portal_workloads()).to_dict()

        assert run() == run()

    def test_no_retry_mode_reports_casualties(self):
        crashy = run_chaos_matrix(
            ["renderer-crash"], seeds=4, workloads=_portal_workloads(),
            retry=RetryPolicy.none())
        assert not crashy.retry_enabled
        stats = crashy.profile_stats("renderer-crash")
        # At least one seed kills the un-healed session; the healed
        # variant of the same matrix survives everywhere.
        assert stats["survived"] < stats["sessions"]
        healed = run_chaos_matrix(
            ["renderer-crash"], seeds=4, workloads=_portal_workloads())
        assert healed.profile_stats("renderer-crash")["survived"] == 4

    def test_report_shape_is_jsonable(self):
        report = run_chaos_matrix(["default"], seeds=1,
                                  workloads=_portal_workloads())
        data = json.loads(json.dumps(report.to_dict()))
        assert data["sessions"] == 1
        (outcome,) = data["outcomes"]
        assert outcome["app"] == "portal"
        assert outcome["profile"] == "default"
        assert outcome["status"] in ("complete", "failed", "halted")
        assert set(report.summary_lines()[0].split()[:2]) == {"chaos",
                                                              "matrix:"}

    def test_default_workloads_mirror_the_cli_registry(self):
        names = [w[0] for w in default_workloads()]
        assert names == sorted(APPS)


class TestOutcomeScoring:
    class _FakeReport:
        def __init__(self, halted=False, failed=0):
            self.halted = halted
            self.failed_count = failed
            self.trace = [None] * 3
            self.replayed_count = 3 - failed
            self.retry_count = 1
            self.recoveries = 0
            self.halt_reason = "boom" if halted else None

    def _outcome(self, **kwargs):
        return SessionOutcome("app", "p", 0, self._FakeReport(**kwargs),
                              {"total_faults": 2, "faults": {}})

    def test_complete_beats_failed_beats_halted(self):
        assert self._outcome().status == SessionOutcome.COMPLETE
        assert self._outcome().survived
        assert self._outcome(failed=1).status == SessionOutcome.FAILED
        assert self._outcome(halted=True).status == SessionOutcome.HALTED
        assert not self._outcome(halted=True).survived

    def test_survival_rate_of_empty_profile_is_none(self):
        report = SurvivalReport(retry_enabled=True)
        assert report.profile_stats("ghost")["survival_rate"] is None


class TestCli:
    def test_chaos_subcommand_quick_mode(self, tmp_path, capsys):
        out_path = tmp_path / "survival.json"
        code = main(["chaos", "--profile", "disabled", "--seeds", "2",
                     "--quick", "--out", str(out_path)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "chaos matrix: 2 session(s)" in printed
        data = json.loads(out_path.read_text())
        assert data["sessions"] == 2
        assert data["survived"] == 2
        assert data["profiles"]["disabled"]["faults"] == 0

    def test_chaos_subcommand_accepts_underscore_profiles(self, capsys):
        code = main(["chaos", "--profile", "flaky_net", "--seeds", "1",
                     "--app", "portal"])
        assert code == 0
        assert "flaky-net" in capsys.readouterr().out
