"""Zero-cost disabled chaos: inactive layers never reach the injector.

An installed-but-quiet injector used to cost every injection point a
rate lookup per call — per IPC message, per reflow. Layer liveness is
now precomputed on the injector, and every site guards on the plain
boolean, so a zeroed layer costs one attribute check and draws no
randomness, bumps no counters, and records no decisions. These tests
pin the *structural* half of that claim; ``benchmarks/bench_chaos.py``
asserts the time cost.
"""

from repro import chaos, perf
from repro.chaos import ChaosInjector, FaultProfile
from repro.session.engine import SessionEngine
from repro.session.policies import TimingPolicy
from tests.session.test_batch import factory, record_trace


def replay_under(profile, seed=7):
    trace = record_trace("zero-cost")
    browser = factory()
    with chaos.active(profile, seed=seed, clock=browser.clock) as injector:
        report = SessionEngine(
            browser, timing=TimingPolicy.no_wait()).run(trace)
    assert report.complete
    return injector


class TestLayerLiveness:
    def test_disabled_profile_has_no_live_layers(self):
        injector = ChaosInjector(FaultProfile.disabled())
        assert injector.live_layers == frozenset()
        assert not injector.ipc_active
        assert not injector.renderer_active
        assert not injector.net_active
        assert not injector.script_active
        assert not injector.layout_active
        assert not injector.layer_active("ipc")

    def test_default_profile_lights_every_layer(self):
        injector = ChaosInjector(FaultProfile.default())
        assert injector.live_layers == frozenset(
            ("ipc", "renderer", "net", "script", "layout"))
        assert injector.ipc_active and injector.layout_active

    def test_only_filters_liveness(self):
        injector = ChaosInjector(FaultProfile.default().only("net"))
        assert injector.live_layers == frozenset(("net",))
        assert injector.net_active
        assert not injector.ipc_active
        assert not injector.script_active


class TestDisabledReplayIsUntouched:
    def test_disabled_injector_is_never_consulted(self):
        injector = replay_under(FaultProfile.disabled())
        # Zero decisions: no site got past its liveness guard, so the
        # injector drew no randomness and logged nothing.
        assert injector.decisions == {}
        assert injector.records == []
        for layer in ("ipc", "renderer", "net", "script", "layout"):
            assert layer not in injector._streams

    def test_disabled_replay_bumps_no_chaos_perf_counters(self):
        before = perf.snapshot()
        replay_under(FaultProfile.disabled())
        after = perf.delta(before)
        assert not any(name.startswith("chaos.") for name in after)

    def test_inactive_layers_stay_dark_under_a_partial_profile(self):
        injector = replay_under(FaultProfile("layout-only",
                                             layout_jitter_rate=0.5))
        # Only the live layer was ever consulted; the four zeroed
        # layers paid their one-boolean guard and nothing else.
        assert set(injector.decisions) <= {"layout"}
        assert injector.decisions.get("layout", 0) > 0
        assert set(injector._streams) <= {"layout"}

    def test_disabled_run_matches_chaos_off_exactly(self):
        trace = record_trace("bitwise")

        def final_state(install_disabled):
            browser = factory()
            engine = SessionEngine(browser, timing=TimingPolicy.no_wait())
            if install_disabled:
                with chaos.active(FaultProfile.disabled(), seed=3,
                                  clock=browser.clock):
                    report = engine.run(trace)
            else:
                report = engine.run(trace)
            return ([r.status for r in report.results], report.final_url,
                    browser.clock.now())

        assert final_state(True) == final_state(False)
