"""FaultProfile composition, validation, and the bundled presets."""

import pytest

from repro.chaos import LAYERS, PROFILES, FaultProfile, get_profile


class TestValidation:
    def test_rates_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError, match="fetch_fail_rate"):
            FaultProfile(fetch_fail_rate=1.5)
        with pytest.raises(ValueError, match="ipc_drop_rate"):
            FaultProfile(ipc_drop_rate=-0.1)

    def test_inverted_magnitude_range_rejected(self):
        with pytest.raises(ValueError, match="ipc_delay_ms"):
            FaultProfile(ipc_delay_ms=(60.0, 5.0))
        with pytest.raises(ValueError, match="layout_jitter_px"):
            FaultProfile(layout_jitter_px=(-1.0, 4.0))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="gpu_melt_rate"):
            FaultProfile(gpu_melt_rate=0.5)

    def test_defaults_are_quiet(self):
        profile = FaultProfile()
        assert profile.quiet
        assert profile.active_layers() == []


class TestComposition:
    def test_replace_overrides_without_mutating(self):
        base = FaultProfile.default()
        louder = base.replace(fetch_fail_rate=0.9)
        assert louder.fetch_fail_rate == 0.9
        assert base.fetch_fail_rate != 0.9
        assert louder.ipc_drop_rate == base.ipc_drop_rate

    def test_only_zeroes_other_layers(self):
        netty = FaultProfile.default().only("net")
        assert netty.active_layers() == ["net"]
        assert netty.renderer_crash_rate == 0.0
        assert netty.fetch_fail_rate == FaultProfile.default().fetch_fail_rate

    def test_without_zeroes_named_layers(self):
        profile = FaultProfile.default().without("net", "renderer")
        assert "net" not in profile.active_layers()
        assert "renderer" not in profile.active_layers()
        assert "ipc" in profile.active_layers()

    def test_only_unknown_layer_rejected(self):
        with pytest.raises(ValueError, match="unknown layer"):
            FaultProfile.default().only("gpu")

    def test_scaled_multiplies_and_caps_rates(self):
        scaled = FaultProfile(fetch_fail_rate=0.2, script_error_rate=0.6
                              ).scaled(2.0)
        assert scaled.fetch_fail_rate == pytest.approx(0.4)
        assert scaled.script_error_rate == 1.0  # capped
        with pytest.raises(ValueError):
            scaled.scaled(-1)

    def test_scaled_leaves_magnitudes_alone(self):
        scaled = FaultProfile.default().scaled(3.0)
        assert scaled.ipc_delay_ms == FaultProfile.default().ipc_delay_ms

    def test_rate_lookup_tolerates_unknown_fields(self):
        assert FaultProfile.default().rate("no_such_rate") == 0.0

    def test_to_dict_is_jsonable(self):
        import json

        data = FaultProfile.flaky_net().to_dict()
        assert data["name"] == "flaky-net"
        assert data["fetch_fail_rate"] == 0.30
        assert data["fetch_latency_ms"] == [50.0, 500.0]
        json.dumps(data)


class TestPresets:
    def test_every_preset_constructs(self):
        for name in PROFILES:
            profile = get_profile(name)
            assert profile.name == name

    def test_disabled_is_quiet(self):
        assert get_profile("disabled").quiet

    def test_default_touches_every_browser_layer(self):
        # "worker" is farm-level (process kills in a batch pool), not
        # part of the in-browser background chaos.
        assert get_profile("default").active_layers() == [
            layer for layer in LAYERS if layer != "worker"]

    def test_farm_is_worker_only(self):
        assert get_profile("farm").active_layers() == ["worker"]
        assert get_profile("farm").worker_kill_rate > 0.0

    def test_flaky_net_is_net_only(self):
        assert get_profile("flaky-net").active_layers() == ["net"]

    def test_underscore_alias_accepted(self):
        assert get_profile("flaky_net").name == "flaky-net"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            get_profile("kernel-panic")

    def test_everything_outpaces_default(self):
        assert (get_profile("everything").fetch_fail_rate
                > get_profile("default").fetch_fail_rate)
