"""ChaosInjector: determinism, stream isolation, suppression, singleton."""

import pytest

from repro import chaos, telemetry
from repro.chaos import ChaosInjector, FaultProfile
from repro.chaos.injector import _stable_child_seed
from repro.telemetry.tracks import CHAOS_TRACK
from repro.util.clock import VirtualClock


def _exercise(injector, rounds=200):
    """Run a fixed consultation pattern across every layer."""
    for i in range(rounds):
        injector.fault("net", "fail", "fetch_fail_rate", detail="r%d" % i)
        injector.fault("renderer", "crash", "renderer_crash_rate")
        injector.fault("ipc", "delay", "ipc_delay_rate",
                       amount_field="ipc_delay_ms")
        injector.fault("script", "load_error", "script_error_rate")
        injector.fault("layout", "jitter", "layout_jitter_rate",
                       amount_field="layout_jitter_px")


class TestDeterminism:
    def test_same_profile_and_seed_byte_identical_schedules(self):
        profile = FaultProfile.default().scaled(4.0)
        one, two = ChaosInjector(profile, seed=42), ChaosInjector(profile,
                                                                  seed=42)
        _exercise(one)
        _exercise(two)
        assert one.total_faults > 0
        assert one.schedule_bytes() == two.schedule_bytes()
        assert one.summary() == two.summary()

    def test_different_seeds_diverge(self):
        profile = FaultProfile.default().scaled(4.0)
        one, two = ChaosInjector(profile, seed=1), ChaosInjector(profile,
                                                                 seed=2)
        _exercise(one)
        _exercise(two)
        assert one.schedule_bytes() != two.schedule_bytes()

    def test_child_seed_is_process_independent(self):
        # Unlike hash(str), the derivation must not depend on the
        # per-process hash salt — pin exact values.
        assert _stable_child_seed(0, "chaos.net") \
            == _stable_child_seed(0, "chaos.net")
        assert _stable_child_seed(7, "chaos.net") \
            != _stable_child_seed(7, "chaos.ipc")
        assert _stable_child_seed(7, "chaos.net") == \
            (7 * 1000003 + __import__("zlib").crc32(b"chaos.net")) & 0x7FFFFFFF

    def test_layers_have_private_streams(self):
        # Disabling one layer must not move another layer's schedule.
        noisy = FaultProfile.default().scaled(4.0)
        net_only = noisy.only("net")
        both = ChaosInjector(noisy, seed=9)
        alone = ChaosInjector(net_only, seed=9)
        _exercise(both)
        _exercise(alone)
        net = [r.to_dict() for r in both.records if r.layer == "net"]
        net_alone = [r.to_dict() for r in alone.records]
        for record, record_alone in zip(net, net_alone):
            record.pop("seq")
            record_alone.pop("seq")
        assert net == net_alone

    def test_magnitudes_drawn_from_profile_range(self):
        profile = FaultProfile(ipc_delay_rate=1.0, ipc_delay_ms=(10.0, 20.0))
        injector = ChaosInjector(profile, seed=3)
        for _ in range(50):
            amount = injector.fault("ipc", "delay", "ipc_delay_rate",
                                    amount_field="ipc_delay_ms")
            assert 10.0 <= amount <= 20.0

    def test_records_stamped_with_virtual_time(self):
        clock = VirtualClock()
        clock.advance(123.0)
        injector = ChaosInjector(FaultProfile(fetch_fail_rate=1.0),
                                 seed=0, clock=clock)
        injector.fault("net", "fail", "fetch_fail_rate")
        assert injector.records[0].vt_ms == 123.0


class TestShortCircuits:
    def test_zero_rate_consumes_no_randomness(self):
        # A quiet field must not advance the layer stream: the noisy
        # fields' schedule is identical whether or not the quiet field
        # is consulted in between.
        profile = FaultProfile(fetch_fail_rate=0.5)
        plain = ChaosInjector(profile, seed=5)
        interleaved = ChaosInjector(profile, seed=5)
        for _ in range(100):
            plain.fault("net", "fail", "fetch_fail_rate")
            interleaved.fault("net", "fail", "fetch_fail_rate")
            interleaved.fault("net", "latency", "fetch_latency_rate")
        assert plain.schedule_bytes() == interleaved.schedule_bytes()
        assert "net" in plain.decisions

    def test_suppression_freezes_the_schedule(self):
        profile = FaultProfile(fetch_fail_rate=1.0)
        injector = ChaosInjector(profile, seed=0)
        injector.fault("net", "fail", "fetch_fail_rate")
        before = injector.schedule_bytes()
        with injector.suppressed():
            assert injector.is_suppressed
            assert injector.fault("net", "fail", "fetch_fail_rate") is None
        assert injector.schedule_bytes() == before
        # The stream did not move either: the post-suppression draw
        # matches a run that never suppressed.
        control = ChaosInjector(profile, seed=0)
        control.fault("net", "fail", "fetch_fail_rate")
        control.fault("net", "fail", "fetch_fail_rate")
        injector.fault("net", "fail", "fetch_fail_rate")
        assert injector.schedule_bytes() == control.schedule_bytes()

    def test_suppression_nests(self):
        injector = ChaosInjector(FaultProfile(fetch_fail_rate=1.0))
        with injector.suppressed():
            with injector.suppressed():
                pass
            assert injector.is_suppressed
        assert not injector.is_suppressed


class TestSingleton:
    def test_off_by_default(self):
        assert chaos.current() is None
        assert not chaos.enabled()

    def test_active_installs_and_uninstalls(self):
        with chaos.active(FaultProfile.disabled(), seed=1) as injector:
            assert chaos.current() is injector
            assert chaos.enabled()
        assert chaos.current() is None

    def test_nested_install_refused(self):
        with chaos.active(FaultProfile.disabled()):
            with pytest.raises(RuntimeError, match="already installed"):
                chaos.install(ChaosInjector(FaultProfile.disabled()))
        assert chaos.current() is None

    def test_active_accepts_prebuilt_injector(self):
        mine = ChaosInjector(FaultProfile.disabled(), seed=9)
        with chaos.active(None, injector=mine) as injector:
            assert injector is mine


class TestObservability:
    def test_fired_faults_emit_telemetry_instants(self):
        profile = FaultProfile(fetch_fail_rate=1.0)
        with telemetry.tracing() as tracer:
            injector = ChaosInjector(profile, seed=0)
            injector.fault("net", "fail", "fetch_fail_rate", detail="x")
        instants = [e for e in tracer.buffer if e.name == "chaos.net.fail"]
        assert len(instants) == 1
        assert (instants[0].pid, instants[0].tid) == CHAOS_TRACK
        assert instants[0].args["detail"] == "x"

    def test_decisions_recorded_in_perf_counters(self):
        from repro import perf

        hits_before, misses_before = perf.stats.counter("chaos.net")
        injector = ChaosInjector(FaultProfile(fetch_fail_rate=1.0,
                                              fetch_latency_rate=1e-9))
        injector.fault("net", "fail", "fetch_fail_rate")
        injector.fault("net", "latency", "fetch_latency_rate")
        hits, misses = perf.stats.counter("chaos.net")
        assert hits == hits_before + 1       # the fired fault
        assert misses == misses_before + 1   # the consulted-but-quiet one

    def test_counts_by_layer_rolls_up(self):
        injector = ChaosInjector(FaultProfile(fetch_fail_rate=1.0,
                                              script_error_rate=1.0))
        injector.fault("net", "fail", "fetch_fail_rate")
        injector.fault("net", "fail", "fetch_fail_rate")
        injector.fault("script", "load_error", "script_error_rate")
        assert injector.counts_by_layer() == {
            "net": {"fail": 2}, "script": {"load_error": 1}}
