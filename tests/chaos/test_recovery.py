"""Self-healing replay under injected faults.

The contrast the ISSUE pins: with retries disabled the session dies
under renderer crashes and flaky networking; with the default
RetryPolicy the same (profile, seed) completes, recovering crashed
tabs from the replay checkpoint.
"""

from repro import chaos
from repro.chaos import FaultProfile
from repro.session.engine import SessionEngine
from repro.session.events import SessionEvent, SessionObserver
from repro.session.policies import RetryPolicy, TimingPolicy
from tests.session.test_batch import factory, record_trace

CRASHY = FaultProfile(renderer_crash_rate=0.25)
FLAKY = FaultProfile(fetch_fail_rate=0.4)

# Seeds picked (and pinned — schedules are stable across processes) so
# each scenario actually fires the faults it is about.
CRASH_SEED = 1    # two renderer crashes along the session
NET_BEGIN_SEED = 6   # the initial navigation fails, then commands do
NET_COMMAND_SEED = 10  # command-triggered navigations fail


def _replay(trace, profile, seed, retry):
    browser = factory()
    engine = SessionEngine(browser, timing=TimingPolicy.no_wait(),
                           retry=retry)
    with chaos.active(profile, seed=seed, clock=browser.clock) as injector:
        report = engine.run(trace)
    return report, injector


class RecordingObserver(SessionObserver):
    def __init__(self):
        self.kinds = []

    def on_event(self, event):
        self.kinds.append(event.kind)


class TestCrashRecovery:
    def test_without_retries_the_session_dies(self):
        trace = record_trace("crash-none")
        report, injector = _replay(trace, CRASHY, CRASH_SEED,
                                   RetryPolicy.none())
        assert injector.total_faults > 0
        assert not report.complete
        assert report.halted
        assert report.recoveries == 0

    def test_with_retries_the_session_completes(self):
        trace = record_trace("crash-heal")
        report, injector = _replay(trace, CRASHY, CRASH_SEED,
                                   RetryPolicy.default())
        assert injector.total_faults == 2
        assert report.complete, report.summary()
        assert report.recoveries == 2
        assert report.retry_count == 2

    def test_recovery_emits_the_event_sequence(self):
        trace = record_trace("crash-events")
        browser = factory()
        observer = RecordingObserver()
        engine = SessionEngine(browser, timing=TimingPolicy.no_wait(),
                               retry=RetryPolicy.default(),
                               observers=[observer])
        with chaos.active(CRASHY, seed=CRASH_SEED, clock=browser.clock):
            report = engine.run(trace)
        assert report.complete
        kinds = observer.kinds
        assert SessionEvent.RETRYING in kinds
        assert SessionEvent.RECOVERING in kinds
        assert SessionEvent.RECOVERED in kinds
        # Recovery is announced before it is celebrated.
        assert kinds.index(SessionEvent.RECOVERING) \
            < kinds.index(SessionEvent.RECOVERED)

    def test_crash_recovery_optional_even_with_retries(self):
        trace = record_trace("crash-norecover")
        retry = RetryPolicy(max_attempts=4, recover_crashes=False)
        report, _ = _replay(trace, CRASHY, CRASH_SEED, retry)
        assert not report.complete

    def test_recovered_page_state_is_rebuilt(self):
        # The checkpoint replays the committed commands, so text typed
        # before the crash survives into the final page.
        trace = record_trace("crash-state")
        report, _ = _replay(trace, CRASHY, CRASH_SEED,
                            RetryPolicy.default())
        assert report.complete
        assert report.final_url is not None
        assert "who=cra" in report.final_url


class TestFlakyNetRecovery:
    def test_initial_navigation_retries(self):
        trace = record_trace("net-begin")
        dead, _ = _replay(trace, FLAKY, NET_BEGIN_SEED, RetryPolicy.none())
        assert dead.halted  # begin() failed outright
        healed, injector = _replay(trace, FLAKY, NET_BEGIN_SEED,
                                   RetryPolicy.default())
        assert injector.total_faults > 0
        assert healed.complete, healed.summary()

    def test_command_navigation_retries(self):
        trace = record_trace("net-cmd")
        dead, _ = _replay(trace, FLAKY, NET_COMMAND_SEED,
                          RetryPolicy.none())
        assert not dead.complete
        healed, _ = _replay(trace, FLAKY, NET_COMMAND_SEED,
                            RetryPolicy.default())
        assert healed.complete
        assert healed.retry_count == 2
        # Retries land on the results of the commands that needed them.
        retried = [r for r in healed.results if r.retries]
        assert retried and all(r.succeeded for r in retried)


class TestReplayDeterminism:
    def test_same_profile_seed_same_report_and_schedule(self):
        trace = record_trace("deterministic")
        one_report, one_injector = _replay(trace, CRASHY, CRASH_SEED,
                                           RetryPolicy.default())
        two_report, two_injector = _replay(trace, CRASHY, CRASH_SEED,
                                           RetryPolicy.default())
        assert one_injector.schedule_bytes() == two_injector.schedule_bytes()
        assert one_report.to_dict() == two_report.to_dict()

    def test_different_seed_different_schedule(self):
        trace = record_trace("divergent")
        _, one = _replay(trace, CRASHY, 1, RetryPolicy.default())
        _, two = _replay(trace, CRASHY, 5, RetryPolicy.default())
        assert one.schedule_bytes() != two.schedule_bytes()


class TestDisabledEquivalence:
    def test_disabled_profile_changes_nothing(self):
        trace = record_trace("equivalent")

        def run(with_chaos):
            browser = factory()
            engine = SessionEngine(browser, timing=TimingPolicy.no_wait())
            if with_chaos:
                with chaos.active(FaultProfile.disabled(),
                                  clock=browser.clock) as injector:
                    report = engine.run(trace)
                assert injector.total_faults == 0
                assert injector.decisions == {}
            else:
                report = engine.run(trace)
            return report, browser.clock.now()

        plain_report, plain_clock = run(with_chaos=False)
        chaotic_report, chaotic_clock = run(with_chaos=True)
        assert chaotic_report.to_dict() == plain_report.to_dict()
        assert chaotic_clock == plain_clock
