"""Per-layer injection points: what each fault actually does.

Every test drives the real substrate (browser, IPC channel, network,
scripts, layout) with a profile that forces the one fault under test to
fire, and checks the observable consequence — not the injector's
bookkeeping, which tests/chaos/test_injector.py covers.
"""

import pytest

from repro import chaos
from repro.chaos import ChaosInjector, FaultProfile
from repro.browser.ipc import InputMessage, IpcChannel
from repro.events.event import MouseEvent
from repro.net.server import Network
from repro.util.clock import VirtualClock
from repro.util.errors import (
    InjectedScriptError,
    JSReferenceError,
    NavigationError,
    NetworkFaultError,
    NetworkTimeoutError,
    RendererCrashError,
    RendererHangError,
    TRANSIENT,
    classify,
)
from repro.util.event_loop import EventLoop
from tests.browser.helpers import build_browser, url


def _message(kind=InputMessage.MOUSE):
    return InputMessage(kind, MouseEvent("mousepress", client_x=1,
                                         client_y=1, timestamp=0.0))


def _channel(clock):
    channel = IpcChannel(clock=clock)
    delivered = []
    channel.connect(delivered.append)
    return channel, delivered


class TestIpcInjection:
    def test_drop_discards_the_message(self):
        clock = VirtualClock()
        channel, delivered = _channel(clock)
        with chaos.active(FaultProfile(ipc_drop_rate=1.0), clock=clock):
            channel.send(_message())
            assert channel.pump() == 0
        assert delivered == []
        assert channel.delivered_count == 0

    def test_delay_advances_the_channel_clock(self):
        clock = VirtualClock()
        channel, delivered = _channel(clock)
        profile = FaultProfile(ipc_delay_rate=1.0, ipc_delay_ms=(30.0, 30.0))
        with chaos.active(profile, clock=clock):
            channel.send_and_pump(_message())
        assert len(delivered) == 1
        assert clock.now() == 30.0

    def test_reorder_swaps_the_head_behind_the_tail(self):
        clock = VirtualClock()
        channel, delivered = _channel(clock)
        first, second = _message(), _message(InputMessage.KEY)
        # Pre-marking the tail keeps it in place, so only the head's
        # reorder fires and the swap is observable.
        second.chaos_deferred = True
        with chaos.active(FaultProfile(ipc_reorder_rate=1.0), clock=clock):
            channel.send(first)
            channel.send(second)
            assert channel.pump() == 2
        assert delivered == [second, first]

    def test_reorder_at_full_rate_still_terminates(self):
        clock = VirtualClock()
        channel, delivered = _channel(clock)
        messages = [_message() for _ in range(5)]
        with chaos.active(FaultProfile(ipc_reorder_rate=1.0), clock=clock):
            for message in messages:
                channel.send(message)
            # Every message defers exactly once (a full rotation), so
            # the pump cannot loop forever.
            assert channel.pump() == 5
        assert len(delivered) == 5
        assert all(m.chaos_deferred for m in messages)

    def test_last_message_cannot_be_reordered(self):
        clock = VirtualClock()
        channel, delivered = _channel(clock)
        lone = _message()
        with chaos.active(FaultProfile(ipc_reorder_rate=1.0), clock=clock):
            channel.send_and_pump(lone)
        assert delivered == [lone]


class TestRendererInjection:
    def test_injected_crash_raises_and_marks_renderer_dead(self):
        browser = build_browser(developer_mode=True)
        tab = browser.new_tab(url("/"))
        renderer = tab.renderer
        with chaos.active(FaultProfile(renderer_crash_rate=1.0),
                          clock=browser.clock):
            with pytest.raises(RendererCrashError) as info:
                tab.click(10, 10)
        assert renderer.crashed
        assert classify(info.value) == TRANSIENT
        # A dead renderer refuses further input even with chaos off.
        with pytest.raises(RendererCrashError):
            tab.click(10, 10)

    def test_injected_hang_advances_clock_then_raises(self):
        browser = build_browser(developer_mode=True)
        tab = browser.new_tab(url("/"))
        profile = FaultProfile(renderer_hang_rate=1.0,
                               renderer_hang_ms=(200.0, 200.0))
        before = browser.clock.now()
        with chaos.active(profile, clock=browser.clock):
            with pytest.raises(RendererHangError):
                tab.click(10, 10)
        assert browser.clock.now() == before + 200.0
        assert not tab.renderer.crashed

    def test_reload_revives_a_crashed_tab(self):
        browser = build_browser(developer_mode=True)
        tab = browser.new_tab(url("/"))
        with chaos.active(FaultProfile(renderer_crash_rate=1.0),
                          clock=browser.clock):
            with pytest.raises(RendererCrashError):
                tab.click(10, 10)
        tab.navigate(url("/"), record_history=False)
        assert not tab.renderer.crashed
        tab.click_element(tab.find('//div[@id="box"]'))
        assert tab.renderer.engine.window.env.clicks == ["box"]


class TestNetworkInjection:
    def test_injected_fetch_failure_is_transient(self):
        browser = build_browser()
        with chaos.active(FaultProfile(fetch_fail_rate=1.0),
                          clock=browser.clock):
            with pytest.raises(NetworkFaultError) as info:
                browser.network.fetch(url("/"))
        assert classify(info.value) == TRANSIENT

    def test_navigation_wrap_preserves_transience(self):
        browser = build_browser()
        tab = browser.new_tab(url("/"))
        with chaos.active(FaultProfile(fetch_fail_rate=1.0),
                          clock=browser.clock):
            with pytest.raises(NavigationError) as info:
                tab.navigate(url("/about"))
        assert classify(info.value) == TRANSIENT

    def test_latency_fault_slows_the_fetch(self):
        browser = build_browser(latency_ms=10.0)
        profile = FaultProfile(fetch_latency_rate=1.0,
                               fetch_latency_ms=(500.0, 500.0))
        with chaos.active(profile, clock=browser.clock):
            browser.network.fetch(url("/"))
        assert browser.clock.now() >= 510.0

    def test_timeout_classifies_and_counts(self):
        loop = EventLoop(VirtualClock())
        network = Network(loop, default_latency_ms=10.0, timeout_ms=100.0)
        profile = FaultProfile(fetch_latency_rate=1.0,
                               fetch_latency_ms=(1000.0, 1000.0))
        with chaos.active(profile, clock=loop.clock):
            with pytest.raises(NetworkTimeoutError) as info:
                network.fetch("http://test.example/")
        assert classify(info.value) == TRANSIENT
        assert network.timeout_count == 1
        # The failed attempt still cost the timeout budget, not the
        # full injected latency.
        assert loop.clock.now() == 100.0

    def test_retries_with_backoff_then_gives_up(self):
        loop = EventLoop(VirtualClock())
        network = Network(loop, default_latency_ms=10.0, retries=2)
        with chaos.active(FaultProfile(fetch_fail_rate=1.0),
                          clock=loop.clock):
            with pytest.raises(NetworkFaultError):
                network.fetch("http://test.example/")
        assert network.retry_count == 2
        # Two backoff waits on top of three failed-attempt latencies.
        assert loop.clock.now() > 3 * 10.0

    def test_retry_backoff_is_seed_deterministic(self):
        def run():
            loop = EventLoop(VirtualClock())
            network = Network(loop, default_latency_ms=10.0, retries=3,
                              retry_jitter_seed=11)
            with chaos.active(FaultProfile(fetch_fail_rate=1.0),
                              clock=loop.clock):
                with pytest.raises(NetworkFaultError):
                    network.fetch("http://test.example/")
            return loop.clock.now()

        assert run() == run()

    def test_slow_body_scales_with_response_size(self):
        browser = build_browser(latency_ms=0.0)
        profile = FaultProfile(fetch_slow_body_rate=1.0,
                               fetch_slow_body_ms_per_kb=(40.0, 40.0))
        with chaos.active(profile, clock=browser.clock):
            browser.network.fetch(url("/"))
        assert browser.clock.now() >= 40.0


class TestScriptInjection:
    def test_load_error_lands_on_console_and_skips_script(self):
        browser = build_browser(developer_mode=True)
        with chaos.active(FaultProfile(script_error_rate=1.0),
                          clock=browser.clock):
            tab = browser.new_tab(url("/"))
        window = tab.renderer.engine.window
        with pytest.raises(JSReferenceError):
            window.env.loaded  # the page script never ran
        assert any(isinstance(getattr(e, "cause", None), InjectedScriptError)
                   or isinstance(e, InjectedScriptError)
                   for e in window.console.errors)

    def test_timer_error_lands_on_console(self):
        browser = build_browser(developer_mode=True)
        tab = browser.new_tab(url("/"))
        window = tab.renderer.engine.window
        fired = []
        window.set_timeout(5.0, lambda: fired.append(True))
        with chaos.active(FaultProfile(script_error_rate=1.0),
                          clock=browser.clock):
            tab.wait(10.0)
        assert fired == []
        assert window.console.has_errors

    def test_failed_script_navigation_is_contained(self):
        browser = build_browser(developer_mode=True)
        tab = browser.new_tab(url("/"))
        window = tab.renderer.engine.window
        with chaos.active(FaultProfile(fetch_fail_rate=1.0),
                          clock=browser.clock):
            window.navigate(url("/about"))
        # The page stayed put; the failure is a page error, not a crash.
        assert tab.url == url("/")
        assert window.console.has_errors


class TestLayoutInjection:
    def test_jitter_translates_boxes(self):
        quiet = build_browser(developer_mode=True)
        tab = quiet.new_tab(url("/"))
        baseline = tab.engine.layout.click_point(
            tab.find('//span[@id="start"]'))

        shaky = build_browser(developer_mode=True)
        profile = FaultProfile(layout_jitter_rate=1.0,
                               layout_jitter_px=(4.0, 4.0))
        with chaos.active(profile, seed=1, clock=shaky.clock):
            tab2 = shaky.new_tab(url("/"))
            jittered = tab2.engine.layout.click_point(
                tab2.find('//span[@id="start"]'))
        assert jittered != baseline
        # Bounded drift: jitter perturbs coordinates, it does not
        # teleport the page.
        assert abs(jittered[0] - baseline[0]) <= 8.0
        assert abs(jittered[1] - baseline[1]) <= 8.0


class TestInjectorScoping:
    def test_faults_need_an_installed_injector(self):
        # Constructing an injector without installing it leaves the
        # substrate untouched.
        injector = ChaosInjector(FaultProfile(ipc_drop_rate=1.0))
        clock = VirtualClock()
        channel, delivered = _channel(clock)
        channel.send_and_pump(_message())
        assert len(delivered) == 1
        assert injector.total_faults == 0
