"""In-process sharded replay and the serial/sharded/pooled equivalence.

The scale-out story only holds if every backend is a pure throughput
knob: same per-command results, same counters, same merged report shape.
These tests pin that matrix — serial vs sharded exactly (shared
process, shared caches), pooled up to cache *topology* (per-process
caches split hits/misses differently, but total lookups per cache are
invariant).
"""

import json
import os

import pytest

from repro.core.commands import TypeCommand
from repro.core.trace import WarrTrace
from repro.session.batch import BatchRunner
from repro.session.policies import FailurePolicy, TimingPolicy
from repro.session.shard import ShardedRunner
from tests.browser.helpers import url
from tests.session.test_batch import factory, record_trace


def run_serial(traces, trace_dir=None, **kwargs):
    return BatchRunner(factory, timing=TimingPolicy.no_wait(),
                       **kwargs).run(traces, trace_dir=trace_dir)


def run_sharded(traces, shards=3, trace_dir=None, **kwargs):
    return BatchRunner(factory, timing=TimingPolicy.no_wait(),
                       shards=shards, **kwargs).run(traces,
                                                    trace_dir=trace_dir)


def statuses(batch):
    return [[r.status for r in run.report.results] for run in batch.runs]


class TestShardedRunner:
    def test_sharded_matches_serial_exactly(self):
        traces = [record_trace("session-%d" % i) for i in range(5)]
        serial = run_serial(traces)
        sharded = run_sharded(traces, shards=3)
        assert sharded.complete
        assert sharded.summary() == serial.summary()
        assert [run.label for run in sharded.runs] \
            == [run.label for run in serial.runs]
        assert statuses(sharded) == statuses(serial)
        for mine, theirs in zip(sharded.runs, serial.runs):
            assert mine.report.final_url == theirs.report.final_url
            assert mine.report.recoveries == theirs.report.recoveries

    def test_shards_beyond_trace_count_are_harmless(self):
        traces = [record_trace("t%d" % i) for i in range(2)]
        batch = run_sharded(traces, shards=16)
        assert batch.complete
        assert batch.trace_count == 2

    def test_single_shard_is_the_serial_path(self):
        traces = [record_trace("solo")]
        assert run_sharded(traces, shards=1).summary() \
            == run_serial(traces).summary()

    def test_results_come_back_in_submission_order(self):
        # Interleaving must not reorder the report: traces of very
        # different lengths finish out of order internally.
        short = record_trace("short")
        long_trace = WarrTrace(
            start_url=short.start_url, label="long",
            commands=list(short) * 6)
        batch = run_sharded([long_trace, short, short], shards=3)
        assert [run.label for run in batch.runs] \
            == ["long", "short", "short-2"]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(factory, shards=0)
        with pytest.raises(ValueError):
            ShardedRunner(factory, shards=0)

    def test_workers_and_shards_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="alternative scale-out"):
            BatchRunner(factory, workers=2, shards=2)

    def test_failures_stay_isolated_per_shard(self):
        good = record_trace("good")
        bad = WarrTrace(start_url=url("/"), label="bad", commands=[
            TypeCommand("//video", "x", 88)])
        batch = run_sharded([bad, good, good], shards=2)
        assert batch.complete_count == 2
        assert [run.label for run in batch.failures()] == ["bad"]

    def test_halt_policy_stops_admission_but_drains_in_flight(self):
        bad = WarrTrace(start_url=url("/"), label="bad", commands=[
            TypeCommand("//video", "x", 88)])
        goods = [record_trace("g%d" % i) for i in range(4)]
        batch = run_sharded([bad] + goods, shards=2,
                            failure=FailurePolicy.halt_on_failure())
        serial = run_serial([bad] + goods,
                            failure=FailurePolicy.halt_on_failure())
        # Serial stops after the halting trace; sharded also drains the
        # one session already admitted alongside it, but never admits
        # the rest of the queue.
        assert serial.trace_count == 1
        assert 1 <= batch.trace_count <= 2
        assert "bad" in [run.label for run in batch.runs]


class TestPerSessionAccounting:
    def test_batch_perf_counters_equal_serial(self):
        # Shared process, shared caches: the batch-level roll-up must be
        # *identical* to serial, not merely equivalent.
        traces = [record_trace("p%d" % i) for i in range(4)]
        assert run_sharded(traces, shards=2).perf_counters \
            == run_serial(traces).perf_counters

    def test_per_session_counters_attribute_to_the_right_session(self):
        # Every session's counter delta must cover its own lookups:
        # sharded totals per trace sum to the same grand total serial
        # reports, and no session reports an empty delta.
        traces = [record_trace("a%d" % i) for i in range(3)]
        serial = run_serial(traces)
        sharded = run_sharded(traces, shards=3)

        def totals(batch):
            out = {}
            for run in batch.runs:
                for name, counts in run.report.perf_counters.items():
                    hits, misses = out.get(name, (0, 0))
                    out[name] = (hits + counts["hits"],
                                 misses + counts["misses"])
            return out

        assert totals(sharded) == totals(serial)
        for run in sharded.runs:
            assert run.report.perf_counters, \
                "session %s lost its counter attribution" % run.label


class TestShardedTelemetry:
    def test_trace_dir_writes_per_session_and_merged_files(self, tmp_path):
        traces = [record_trace("alpha"), record_trace("beta")]
        run_sharded(traces, shards=2, trace_dir=str(tmp_path))
        names = sorted(os.listdir(str(tmp_path)))
        assert names == ["alpha.trace.json", "batch.trace.json",
                         "beta.trace.json"]
        for name in names:
            with open(os.path.join(str(tmp_path), name)) as handle:
                data = json.load(handle)
            assert data["traceEvents"], name

    def test_per_session_slices_partition_the_merged_timeline(self, tmp_path):
        traces = [record_trace("one"), record_trace("two")]
        run_sharded(traces, shards=2, trace_dir=str(tmp_path))

        def load(name):
            with open(os.path.join(str(tmp_path), name)) as handle:
                return [e for e in json.load(handle)["traceEvents"]
                        if e.get("ph") != "M"]

        merged = load("batch.trace.json")
        slices = load("one.trace.json") + load("two.trace.json")
        assert len(merged) == len(slices)


class TestEquivalenceMatrix:
    def test_serial_sharded_pooled_agree(self):
        traces = [record_trace("m%d" % i) for i in range(4)]
        serial = run_serial(traces)
        sharded = run_sharded(traces, shards=2)
        pooled = BatchRunner(factory, timing=TimingPolicy.no_wait(),
                             workers=2).run(traces)
        assert serial.summary() == sharded.summary() == pooled.summary()
        assert statuses(serial) == statuses(sharded) == statuses(pooled)
        for a, b, c in zip(serial.runs, sharded.runs, pooled.runs):
            assert a.report.final_url == b.report.final_url \
                == c.report.final_url
            assert a.report.recoveries == b.report.recoveries \
                == c.report.recoveries
        # Caches are shared in-process, per-process in the pool — so
        # counters match exactly for sharded, and up to lookup totals
        # (hits + misses per cache) for pooled.
        assert sharded.perf_counters == serial.perf_counters
        assert set(pooled.perf_counters) == set(serial.perf_counters)
        for name, counts in serial.perf_counters.items():
            theirs = pooled.perf_counters[name]
            assert theirs["hits"] + theirs["misses"] \
                == counts["hits"] + counts["misses"], name
