"""Tape determinism: record → playback equivalence across the stack.

The hermeticity acceptance property: a session recorded to tape replays
in PLAYBACK mode with *zero* live requests — no application servers
registered at all — and produces a ReplayReport equivalent to the live
run. Plus: playback-under-chaos equivalence via the stamped
``(profile, seed)``, and tape-driven batch runs agreeing across the
serial, sharded, and pooled backends.
"""

import pytest

from repro import chaos
from repro.chaos.profile import get_profile
from repro.cli import APPS, batch_browser_factory
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.net.transport import TapeConfig
from repro.session.batch import BatchRunner


def make_trace(app_name):
    app_class, session, start_url = APPS[app_name]
    browser, _ = make_app_browser(app_name)
    recorder = WarrRecorder().attach(browser)
    recorder.begin(start_url, label="%s tape test" % app_name)
    session(browser)
    recorder.detach()
    return recorder.trace


def make_app_browser(app_name, client_only=False):
    from repro.apps.framework import make_browser

    app_class, _, _ = APPS[app_name]
    return make_browser([app_class], seed=0, developer_mode=True,
                        client_only=client_only)


def replay(app_name, trace, tape=None, client_only=False):
    """One replay; returns (report, finished TapeSession or None)."""
    browser, _ = make_app_browser(app_name, client_only=client_only)
    session = tape.attach(browser.network) if tape is not None else None
    replayer = WarrReplayer(browser, timing=TimingMode.no_wait())
    try:
        report = replayer.replay(trace)
    finally:
        if session is not None:
            session.finish()
    return report, session


def report_key(report):
    """The comparable surface of a report.

    Full perf_counters are excluded on purpose: playback adds a
    ``net.tape`` counter that live runs cannot have.
    """
    return {
        "results": [(r.command.to_line(), r.status, r.retries)
                    for r in report.results],
        "final_url": report.final_url,
        "page_errors": [str(e) for e in report.page_errors],
        "halted": report.halted,
        "recoveries": report.recoveries,
        "net_fidelity": dict(report.net_fidelity),
    }


class TestRecordPlaybackEquivalence:
    @pytest.mark.parametrize("app_name", ["dashboard", "gmail"])
    def test_playback_report_matches_live(self, app_name, tmp_path):
        trace = make_trace(app_name)
        path = str(tmp_path / ("%s.tape" % app_name))

        live_report, record_session = replay(
            app_name, trace, tape=TapeConfig.record(path))
        assert len(record_session.tape.entries) > 0

        playback_report, playback_session = replay(
            app_name, trace, tape=TapeConfig.playback(path),
            client_only=True)

        assert report_key(playback_report) == report_key(live_report)
        assert playback_report.net_fidelity["tape_misses"] == 0

    @pytest.mark.parametrize("app_name", ["dashboard", "gmail"])
    def test_playback_is_hermetic(self, app_name, tmp_path):
        """Zero live requests: no servers registered, every response
        from tape, and the displaced live transport never performs."""
        trace = make_trace(app_name)
        path = str(tmp_path / "run.tape")
        replay(app_name, trace, tape=TapeConfig.record(path))

        browser, _ = make_app_browser(app_name, client_only=True)
        assert browser.network._servers == {}  # truly no app zoo
        session = TapeConfig.playback(path).attach(browser.network)
        report = WarrReplayer(
            browser, timing=TimingMode.no_wait()).replay(trace)
        session.finish()
        assert session.previous.performed == 0
        assert session.transport.hits > 0
        assert session.transport.misses == 0
        assert report.complete


class TestPlaybackUnderChaos:
    def test_stamped_profile_and_seed_replay_identically(self, tmp_path):
        """A tape recorded under chaos carries (profile, seed); playing
        it back under the same injector reproduces the same report —
        fault draws land on the same requests in the same order."""
        app_name = "dashboard"
        trace = make_trace(app_name)
        path = str(tmp_path / "chaotic.tape")
        profile = get_profile("flaky_net")

        browser, _ = make_app_browser(app_name)
        session = TapeConfig.record(path).attach(browser.network)
        with chaos.active(profile, seed=3, clock=browser.clock):
            live_report = WarrReplayer(
                browser, timing=TimingMode.no_wait()).replay(trace)
        tape = session.finish()
        assert tape.chaos_profile == profile.name
        assert tape.chaos_seed == 3

        browser, _ = make_app_browser(app_name, client_only=True)
        session = TapeConfig.playback(path).attach(browser.network)
        with chaos.active(get_profile(tape.chaos_profile),
                          seed=tape.chaos_seed, clock=browser.clock):
            playback_report = WarrReplayer(
                browser, timing=TimingMode.no_wait()).replay(trace)
        session.finish()

        assert report_key(playback_report) == report_key(live_report)

    def test_chaos_stamp_absent_without_injector(self, tmp_path):
        path = str(tmp_path / "calm.tape")
        trace = make_trace("dashboard")
        _, session = replay("dashboard", trace,
                            tape=TapeConfig.record(path))
        assert session.tape.chaos_profile is None
        assert session.tape.chaos_seed is None


class TestTapeBatchBackends:
    def record_tapes(self, trace, tmp_path):
        tape_dir = str(tmp_path / "tapes")
        runner = BatchRunner(batch_browser_factory("dashboard"),
                             timing=TimingMode.no_wait(),
                             tape=TapeConfig.record(tape_dir))
        live = runner.run([trace, trace], labels=["a", "b"])
        assert live.complete
        return tape_dir, live

    def playback_runner(self, tape_dir, **kwargs):
        return BatchRunner(
            batch_browser_factory("dashboard", client_only=True),
            timing=TimingMode.no_wait(),
            tape=TapeConfig.playback(tape_dir), **kwargs)

    def assert_matches(self, live, played):
        assert played.complete
        assert [report_key(run.report) for run in played.runs] \
            == [report_key(run.report) for run in live.runs]

    def test_serial_and_sharded_playback_match_live(self, tmp_path):
        trace = make_trace("dashboard")
        tape_dir, live = self.record_tapes(trace, tmp_path)
        serial = self.playback_runner(tape_dir) \
            .run([trace, trace], labels=["a", "b"])
        self.assert_matches(live, serial)
        sharded = self.playback_runner(tape_dir, shards=2) \
            .run([trace, trace], labels=["a", "b"])
        self.assert_matches(live, sharded)

    def test_pooled_playback_matches_live(self, tmp_path):
        from repro.session.pool import WorkerSpec

        trace = make_trace("dashboard")
        tape_dir, live = self.record_tapes(trace, tmp_path)
        spec = WorkerSpec("repro.cli:batch_browser_factory",
                          factory_args=("dashboard",),
                          factory_kwargs={"client_only": True})
        pooled = BatchRunner(spec, timing=TimingMode.no_wait(), workers=2,
                             tape=TapeConfig.playback(tape_dir)) \
            .run([trace, trace], labels=["a", "b"])
        self.assert_matches(live, pooled)
