"""Session policies: timing, locating, failure handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commands import ClickCommand, TypeCommand
from repro.core.trace import WarrTrace
from repro.session.policies import FailurePolicy, LocatorPolicy, TimingPolicy
from repro.session.report import CommandResult


class TestTimingPolicy:
    def test_recorded_keeps_delays(self):
        policy = TimingPolicy.recorded()
        assert policy.delay_for(ClickCommand("//a", elapsed_ms=120)) == 120

    def test_no_wait_zeroes_delays(self):
        policy = TimingPolicy.no_wait()
        assert policy.delay_for(ClickCommand("//a", elapsed_ms=120)) == 0

    def test_fixed_ignores_recorded(self):
        policy = TimingPolicy.fixed(10)
        assert policy.delay_for(ClickCommand("//a", elapsed_ms=120)) == 10

    def test_target_is_anchor_plus_delay(self):
        policy = TimingPolicy.scaled(2.0)
        command = ClickCommand("//a", elapsed_ms=50)
        assert policy.target(1000.0, command) == 1100.0


# -- property tests: policies agree with the trace's delay transforms -------

delays = st.lists(st.integers(min_value=0, max_value=10_000),
                  min_size=1, max_size=20)


def _trace_with(elapsed_list):
    commands = [ClickCommand("//a[%d]" % i, elapsed_ms=ms)
                for i, ms in enumerate(elapsed_list)]
    return WarrTrace(start_url="http://test.example/", commands=commands)


class TestTimingRoundTrip:
    """TimingPolicy.delay_for must match the trace-level transforms.

    ``WarrTrace.with_delays_scaled`` / ``with_delays_fixed`` bake a
    timing treatment into a new trace; replaying the original under the
    matching policy must schedule the same timeline.
    """

    @given(delays)
    @settings(max_examples=50, deadline=None)
    def test_recorded_reproduces_timeline(self, elapsed_list):
        policy = TimingPolicy.recorded()
        trace = _trace_with(elapsed_list)
        anchor = 0.0
        for command in trace:
            anchor = policy.target(anchor, command)
        assert anchor == sum(elapsed_list)
        assert anchor == trace.total_duration_ms()

    @given(delays, st.floats(min_value=0.0, max_value=10.0,
                             allow_nan=False, allow_infinity=False))
    @settings(max_examples=50, deadline=None)
    def test_scaled_matches_with_delays_scaled(self, elapsed_list, factor):
        policy = TimingPolicy.scaled(factor)
        trace = _trace_with(elapsed_list)
        baked = trace.with_delays_scaled(factor)
        for original, transformed in zip(trace, baked):
            # with_delays_scaled truncates to whole milliseconds.
            assert int(policy.delay_for(original)) == transformed.elapsed_ms

    @given(delays, st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=50, deadline=None)
    def test_fixed_matches_with_delays_fixed(self, elapsed_list, delay_ms):
        policy = TimingPolicy.fixed(delay_ms)
        trace = _trace_with(elapsed_list)
        baked = trace.with_delays_fixed(delay_ms)
        for original, transformed in zip(trace, baked):
            assert int(policy.delay_for(original)) == transformed.elapsed_ms


class TestLocatorPolicy:
    def test_click_has_coordinate_fallback(self):
        policy = LocatorPolicy()
        command = ClickCommand("//a", x=10, y=20)
        assert policy.fallback_position(command) == (10, 20)

    def test_type_has_no_fallback(self):
        policy = LocatorPolicy()
        assert policy.fallback_position(TypeCommand("//a", "x", 88)) is None

    def test_relaxation_engine_respects_toggle(self):
        assert LocatorPolicy().new_relaxation_engine().enabled
        off = LocatorPolicy(relaxation=False)
        assert not off.new_relaxation_engine().enabled


class TestFailurePolicy:
    def _failed(self):
        return CommandResult(ClickCommand("//a"), CommandResult.FAILED,
                             error=Exception("boom"))

    def _ok(self):
        return CommandResult(ClickCommand("//a"), CommandResult.OK)

    def test_success_always_continues(self):
        for policy in (FailurePolicy.continue_on_failure(),
                       FailurePolicy.stop_on_failure(),
                       FailurePolicy.halt_on_failure()):
            assert policy.decide(self._ok()) == FailurePolicy.CONTINUE

    def test_failure_follows_mode(self):
        assert (FailurePolicy.continue_on_failure().decide(self._failed())
                == FailurePolicy.CONTINUE)
        assert (FailurePolicy.stop_on_failure().decide(self._failed())
                == FailurePolicy.STOP)
        assert (FailurePolicy.halt_on_failure().decide(self._failed())
                == FailurePolicy.HALT)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FailurePolicy("explode")
