"""The WR2 compact result wire format: exact round-trip, compactness.

The pool's correctness story leans entirely on
``decode_report(encode_report(d)) == d``; these tests pin that equality
on real replay output, on hand-built edge cases, and (via hypothesis)
on arbitrary schema-shaped payloads.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.session.engine import SessionEngine
from repro.session.policies import TimingPolicy
from repro.session.report import ReplayReport
from repro.session.wire import MAGIC, WireError, decode_report, encode_report
from tests.session.test_batch import factory, record_trace


def replay_report_dict(label="wire"):
    trace = record_trace(label)
    engine = SessionEngine(factory(), timing=TimingPolicy.no_wait())
    return engine.run(trace).to_dict()


class TestRoundTrip:
    def test_real_replay_report_round_trips_exactly(self):
        report = replay_report_dict()
        assert decode_report(encode_report(report)) == report

    def test_decoded_report_rebuilds_through_from_dict(self):
        report = replay_report_dict()
        rebuilt = ReplayReport.from_dict(decode_report(encode_report(report)))
        assert rebuilt.to_dict() == report

    def test_halted_report_with_errors_round_trips(self):
        report = {
            "trace": "#warr v1\nstart http://x/\nclick //a 5",
            "results": [
                {"command": "click //a 5", "status": "failed",
                 "detail": "no match", "retries": 2,
                 "error": {"type": "LocatorError", "message": "gone",
                           "severity": "page"}},
                {"command": "click //a 5", "status": "weird-status",
                 "detail": None, "retries": 0, "error": None},
            ],
            "halted": True,
            "halt_reason": "boom",
            "halt_error": {"type": "ReplayHaltedError", "message": "boom",
                           "severity": None},
            "page_errors": [
                {"type": "ScriptError", "message": "übel ☃", "severity": "js"},
            ],
            "final_url": None,
            "recoveries": 3,
            "perf_counters": {
                "xpath.compile": {"hits": 300, "misses": 7,
                                  "hit_rate": 300 / 307},
                "dom.index": {"hits": 0, "misses": 0, "hit_rate": None},
            },
            "net_fidelity": {"failed_fetches": 4, "timeouts": 2,
                             "tape_misses": 1},
        }
        assert decode_report(encode_report(report)) == report

    def test_empty_report_round_trips(self):
        report = {
            "trace": "", "results": [], "halted": False,
            "halt_reason": None, "halt_error": None, "page_errors": [],
            "final_url": None, "recoveries": 0, "perf_counters": {},
            "net_fidelity": {"failed_fetches": 0, "timeouts": 0,
                             "tape_misses": 0},
        }
        assert decode_report(encode_report(report)) == report

    def test_hit_rate_doubles_are_bit_identical(self):
        rate = 1.0 / 3.0
        report = {
            "trace": "t", "results": [], "halted": False,
            "halt_reason": None, "halt_error": None, "page_errors": [],
            "final_url": None, "recoveries": 0,
            "perf_counters": {"c": {"hits": 1, "misses": 2,
                                    "hit_rate": rate}},
            "net_fidelity": {"failed_fetches": 0, "timeouts": 0,
                             "tape_misses": 0},
        }
        decoded = decode_report(encode_report(report))
        assert decoded["perf_counters"]["c"]["hit_rate"] == rate


class TestCompactness:
    def test_interning_beats_pickled_dicts_on_repetitive_batches(self):
        # The motivating case: many identical command lines. Interning
        # must make the wire blob smaller than pickling the raw dict.
        result = {"command": "type //input[@name='who'] abc 120",
                  "status": "ok", "detail": None, "retries": 0,
                  "error": None}
        report = {
            "trace": "#warr v1\nstart http://host/page",
            "results": [dict(result) for _ in range(200)],
            "halted": False, "halt_reason": None, "halt_error": None,
            "page_errors": [], "final_url": "http://host/page",
            "recoveries": 0, "perf_counters": {},
            "net_fidelity": {"failed_fetches": 0, "timeouts": 0,
                             "tape_misses": 0},
        }
        blob = encode_report(report)
        assert len(blob) < len(pickle.dumps(report))
        assert decode_report(blob) == report

    def test_real_report_is_smaller_than_its_pickle(self):
        report = replay_report_dict()
        assert len(encode_report(report)) < len(pickle.dumps(report))


class TestMalformedPayloads:
    def test_bad_magic_rejected(self):
        with pytest.raises(WireError, match="magic"):
            decode_report(b"XX1whatever")

    def test_non_bytes_rejected(self):
        with pytest.raises(WireError, match="bytes"):
            decode_report({"not": "bytes"})

    def test_truncated_payload_rejected(self):
        blob = encode_report(replay_report_dict())
        with pytest.raises(WireError):
            decode_report(blob[:len(blob) // 2])

    def test_trailing_garbage_rejected(self):
        blob = encode_report(replay_report_dict())
        with pytest.raises(WireError, match="trailing"):
            decode_report(blob + b"\x00")

    def test_magic_is_versioned(self):
        assert encode_report({
            "trace": "t", "results": [], "halted": False,
            "halt_reason": None, "halt_error": None, "page_errors": [],
            "final_url": None, "recoveries": 0, "perf_counters": {},
            "net_fidelity": {"failed_fetches": 0, "timeouts": 0,
                             "tape_misses": 0},
        }).startswith(MAGIC)


# -- property test: arbitrary schema-shaped payloads --------------------------

_text = st.text(max_size=40)
_opt_text = st.none() | _text

_error = st.none() | st.fixed_dictionaries({
    "type": _text,
    "message": _text,
    "severity": _opt_text,
})

_result = st.fixed_dictionaries({
    "command": _text,
    "status": st.sampled_from(
        ["ok", "relaxed", "coordinate-fallback", "failed"]) | _text,
    "detail": _opt_text,
    "retries": st.integers(min_value=0, max_value=10**9),
    "error": _error,
})

_counter = st.fixed_dictionaries({
    "hits": st.integers(min_value=0, max_value=10**12),
    "misses": st.integers(min_value=0, max_value=10**12),
    "hit_rate": st.none() | st.floats(allow_nan=False),
})

_report = st.fixed_dictionaries({
    "trace": _text,
    "results": st.lists(_result, max_size=8),
    "halted": st.booleans(),
    "halt_reason": _opt_text,
    "halt_error": _error,
    "page_errors": st.lists(_error.filter(lambda e: e is not None),
                            max_size=4),
    "final_url": _opt_text,
    "recoveries": st.integers(min_value=0, max_value=10**6),
    "perf_counters": st.dictionaries(_text, _counter, max_size=6),
    "net_fidelity": st.fixed_dictionaries({
        "failed_fetches": st.integers(min_value=0, max_value=10**9),
        "timeouts": st.integers(min_value=0, max_value=10**9),
        "tape_misses": st.integers(min_value=0, max_value=10**9),
    }),
})


class TestRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(_report)
    def test_any_schema_shaped_report_round_trips(self, report):
        assert decode_report(encode_report(report)) == report
