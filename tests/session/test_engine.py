"""The session engine: pipeline, event stream, timing, halting."""

from repro.core.commands import ClickCommand, TypeCommand
from repro.core.recorder import WarrRecorder
from repro.core.trace import WarrTrace
from repro.session.engine import SessionEngine
from repro.session.events import SessionEvent
from repro.session.observers import EventLogObserver
from repro.session.policies import FailurePolicy, LocatorPolicy, TimingPolicy
from repro.session.report import CommandResult
from tests.browser.helpers import build_browser, url


def record_home_session():
    browser = build_browser()
    recorder = WarrRecorder().attach(browser)
    recorder.begin(url("/"))
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//input[@name="who"]'))
    tab.type_text("Ada", think_time_ms=20)
    tab.click_element(tab.find('//input[@type="submit"]'))
    tab.click_element(tab.find('//a[text()="back"]'))
    return recorder.trace


class TestRun:
    def test_full_session_replays(self):
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        report = SessionEngine(browser).run(trace)
        assert report.complete
        assert report.replayed_count == len(trace)
        assert report.final_url == url("/")

    def test_event_stream_narrates_pipeline(self):
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        log = EventLogObserver()
        SessionEngine(browser).run(trace, observers=[log])
        kinds = log.kinds_seen()
        assert kinds[0] == SessionEvent.SESSION_STARTED
        assert kinds[1] == SessionEvent.NAVIGATED
        assert kinds[-1] == SessionEvent.SESSION_FINISHED
        assert SessionEvent.PERF_DELTA in kinds
        # Every command contributes started -> located -> acted -> finished.
        assert kinds.count(SessionEvent.COMMAND_STARTED) == len(trace)
        assert kinds.count(SessionEvent.COMMAND_FINISHED) == len(trace)
        assert kinds.count(SessionEvent.LOCATED) == len(trace)
        assert kinds.count(SessionEvent.ACTED) == len(trace)

    def test_located_precedes_acted_per_command(self):
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        log = EventLogObserver(kinds=[
            SessionEvent.COMMAND_STARTED, SessionEvent.LOCATED,
            SessionEvent.ACTED, SessionEvent.COMMAND_FINISHED])
        SessionEngine(browser).run(trace, observers=[log])
        per_command = len(log.events) // len(trace)
        assert per_command == 4
        for i in range(0, len(log.events), 4):
            window = [event.kind for event in log.events[i:i + 4]]
            assert window == [SessionEvent.COMMAND_STARTED,
                              SessionEvent.LOCATED,
                              SessionEvent.ACTED,
                              SessionEvent.COMMAND_FINISHED]

    def test_recorded_timing_reproduces_absolute_timeline(self):
        # Schedule stage: each command is due at anchor + recorded delay;
        # execution time counts against the gap, so the whole session
        # takes at least (and with idle gaps, about) the recorded total.
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        SessionEngine(browser, timing=TimingPolicy.recorded()).run(trace)
        assert browser.clock.now() >= trace.total_duration_ms()

    def test_no_wait_is_faster(self):
        trace = record_home_session()
        slow = build_browser(developer_mode=True)
        SessionEngine(slow, timing=TimingPolicy.recorded()).run(trace)
        fast = build_browser(developer_mode=True)
        SessionEngine(fast, timing=TimingPolicy.no_wait()).run(trace)
        assert fast.clock.now() < slow.clock.now()


class TestFailureModes:
    def _trace(self):
        return WarrTrace(start_url=url("/"), commands=[
            TypeCommand("//video", "x", 88),
            ClickCommand('//a[text()="About"]'),
        ])

    def test_continue_replays_the_rest(self):
        browser = build_browser(developer_mode=True)
        engine = SessionEngine(browser,
                               failure=FailurePolicy.continue_on_failure())
        report = engine.run(self._trace())
        assert report.failed_count == 1
        assert report.replayed_count == 1
        assert not report.halted

    def test_stop_skips_the_rest(self):
        browser = build_browser(developer_mode=True)
        engine = SessionEngine(browser,
                               failure=FailurePolicy.stop_on_failure())
        report = engine.run(self._trace())
        assert report.failed_count == 1
        assert len(report.results) == 1
        assert not report.halted

    def test_halt_marks_report_halted(self):
        browser = build_browser(developer_mode=True)
        engine = SessionEngine(browser,
                               failure=FailurePolicy.halt_on_failure())
        report = engine.run(self._trace())
        assert report.halted
        assert "command failed" in report.halt_reason
        assert len(report.results) == 1

    def test_navigation_failure_halts_before_commands(self):
        trace = WarrTrace(start_url="http://nowhere.example/",
                          commands=[ClickCommand("//a")])
        browser = build_browser(developer_mode=True)
        report = SessionEngine(browser).run(trace)
        assert report.halted
        assert "navigation" in report.halt_reason
        assert report.results == []


class TestLocateFallbacks:
    def test_click_falls_back_to_coordinates(self):
        browser = build_browser(developer_mode=True)
        trace = WarrTrace(start_url=url("/"), commands=[
            ClickCommand('//a[@href="/gone"]', x=1, y=1),
        ])
        engine = SessionEngine(browser, locator=LocatorPolicy(relaxation=False))
        report = engine.run(trace)
        assert report.results[0].status == CommandResult.COORDINATE
        assert "clicked at recorded" in report.results[0].detail

    def test_type_failure_has_no_fallback(self):
        browser = build_browser(developer_mode=True)
        trace = WarrTrace(start_url=url("/"), commands=[
            TypeCommand("//video", "x", 88),
        ])
        report = SessionEngine(browser).run(trace)
        assert report.results[0].status == CommandResult.FAILED


class TestStepping:
    def test_start_then_step(self):
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        engine = SessionEngine(browser)
        run = engine.start(trace)
        assert not run.halted
        for command in trace:
            result = run.step(command)
            assert result.succeeded
        report = run.finish()
        assert report.complete

    def test_finish_is_idempotent(self):
        trace = record_home_session()
        browser = build_browser(developer_mode=True)
        run = SessionEngine(browser).start(trace)
        for command in trace:
            run.step(command)
        assert run.finish() is run.finish()

    def test_current_document_reads_active_page(self):
        browser = build_browser(developer_mode=True)
        engine = SessionEngine(browser)
        assert engine.current_document() is None
        trace = WarrTrace(start_url=url("/"), commands=[])
        engine.run(trace)
        document = engine.current_document()
        assert document is not None
        assert document.url == url("/")
