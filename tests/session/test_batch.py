"""Batch replay across isolated browser instances."""

import pytest

from repro import telemetry
from repro.core.commands import ClickCommand, TypeCommand, WarrCommand
from repro.core.recorder import WarrRecorder
from repro.core.trace import WarrTrace
from repro.session.batch import BatchReport, BatchRunner, _dedupe_labels
from repro.session.policies import FailurePolicy, TimingPolicy
from repro.util.errors import ReplayError
from tests.browser.helpers import build_browser, url


def record_trace(label):
    browser = build_browser()
    recorder = WarrRecorder().attach(browser)
    recorder.begin(url("/"), label=label)
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//input[@name="who"]'))
    tab.type_text(label[:3], think_time_ms=10)
    tab.click_element(tab.find('//input[@type="submit"]'))
    return recorder.trace


def factory():
    return build_browser(developer_mode=True)


class TestBatchRunner:
    def test_four_traces_replay_on_isolated_browsers(self):
        traces = [record_trace("session-%d" % i) for i in range(4)]
        seen = []

        def spying_factory():
            browser = factory()
            seen.append(browser)
            return browser

        runner = BatchRunner(spying_factory, timing=TimingPolicy.no_wait())
        batch = runner.run(traces)
        assert batch.complete
        assert batch.trace_count == 4
        assert batch.complete_count == 4
        assert batch.replayed_count == sum(len(t) for t in traces)
        assert batch.failed_count == 0
        # One fresh browser per trace: no shared state between sessions.
        assert len(seen) == 4
        assert len(set(map(id, seen))) == 4
        # Every session left its own browser on the greeting page.
        for browser in seen:
            assert browser.active_tab.url.startswith(url("/greet"))

    def test_labels_default_to_trace_labels(self):
        traces = [record_trace("alpha"), record_trace("beta")]
        batch = BatchRunner(factory, timing=TimingPolicy.no_wait()).run(traces)
        assert [run.label for run in batch.runs] == ["alpha", "beta"]

    def test_explicit_labels(self):
        traces = [record_trace("alpha"), record_trace("beta")]
        runner = BatchRunner(factory, timing=TimingPolicy.no_wait())
        batch = runner.run(traces, labels=["a.warr", "b.warr"])
        assert [run.label for run in batch.runs] == ["a.warr", "b.warr"]

    def test_label_count_mismatch_rejected(self):
        runner = BatchRunner(factory)
        with pytest.raises(ValueError):
            runner.run([record_trace("x")], labels=["a", "b"])

    def test_failures_are_isolated_to_their_trace(self):
        good = record_trace("good")
        bad = WarrTrace(start_url=url("/"), label="bad", commands=[
            TypeCommand("//video", "x", 88),
        ])
        batch = BatchRunner(factory,
                            timing=TimingPolicy.no_wait()).run([bad, good])
        assert not batch.complete
        assert batch.complete_count == 1
        assert [run.label for run in batch.failures()] == ["bad"]

    def test_perf_counters_accumulate_across_sessions(self):
        traces = [record_trace("one"), record_trace("two")]
        batch = BatchRunner(factory, timing=TimingPolicy.no_wait()).run(traces)
        assert batch.perf_counters
        for counts in batch.perf_counters.values():
            assert set(counts) == {"hits", "misses", "hit_rate"}

    def test_halted_navigation_counts_as_incomplete(self):
        doomed = WarrTrace(start_url="http://nowhere.example/",
                           label="doomed",
                           commands=[ClickCommand("//a")])
        batch = BatchRunner(factory).run([doomed])
        assert not batch.complete
        assert batch.failures()[0].report.halted

    def test_empty_trace_list_is_not_complete(self):
        batch = BatchRunner(factory).run([])
        assert not batch.complete
        assert batch.trace_count == 0

    def test_repeated_default_labels_are_deduped(self):
        traces = [record_trace("dup"), record_trace("dup"),
                  record_trace("dup")]
        batch = BatchRunner(factory, timing=TimingPolicy.no_wait()).run(traces)
        assert [run.label for run in batch.runs] == ["dup", "dup-2", "dup-3"]

    def test_tracer_clock_reset_when_engine_raises(self, tmp_path):
        # Regression: an engine error mid-batch used to leave the
        # tracer stamping events with the dead session's virtual clock.
        class HoverCommand(WarrCommand):
            action = "hover"

            def payload(self):
                return "-"

        bogus = WarrTrace(start_url=url("/"), label="bogus",
                          commands=[HoverCommand("//a")])
        runner = BatchRunner(factory, timing=TimingPolicy.no_wait())
        with telemetry.tracing() as tracer:
            with pytest.raises(ReplayError):
                runner.run([record_trace("ok"), bogus],
                           trace_dir=str(tmp_path))
            assert tracer.clock is None


class TestFailurePolicyScope:
    """Pinning the policy-scope contract: ``stop`` ends one *session*,
    ``halt`` aborts the whole *batch*."""

    @staticmethod
    def _bad_trace():
        return WarrTrace(start_url=url("/"), label="bad", commands=[
            TypeCommand("//video", "x", 88),
        ])

    def test_halt_policy_stops_the_batch(self):
        traces = [record_trace("first"), self._bad_trace(),
                  record_trace("never-runs")]
        batch = BatchRunner(factory, timing=TimingPolicy.no_wait(),
                            failure=FailurePolicy.halt_on_failure()
                            ).run(traces)
        # The failing session halts AND the remaining trace is never
        # dispatched.
        assert batch.trace_count == 2
        assert [run.label for run in batch.runs] == ["first", "bad"]
        assert batch.runs[1].report.halted

    def test_stop_policy_ends_only_the_session(self):
        traces = [self._bad_trace(), record_trace("still-runs")]
        batch = BatchRunner(factory, timing=TimingPolicy.no_wait(),
                            failure=FailurePolicy.stop_on_failure()
                            ).run(traces)
        # The failing session stopped early but was not halted, and the
        # batch carried on to the next trace.
        assert batch.trace_count == 2
        assert not batch.runs[0].report.halted
        assert batch.runs[0].report.failed_count == 1
        assert batch.runs[1].report.complete

    def test_continue_policy_never_shortens_the_batch(self):
        traces = [self._bad_trace(), record_trace("runs")]
        batch = BatchRunner(factory, timing=TimingPolicy.no_wait()).run(
            traces)
        assert batch.trace_count == 2

    def test_halt_without_halting_failure_runs_everything(self):
        # The halt policy only aborts when a session actually halts.
        traces = [record_trace("a"), record_trace("b")]
        batch = BatchRunner(factory, timing=TimingPolicy.no_wait(),
                            failure=FailurePolicy.halt_on_failure()
                            ).run(traces)
        assert batch.trace_count == 2
        assert batch.complete


class TestLabelDedup:
    def test_unique_labels_pass_through(self):
        assert _dedupe_labels(["a", "b"]) == ["a", "b"]

    def test_collisions_get_numeric_suffixes(self):
        assert _dedupe_labels(["a", "a", "a-2", "a"]) \
            == ["a", "a-2", "a-2-2", "a-3"]


class TestBatchReport:
    def test_empty_batch_is_not_complete(self):
        assert not BatchReport().complete

    def test_summary_mentions_counts(self):
        traces = [record_trace("s1"), record_trace("s2")]
        batch = BatchRunner(factory, timing=TimingPolicy.no_wait()).run(traces)
        summary = batch.summary()
        assert "2/2 trace(s) complete" in summary
        assert "0 page error(s)" in summary
