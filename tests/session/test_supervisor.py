"""Worker supervision: backoff policy, breaker, drain, heartbeats."""

import os
import queue
import signal
import time

import pytest

from repro.session.supervisor import (
    THROTTLE_ENV,
    GracefulDrain,
    SupervisorPolicy,
    WorkerSupervisor,
    start_heartbeat,
    tail_text,
    throttle_seconds,
)


class TestSupervisorPolicy:
    def test_backoff_doubles_per_consecutive_death(self):
        policy = SupervisorPolicy(backoff_base=0.1, backoff_cap=10.0)
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(5) == pytest.approx(1.6)

    def test_backoff_is_capped(self):
        policy = SupervisorPolicy(backoff_base=0.1, backoff_cap=0.5)
        assert policy.backoff(10) == pytest.approx(0.5)

    def test_zeroth_and_first_death_pay_the_base(self):
        policy = SupervisorPolicy(backoff_base=0.25)
        assert policy.backoff(0) == pytest.approx(0.25)
        assert policy.backoff(1) == pytest.approx(0.25)

    def test_invalid_tunables_rejected(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_base=1.0, backoff_cap=0.5)
        with pytest.raises(ValueError):
            SupervisorPolicy(breaker_deaths=0)


class TestWorkerSupervisor:
    def _supervisor(self, **kwargs):
        return WorkerSupervisor(SupervisorPolicy(**kwargs))

    def test_death_schedules_respawn_after_backoff(self):
        sup = self._supervisor(backoff_base=0.5)
        assert not sup.record_death(slot=0, now=100.0)
        assert sup.pending_slots() == [0]
        assert sup.due_slots(now=100.1) == []
        assert sup.due_slots(now=100.6) == [0]
        # Popping a due slot removes it from the schedule.
        assert sup.pending_slots() == []

    def test_consecutive_deaths_back_off_exponentially(self):
        sup = self._supervisor(backoff_base=1.0, backoff_cap=60.0,
                               breaker_deaths=10)
        sup.record_death(0, now=0.0)
        sup.record_death(0, now=0.0)
        # Second consecutive death: 1.0 * 2^(2-1) = 2 seconds out.
        assert sup.next_due_in(now=0.0) == pytest.approx(2.0)

    def test_completion_resets_the_streak(self):
        sup = self._supervisor(breaker_deaths=3)
        sup.record_death(0, now=0.0)
        sup.record_death(1, now=0.0)
        sup.record_completion()
        assert sup.consecutive_deaths == 0
        assert not sup.record_death(0, now=0.0)
        assert sup.deaths == 3  # lifetime count never resets

    def test_breaker_trips_on_unbroken_death_streak(self):
        sup = self._supervisor(breaker_deaths=3)
        assert not sup.record_death(0, now=0.0)
        assert not sup.record_death(1, now=0.0)
        assert sup.record_death(2, now=0.0)
        assert sup.tripped

    def test_tripped_breaker_stops_respawns(self):
        sup = self._supervisor(backoff_base=0.0, breaker_deaths=2)
        sup.record_death(0, now=0.0)
        sup.record_death(1, now=0.0)
        assert sup.tripped
        assert sup.due_slots(now=10.0) == []
        assert sup.next_due_in(now=10.0) is None


class TestGracefulDrain:
    def test_programmatic_request_sets_every_probe(self):
        drain = GracefulDrain()
        assert not drain.requested and not drain()
        drain.request()
        assert drain.requested and drain()

    def test_sigterm_requests_a_drain_instead_of_dying(self):
        with GracefulDrain() as drain:
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time.monotonic() + 2.0
            while not drain.requested and time.monotonic() < deadline:
                time.sleep(0.01)
            assert drain.requested

    def test_first_signal_restores_previous_dispositions(self):
        # The escape hatch: after the first signal the previous handler
        # is back, so a second signal means immediate death again.
        before = signal.getsignal(signal.SIGTERM)
        with GracefulDrain() as drain:
            assert signal.getsignal(signal.SIGTERM) != before
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time.monotonic() + 2.0
            while not drain.requested and time.monotonic() < deadline:
                time.sleep(0.01)
            assert signal.getsignal(signal.SIGTERM) == before
        assert signal.getsignal(signal.SIGTERM) == before

    def test_exit_restores_handlers_even_unfired(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulDrain():
            pass
        assert signal.getsignal(signal.SIGINT) == before


class TestThrottle:
    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(THROTTLE_ENV, raising=False)
        assert throttle_seconds() == 0.0

    def test_value_parses_as_seconds(self, monkeypatch):
        monkeypatch.setenv(THROTTLE_ENV, "0.25")
        assert throttle_seconds() == pytest.approx(0.25)

    def test_garbage_is_off_not_fatal(self, monkeypatch):
        monkeypatch.setenv(THROTTLE_ENV, "not-a-number")
        assert throttle_seconds() == 0.0


class TestHeartbeat:
    def test_beats_flow_until_stopped(self):
        beats = queue.Queue()
        stop = start_heartbeat(beats, worker_id=3, interval=0.01)
        try:
            kind, index, worker = beats.get(timeout=2.0)
            assert (kind, index, worker) == ("heartbeat", -1, 3)
        finally:
            stop.set()
        # Drain whatever was in flight; after the stop no new beats.
        time.sleep(0.05)
        while not beats.empty():
            beats.get_nowait()
        time.sleep(0.05)
        assert beats.empty()


class TestTailText:
    def test_missing_file_is_empty(self, tmp_path):
        assert tail_text(str(tmp_path / "absent.log")) == ""

    def test_short_file_comes_back_whole(self, tmp_path):
        path = tmp_path / "short.log"
        path.write_text("two lines\nof stderr\n")
        assert tail_text(str(path)) == "two lines\nof stderr\n"

    def test_long_file_yields_only_the_tail(self, tmp_path):
        path = tmp_path / "long.log"
        path.write_text("x" * 5000 + "THE END")
        tail = tail_text(str(path), limit=100)
        assert len(tail) == 100
        assert tail.endswith("THE END")

    def test_invalid_utf8_is_replaced_not_fatal(self, tmp_path):
        path = tmp_path / "binary.log"
        path.write_bytes(b"\xff\xfe broken \xff")
        assert "broken" in tail_text(str(path))
