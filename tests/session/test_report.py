"""Report wire format: error taxonomy and retry counts round-trip.

Pool workers ship ReplayReports to the parent as dicts, so everything
self-healing adds to a report — per-command retry counts, error
severity, the halt error, recovery totals — must survive
``to_dict``/``from_dict`` intact.
"""

import json

from repro.core.commands import ClickCommand
from repro.core.trace import WarrTrace
from repro.session.report import CommandResult, RemoteError, ReplayReport
from repro.util.errors import (
    FATAL,
    PERMANENT,
    TRANSIENT,
    NetworkFaultError,
    ReplayError,
    classify,
    is_transient,
)


def _trace():
    return WarrTrace(start_url="http://t.example/", label="rt",
                     commands=[ClickCommand("//a", 1, 2)])


class TestCommandResultRoundTrip:
    def test_retries_survive(self):
        result = CommandResult(ClickCommand("//a", 1, 2), CommandResult.OK,
                               retries=3)
        rebuilt = CommandResult.from_dict(result.to_dict())
        assert rebuilt.retries == 3
        assert rebuilt.succeeded

    def test_error_class_survives(self):
        result = CommandResult(ClickCommand("//a", 1, 2),
                               CommandResult.FAILED,
                               error=NetworkFaultError("injected"),
                               retries=2)
        assert result.error_class == TRANSIENT
        rebuilt = CommandResult.from_dict(result.to_dict())
        assert rebuilt.error_class == TRANSIENT
        assert is_transient(rebuilt.error)
        assert rebuilt.error.type_name == "NetworkFaultError"
        assert str(rebuilt.error) == "injected"
        assert rebuilt.retries == 2

    def test_permanent_default_for_plain_errors(self):
        result = CommandResult(ClickCommand("//a", 1, 2),
                               CommandResult.FAILED,
                               error=ReplayError("nope"))
        rebuilt = CommandResult.from_dict(result.to_dict())
        assert rebuilt.error_class == PERMANENT

    def test_missing_retries_defaults_to_zero(self):
        # Tolerate dicts produced before the retries field existed.
        data = CommandResult(ClickCommand("//a", 1, 2),
                             CommandResult.OK).to_dict()
        del data["retries"]
        assert CommandResult.from_dict(data).retries == 0

    def test_error_class_none_without_error(self):
        result = CommandResult(ClickCommand("//a", 1, 2), CommandResult.OK)
        assert result.error_class is None
        assert CommandResult.from_dict(result.to_dict()).error_class is None


class TestReplayReportRoundTrip:
    def _report(self):
        report = ReplayReport(_trace())
        report.results = [
            CommandResult(ClickCommand("//a", 1, 2), CommandResult.OK,
                          retries=1),
            CommandResult(ClickCommand("//b", 3, 4), CommandResult.FAILED,
                          error=NetworkFaultError("flaky"), retries=3),
        ]
        report.halted = True
        report.halt_reason = "per-trace timeout"
        report.halt_error = RemoteError("per-trace timeout",
                                        type_name="TimeoutError",
                                        severity=FATAL)
        report.recoveries = 2
        return report

    def test_taxonomy_fields_round_trip(self):
        rebuilt = ReplayReport.from_dict(self._report().to_dict())
        assert rebuilt.retry_count == 4
        assert [r.retries for r in rebuilt.results] == [1, 3]
        assert rebuilt.results[1].error_class == TRANSIENT
        assert rebuilt.recoveries == 2
        assert rebuilt.halt_error.type_name == "TimeoutError"
        assert classify(rebuilt.halt_error) == FATAL
        assert str(rebuilt.halt_error) == "per-trace timeout"

    def test_round_trip_is_stable(self):
        # A second trip through the wire changes nothing.
        once = self._report().to_dict()
        twice = ReplayReport.from_dict(once).to_dict()
        assert json.dumps(once, sort_keys=True) \
            == json.dumps(twice, sort_keys=True)

    def test_old_wire_dicts_still_load(self):
        # Reports serialized before halt_error/recoveries existed.
        data = self._report().to_dict()
        del data["halt_error"]
        del data["recoveries"]
        rebuilt = ReplayReport.from_dict(data)
        assert rebuilt.halt_error is None
        assert rebuilt.recoveries == 0
        assert rebuilt.retry_count == 4
