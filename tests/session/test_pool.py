"""Multiprocess batch replay: worker pool, spec resolution, containment.

The crash/timeout tests steer module-level factories through a flag
file named in an environment variable: ``fork`` workers inherit both
the module and the environment, and ``os.O_EXCL`` creation makes
"misbehave exactly once" race-free even with several workers checking
concurrently.
"""

import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.session.batch import BatchReport, BatchRunner, TraceRun
from repro.session.observers import PerfCountersObserver
from repro.session.policies import TimingPolicy
from repro.session.pool import (
    WorkerPool,
    WorkerSpec,
    plan_chunks,
    register_factory,
    resolve_factory,
)
from repro.session.report import ReplayReport
from tests.browser.helpers import build_browser
from tests.session.test_batch import factory, record_trace

FLAG_ENV = "REPRO_TEST_POOL_FLAG"


def _claim_flag():
    """Atomically claim the test flag file; True for exactly one caller."""
    try:
        fd = os.open(os.environ[FLAG_ENV],
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def crash_once_factory():
    if _claim_flag():
        os._exit(3)
    return build_browser(developer_mode=True)


def hang_once_factory():
    if _claim_flag():
        time.sleep(300)
    return build_browser(developer_mode=True)


def hang_always_factory():
    time.sleep(300)


def crash_in_worker_factory():
    # Crashes *every* pool-worker attempt (so requeue-once hits a second
    # worker and the trace goes to quarantine) — but behaves in the
    # parent, so a breaker-degraded inline run survives.
    if multiprocessing.parent_process() is not None:
        os._exit(9)
    return build_browser(developer_mode=True)


def sigterm_masking_hang_factory():
    # A worker that ignores SIGTERM and hangs: terminate() alone can
    # never reap it — only the kill() escalation can. Guarded so a
    # degraded inline run never masks signals in the test process.
    if multiprocessing.parent_process() is not None:
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(300)
    return build_browser(developer_mode=True)


def sigstop_factory():
    # Freezes the whole worker process: even the heartbeat thread stops
    # beating — the process-level hang the heartbeat watch exists for.
    # (SIGTERM is not delivered to a stopped process; only the SIGKILL
    # escalation reaps it.)
    if multiprocessing.parent_process() is not None:
        os.kill(os.getpid(), signal.SIGSTOP)
    return build_browser(developer_mode=True)


def broken_factory():
    # Returns no browser: the worker's replay dies with AttributeError.
    return None


def slow_start_factory():
    # Slow in *real* time: the parent must sleep through this, not poll.
    time.sleep(1.0)
    return build_browser(developer_mode=True)


def build_sized_factory(developer_mode):
    """A builder: invoked once per worker, returns the session factory."""
    def sized():
        return build_browser(developer_mode=developer_mode)
    return sized


@pytest.fixture
def flag_path(tmp_path, monkeypatch):
    path = str(tmp_path / "flag")
    monkeypatch.setenv(FLAG_ENV, path)
    return path


class TestFactoryResolution:
    def test_callable_passes_through(self):
        assert resolve_factory(factory) is factory

    def test_dotted_colon_path(self):
        resolved = resolve_factory("tests.session.test_batch:factory")
        assert resolved is factory

    def test_dotted_attribute_path(self):
        resolved = resolve_factory("tests.session.test_batch.factory")
        assert resolved is factory

    def test_registered_name(self):
        register_factory("pool-test-factory", factory)
        assert resolve_factory("pool-test-factory") is factory

    def test_decorator_registration(self):
        @register_factory("pool-test-decorated")
        def decorated():
            return None

        assert resolve_factory("pool-test-decorated") is decorated

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown factory"):
            resolve_factory("no-such-factory")

    def test_missing_attribute_rejected(self):
        with pytest.raises(ValueError, match="no attribute"):
            resolve_factory("tests.session.test_batch:nope")

    def test_non_callable_target_rejected(self):
        with pytest.raises(TypeError, match="non-callable"):
            resolve_factory("tests.session.test_pool:FLAG_ENV")

    def test_spec_builder_args_applied(self):
        spec = WorkerSpec("tests.session.test_pool:build_sized_factory",
                          factory_args=(True,))
        browser = spec.make_factory()()
        assert browser.developer_mode

    def test_unpicklable_spec_rejected(self):
        spec = WorkerSpec(lambda: None)
        with pytest.raises(ValueError, match="picklable"):
            spec.validate()


class TestWorkerPool:
    def test_pooled_matches_serial(self):
        traces = [record_trace("session-%d" % i) for i in range(4)]
        serial = BatchRunner(factory, timing=TimingPolicy.no_wait()).run(
            traces)
        pooled = BatchRunner(factory, timing=TimingPolicy.no_wait(),
                             workers=2).run(traces)
        assert pooled.complete
        assert pooled.summary() == serial.summary()
        assert [run.label for run in pooled.runs] \
            == [run.label for run in serial.runs]
        for mine, theirs in zip(pooled.runs, serial.runs):
            assert [r.status for r in mine.report.results] \
                == [r.status for r in theirs.report.results]
            assert mine.report.final_url == theirs.report.final_url
        # Worker-side counter deltas merge into the same cache set the
        # serial observer sees (totals differ: caches are per-process).
        assert set(pooled.perf_counters) == set(serial.perf_counters)

    def test_outcomes_come_back_in_input_order(self):
        traces = [record_trace("t%d" % i) for i in range(6)]
        pool = WorkerPool(WorkerSpec(factory), workers=3,
                          timing=TimingPolicy.no_wait())
        outcomes, dropped = pool.run(
            [(trace.label, trace.to_text()) for trace in traces])
        assert dropped == 0
        assert [o.index for o in outcomes] == list(range(6))
        assert [o.label for o in outcomes] == [t.label for t in traces]
        assert all(o.ok for o in outcomes)
        report = ReplayReport.from_dict(outcomes[0].report)
        assert report.complete

    def test_empty_task_list_spawns_nothing(self):
        pool = WorkerPool(WorkerSpec(factory), workers=2)
        outcomes, dropped = pool.run([])
        assert outcomes == [] and dropped == 0

    def test_empty_pooled_batch_is_not_complete(self):
        batch = BatchRunner(factory, workers=2).run([])
        assert not batch.complete
        assert batch.trace_count == 0

    def test_observers_rejected_when_pooled(self):
        runner = BatchRunner(factory, workers=2,
                             observers=[PerfCountersObserver()])
        with pytest.raises(ValueError, match="observers"):
            runner.run([record_trace("x")])

    def test_unpicklable_factory_rejected_when_pooled(self):
        runner = BatchRunner(lambda: build_browser(), workers=2)
        with pytest.raises(ValueError, match="picklable"):
            runner.run([record_trace("x")])

    def test_closure_factory_fine_when_serial(self):
        # workers=1 is the in-process path: no pickling involved.
        batch = BatchRunner(lambda: build_browser(developer_mode=True),
                            timing=TimingPolicy.no_wait()).run(
            [record_trace("x")])
        assert batch.complete

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(factory, workers=0)
        with pytest.raises(ValueError):
            WorkerPool(WorkerSpec(factory), workers=0)


class TestContainment:
    def test_worker_crash_requeues_and_the_batch_recovers(self, flag_path):
        # A single worker death is transient (OOM kill, flaky native
        # crash): its in-flight trace gets one more chance on another
        # worker, and the batch completes in full.
        traces = [record_trace("c%d" % i) for i in range(4)]
        batch = BatchRunner("tests.session.test_pool:crash_once_factory",
                            timing=TimingPolicy.no_wait(),
                            workers=2).run(traces)
        assert batch.trace_count == 4
        assert batch.complete_count == 4, batch.summary()

    def test_transient_hang_requeued_and_recovered(self, flag_path):
        traces = [record_trace("h%d" % i) for i in range(3)]
        start = time.monotonic()
        batch = BatchRunner("tests.session.test_pool:hang_once_factory",
                            timing=TimingPolicy.no_wait(),
                            workers=2, trace_timeout=0.5).run(traces)
        elapsed = time.monotonic() - start
        assert batch.complete, batch.summary()
        assert elapsed < 30, "hung worker was never reaped"

    def test_deterministic_hang_fails_after_one_requeue(self):
        batch = BatchRunner("tests.session.test_pool:hang_always_factory",
                            timing=TimingPolicy.no_wait(),
                            workers=2, trace_timeout=0.4).run(
            [record_trace("stuck")])
        assert not batch.complete
        (failed,) = batch.failures()
        assert failed.report.halted
        assert "per-trace timeout" in failed.report.halt_reason

    def test_timeout_surfaces_a_timeout_classed_halt_error(self):
        # Deadline kills must be distinguishable from dead workers: the
        # report's halt_error carries TimeoutError as its type name.
        batch = BatchRunner("tests.session.test_pool:hang_always_factory",
                            timing=TimingPolicy.no_wait(),
                            workers=2, trace_timeout=0.4).run(
            [record_trace("stuck")])
        (failed,) = batch.failures()
        assert failed.report.halt_error is not None
        assert failed.report.halt_error.type_name == "TimeoutError"
        assert "per-trace timeout" in str(failed.report.halt_error)

    def test_worker_death_surfaces_a_crash_classed_halt_error(self):
        # A trace that kills its worker on *both* attempts fails for
        # good — with the crash class on the report's halt_error.
        batch = BatchRunner(
            "tests.session.test_pool:crash_in_worker_factory",
            timing=TimingPolicy.no_wait(), workers=2).run(
            [record_trace("poison")])
        (failed,) = batch.failures()
        assert failed.report.halt_error is not None
        assert failed.report.halt_error.type_name == "WorkerCrashError"
        assert "worker process died" in str(failed.report.halt_error)

    def test_worker_exception_class_crosses_the_wire(self):
        # An exception raised inside the worker (not a kill) reports
        # its own class name, not a generic bucket.
        pool = WorkerPool(
            WorkerSpec("tests.session.test_pool:broken_factory"),
            workers=1)
        (outcome,), dropped = pool.run([("x", record_trace("x").to_text())])
        assert not outcome.ok
        assert outcome.error_class == "AttributeError"


class TestChunkPlanning:
    def test_chunks_cover_every_index_exactly_once(self):
        for count in (0, 1, 2, 5, 7, 16, 100):
            for workers in (1, 2, 3, 8):
                chunks = plan_chunks(count, workers)
                flat = [i for chunk in chunks for i in chunk]
                assert sorted(flat) == list(range(count)), (count, workers)

    def test_tail_is_single_trace_chunks(self):
        chunks = plan_chunks(40, 4)
        # The final 2*workers chunks are singles: the finish line stays
        # level even if one worker lags.
        assert all(len(chunk) == 1 for chunk in chunks[-8:])
        # The head amortizes queue round-trips: fewer chunks than traces.
        assert len(chunks) < 40

    def test_small_batches_degrade_to_singles(self):
        assert plan_chunks(3, 4) == [[0], [1], [2]]
        assert plan_chunks(0, 4) == []

    def test_explicit_chunk_size_respected(self):
        chunks = plan_chunks(20, 2, chunk_size=4)
        head = [chunk for chunk in chunks if len(chunk) > 1]
        assert all(len(chunk) <= 4 for chunk in head)


class TestWarmPool:
    def test_pool_persists_across_batches(self):
        traces = [record_trace("w%d" % i) for i in range(3)]
        tasks = [(t.label, t.to_text()) for t in traces]
        with WorkerPool(WorkerSpec(factory), workers=2,
                        timing=TimingPolicy.no_wait()) as pool:
            first, _ = pool.run(tasks)
            second, _ = pool.run(tasks)
            assert all(o.ok for o in first + second)
            # Same worker processes served both batches: no respawn.
            assert {o.worker_id for o in second} \
                <= {o.worker_id for o in first}
            assert pool.stats["batches"] == 2

    def test_batch_runner_borrows_a_pool_without_closing_it(self):
        traces = [record_trace("b%d" % i) for i in range(2)]
        with WorkerPool(WorkerSpec(factory), workers=2) as pool:
            runner = BatchRunner(factory, timing=TimingPolicy.no_wait(),
                                 pool=pool)
            one = runner.run(traces)
            two = runner.run(traces)
            assert one.complete and two.complete
            assert one.summary() == two.summary()
            # The borrowed pool is still live for the next campaign.
            assert pool.run([(t.label, t.to_text()) for t in traces],
                            engine_config={
                                "driver_config": None,
                                "timing": TimingPolicy.no_wait(),
                                "locator": None, "failure": None,
                                "retry": None})[0][0].ok

    def test_runner_policies_override_pool_defaults(self):
        # The pool was built with no policies; the borrowing runner's
        # no-wait timing must still reach the workers (a think-time
        # replay at default pacing would advance the virtual clock far
        # more than the recorded think times themselves).
        trace = record_trace("policy")
        with WorkerPool(WorkerSpec(factory), workers=1) as pool:
            batch = BatchRunner(factory, timing=TimingPolicy.no_wait(),
                                pool=pool).run([trace])
        assert batch.complete

    def test_crash_mid_chunk_requeues_the_inflight_trace(self, flag_path):
        traces = [record_trace("m%d" % i) for i in range(4)]
        tasks = [(t.label, t.to_text()) for t in traces]
        # One worker, one big head chunk: the crash lands mid-chunk; the
        # unstarted chunk-mates are re-queued untouched (one attempt)
        # and the in-flight trace is retried exactly once.
        with WorkerPool(
                WorkerSpec("tests.session.test_pool:crash_once_factory"),
                workers=1, timing=TimingPolicy.no_wait(),
                chunk_size=4) as pool:
            outcomes, _ = pool.run(tasks)
        assert all(o.ok for o in outcomes)
        assert sorted(o.attempts for o in outcomes) == [1, 1, 1, 2]


class TestSupervision:
    def test_requeue_once_end_to_end_hits_two_workers(self):
        # The full second hop: timeout -> requeue -> a *different*
        # worker -> second timeout -> final classified failure.
        trace = record_trace("stuck")
        with WorkerPool(
                WorkerSpec("tests.session.test_pool:hang_always_factory"),
                workers=2, timing=TimingPolicy.no_wait(),
                trace_timeout=0.4, kill_grace=0.3) as pool:
            (outcome,), _ = pool.run([(trace.label, trace.to_text())])
        assert not outcome.ok
        assert outcome.error_class == "TimeoutError"
        assert outcome.attempts == 2

    def test_two_containment_failures_quarantine_with_diagnosis(self):
        trace = record_trace("poison")
        with WorkerPool(
                WorkerSpec("tests.session.test_pool:crash_in_worker_factory"),
                workers=2, timing=TimingPolicy.no_wait()) as pool:
            (outcome,), _ = pool.run([(trace.label, trace.to_text())])
        assert not outcome.ok
        assert outcome.error_class == "WorkerCrashError"
        bundle = outcome.quarantined
        assert bundle is not None
        assert bundle["label"] == trace.label
        assert bundle["attempts"] == 2
        # Two *different* workers died on this trace.
        assert len(set(bundle["workers"])) == 2
        assert bundle["first_failure"]["error_class"] == "WorkerCrashError"
        assert isinstance(bundle["commands_completed"], int)
        assert isinstance(bundle["stderr_tail"], str)
        assert pool.stats["quarantined"] == 1

    def test_sigterm_masking_worker_is_reaped_by_kill_escalation(self):
        # Regression for the terminate-only reaper: a SIGTERM-ignoring
        # worker would survive terminate() and wedge _reap for the full
        # drain_timeout. The kill() escalation bounds it by kill_grace.
        trace = record_trace("masked")
        start = time.monotonic()
        with WorkerPool(
                WorkerSpec(
                    "tests.session.test_pool:sigterm_masking_hang_factory"),
                workers=1, timing=TimingPolicy.no_wait(),
                trace_timeout=0.4, kill_grace=0.3) as pool:
            (outcome,), _ = pool.run([(trace.label, trace.to_text())])
        elapsed = time.monotonic() - start
        assert not outcome.ok
        assert outcome.error_class == "TimeoutError"
        assert elapsed < 15, "SIGTERM-masking worker wedged the reaper"

    def test_lost_heartbeat_detected_without_a_trace_deadline(self):
        # SIGSTOP freezes the whole process (heartbeat thread included);
        # with no per-trace timeout configured, only the heartbeat watch
        # can notice. The stopped process also ignores SIGTERM, so this
        # exercises the kill() escalation too.
        trace = record_trace("frozen")
        with WorkerPool(
                WorkerSpec("tests.session.test_pool:sigstop_factory"),
                workers=1, timing=TimingPolicy.no_wait(),
                heartbeat=0.1, hang_timeout=0.6, kill_grace=0.2) as pool:
            (outcome,), _ = pool.run([(trace.label, trace.to_text())])
        assert not outcome.ok
        assert outcome.error_class == "WorkerHangError"
        assert pool.stats["hangs"] >= 1

    def test_breaker_degrades_to_in_process_execution(self):
        traces = [record_trace("d%d" % i) for i in range(3)]
        tasks = [(t.label, t.to_text()) for t in traces]
        with WorkerPool(
                WorkerSpec("tests.session.test_pool:crash_in_worker_factory"),
                workers=1, timing=TimingPolicy.no_wait(),
                supervision={"backoff_base": 0.01, "breaker_deaths": 2}) \
                as pool:
            with pytest.warns(RuntimeWarning, match="degraded"):
                outcomes, _ = pool.run(tasks)
        # Every worker attempt died; the breaker tripped and the
        # remainder ran inline in the parent (where the factory works).
        assert pool.stats["degraded"] == 1
        assert pool.supervisor.tripped
        done_inline = [o for o in outcomes if o.ok]
        assert done_inline and all(o.worker_id is None for o in done_inline)
        # Nothing was lost: every trace has a final outcome.
        assert all(o.ok or o.error_class for o in outcomes)

    def test_drain_cancels_queued_traces_but_finishes_inflight(self,
                                                               monkeypatch):
        monkeypatch.setenv("REPRO_SOAK_THROTTLE", "0.2")
        traces = [record_trace("g%d" % i) for i in range(6)]
        tasks = [(t.label, t.to_text()) for t in traces]
        finished = []
        with WorkerPool(WorkerSpec(factory), workers=1,
                        timing=TimingPolicy.no_wait(),
                        chunk_size=1) as pool:
            outcomes, _ = pool.run(
                tasks, on_outcome=finished.append,
                drain=lambda: len(finished) >= 1)
        completed = [o for o in outcomes if o.ok]
        cancelled = [o for o in outcomes if o.cancelled]
        assert completed, "drain must let in-flight traces finish"
        assert cancelled, "drain must recall queued traces"
        # Exactly-once accounting: every trace is either completed,
        # failed, or cancelled — never lost, never both.
        for outcome in outcomes:
            assert outcome.ok or outcome.cancelled or outcome.error_class
            assert not (outcome.ok and outcome.cancelled)

    def test_close_counts_abandoned_results(self):
        # Results a worker computed but the parent never collected must
        # be surfaced, not silently dropped by the close() drain.
        from repro.session.pool import _BatchState
        traces = [record_trace("a%d" % i) for i in range(2)]
        tasks = [(t.label, t.to_text()) for t in traces]
        pool = WorkerPool(WorkerSpec(factory), workers=1,
                          timing=TimingPolicy.no_wait(), chunk_size=2)
        pool.start()
        batch = _BatchState(pool._next_batch_id, tasks)
        pool._next_batch_id += 1
        pool._dispatch(batch, [0, 1], False, None)
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline \
                and pool._result_queue.qsize() < 2:
            time.sleep(0.05)
        pool.close()
        assert pool.stats["abandoned"] == 2, pool.stats


class TestResultDrain:
    def test_parent_sleeps_instead_of_polling_a_slow_worker(self):
        # Regression: the old pool polled the result queue on a 50ms
        # interval, burning parent CPU for the whole batch. The drain
        # now blocks on the queue pipe + worker sentinels, so a 1s
        # worker stall costs the parent a handful of wakeups, not ~20.
        trace = record_trace("slow")
        with WorkerPool(
                WorkerSpec("tests.session.test_pool:slow_start_factory"),
                workers=1, timing=TimingPolicy.no_wait()) as pool:
            outcomes, _ = pool.run([(trace.label, trace.to_text())])
        assert outcomes[0].ok
        assert pool.stats["wakeups"] <= 5, pool.stats


class TestMerging:
    def test_batch_report_merge_concatenates_and_sums(self):
        trace = record_trace("m")
        shards = []
        for hits in (3, 5):
            shard = BatchReport()
            report = ReplayReport(trace)
            shard.add(TraceRun("m-%d" % hits, trace, report))
            shard.perf_counters = {
                "xpath.compile": {"hits": hits, "misses": 1,
                                  "hit_rate": hits / (hits + 1.0)},
            }
            shards.append(shard)
        merged = BatchReport.merge(shards)
        assert merged.trace_count == 2
        assert [run.label for run in merged.runs] == ["m-3", "m-5"]
        counts = merged.perf_counters["xpath.compile"]
        assert counts["hits"] == 8
        assert counts["misses"] == 2
        assert counts["hit_rate"] == 0.8

    def test_perf_counter_merge_recomputes_hit_rate(self):
        merged = PerfCountersObserver.merge([
            {"a": {"hits": 1, "misses": 0, "hit_rate": 1.0}},
            {"a": {"hits": 0, "misses": 3, "hit_rate": 0.0},
             "b": {"hits": 0, "misses": 0, "hit_rate": None}},
        ])
        assert merged["a"] == {"hits": 1, "misses": 3, "hit_rate": 0.25}
        assert merged["b"]["hit_rate"] is None

    def test_perf_observer_refuses_to_pickle(self):
        with pytest.raises(TypeError, match="must not cross process"):
            pickle.dumps(PerfCountersObserver())
