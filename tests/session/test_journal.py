"""WJ1 run journal: round-trip, torn tails, resume, exactly-once.

The durability story rests on three properties pinned here:

1. **round-trip** — every record appended by :class:`RunJournal` comes
   back intact from :func:`read_journal`, reports included;
2. **torn-tail tolerance** — cutting a journal at *any* byte yields a
   readable prefix of the records that were written, never a crash and
   never an invented record (the property a crash mid-``fsync`` relies
   on);
3. **resume agreement** — a batch resumed from a journal produces the
   same :class:`BatchReport` content the original run produced, with
   the journal's exactly-once audit holding across the splice.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.session import journal as run_journal
from repro.session.batch import BatchRunner
from repro.session.journal import (
    FAILED,
    QUARANTINED,
    REPLAYED,
    JournalError,
    RunJournal,
    batch_config,
    read_journal,
    trace_digest,
    verify_config,
    verify_exactly_once,
)
from repro.session.policies import TimingPolicy
from tests.session.test_batch import factory, record_trace


def small_report(trace_text="#warr v1\nstart http://x/"):
    """A minimal but non-trivial ReplayReport.to_dict payload."""
    return {
        "trace": trace_text,
        "results": [
            {"command": "click //a 5", "status": "ok", "detail": None,
             "retries": 0, "error": None},
        ],
        "halted": False,
        "halt_reason": None,
        "halt_error": None,
        "page_errors": [],
        "final_url": "http://x/done",
        "recoveries": 0,
        "perf_counters": {},
        "net_fidelity": {"failed_fetches": 0, "timeouts": 0,
                         "tape_misses": 0},
    }


def build_journal(path, finishes=3):
    """A journal with config + one start/finish per trace + one event."""
    labels = ["trace-%d" % i for i in range(finishes)]
    digests = [trace_digest("text-%d" % i) for i in range(finishes)]
    with RunJournal.create(path, batch_config(labels, digests, "serial"),
                           fsync=False) as journal:
        for index, label in enumerate(labels):
            journal.start(index, label)
            journal.finish(index, label, REPLAYED, attempts=1,
                           report=small_report())
        journal.event("drain", reason="test")
    return labels


class TestRoundTrip:
    def test_full_record_vocabulary_round_trips(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        labels = ["a", "b", "c"]
        digests = [trace_digest(t) for t in ("ta", "tb", "tc")]
        config = batch_config(labels, digests, "pooled")
        report = small_report()
        diagnosis = {"label": "b", "attempts": 2, "workers": [0, 1]}
        with RunJournal.create(path, config, fsync=False) as journal:
            journal.start(0, "a")
            journal.finish(0, "a", REPLAYED, attempts=1, worker_id=0,
                           report=report)
            journal.start(1, "b")
            journal.start(1, "b", attempt=2)
            journal.finish(1, "b", QUARANTINED, attempts=2, worker_id=1,
                           error="worker died", error_class="WorkerCrashError",
                           diagnosis=diagnosis)
            journal.start(2, "c")
            journal.finish(2, "c", FAILED, error="timeout",
                           error_class="TimeoutError")
            journal.event("degraded", deaths=6)

        snapshot = read_journal(path)
        assert snapshot.config == config
        assert not snapshot.torn
        assert [(s.index, s.label, s.attempt) for s in snapshot.starts] \
            == [(0, "a", 1), (1, "b", 1), (1, "b", 2), (2, "c", 1)]

        by_index = snapshot.finish_by_index()
        assert by_index[0].status == REPLAYED
        assert by_index[0].worker_id == 0
        assert by_index[0].report == report
        assert by_index[1].status == QUARANTINED
        assert by_index[1].attempts == 2
        assert by_index[1].error == "worker died"
        assert by_index[1].error_class == "WorkerCrashError"
        assert by_index[1].diagnosis == diagnosis
        assert by_index[2].status == FAILED
        assert by_index[2].worker_id is None
        assert by_index[2].report is None
        assert [e.kind for e in snapshot.events] == ["degraded"]
        assert snapshot.events[0].payload == {"deaths": 6}

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bad.wj1")
        with open(path, "wb") as handle:
            handle.write(b"NOPE not a journal")
        with pytest.raises(JournalError, match="magic"):
            read_journal(path)

    def test_unknown_finish_status_rejected_at_write(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        with RunJournal.create(path, batch_config([], [], "serial"),
                               fsync=False) as journal:
            with pytest.raises(JournalError, match="status"):
                journal.finish(0, "x", "exploded")

    def test_closed_journal_refuses_appends(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        journal = RunJournal.create(path, batch_config([], [], "serial"),
                                    fsync=False)
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.start(0, "x")


class TestTornTail:
    def test_every_truncation_point_yields_a_readable_prefix(self, tmp_path):
        # The crash-safety property itself: chop the file at every byte
        # and the reader must deliver a prefix of the written records —
        # no exception, no record it never saw.
        path = str(tmp_path / "run.wj1")
        build_journal(path, finishes=3)
        with open(path, "rb") as handle:
            blob = handle.read()
        full = read_journal(path)
        torn_path = str(tmp_path / "torn.wj1")
        previous_finishes = 0
        for cut in range(len(run_journal.MAGIC), len(blob) + 1):
            with open(torn_path, "wb") as handle:
                handle.write(blob[:cut])
            snapshot = read_journal(torn_path)
            got = [(f.index, f.label, f.status) for f in snapshot.finishes]
            want = [(f.index, f.label, f.status) for f in full.finishes]
            assert got == want[:len(got)]
            # Records only ever accumulate as the cut moves right.
            assert len(got) >= previous_finishes
            previous_finishes = len(got)
            assert snapshot.truncated_bytes == cut - snapshot.valid_length

    def test_trailing_garbage_is_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        build_journal(path, finishes=2)
        with open(path, "ab") as handle:
            handle.write(b"\xff\xff\xff garbage from a crash")
        snapshot = read_journal(path)
        assert snapshot.torn
        assert len(snapshot.finishes) == 2

    def test_resume_truncates_the_torn_tail_physically(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        build_journal(path, finishes=2)
        intact = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(b"\x7f half a record")
        journal, snapshot = RunJournal.resume(path)
        assert snapshot.torn
        assert os.path.getsize(path) == intact
        # Appends after the splice must land on a record boundary and
        # keep the carried-over intern table valid.
        journal.finish(5, "trace-0", FAILED, error="late")
        journal.close()
        reread = read_journal(path)
        assert not reread.torn
        assert reread.finishes[-1].label == "trace-0"
        assert reread.finishes[-1].error == "late"


class TestConfigVerification:
    def test_matching_workload_accepted(self):
        config = batch_config(["a"], [trace_digest("t")], "serial")
        verify_config(config, ["a"], [trace_digest("t")])

    def test_missing_config_rejected(self):
        with pytest.raises(JournalError, match="config"):
            verify_config(None, ["a"], ["d"])

    def test_count_mismatch_rejected(self):
        config = batch_config(["a"], [trace_digest("t")], "serial")
        with pytest.raises(JournalError, match="submits 2"):
            verify_config(config, ["a", "b"],
                          [trace_digest("t"), trace_digest("u")])

    def test_label_mismatch_rejected(self):
        config = batch_config(["a"], [trace_digest("t")], "serial")
        with pytest.raises(JournalError, match="'b'"):
            verify_config(config, ["b"], [trace_digest("t")])

    def test_digest_mismatch_rejected(self):
        config = batch_config(["a"], [trace_digest("old")], "serial")
        with pytest.raises(JournalError, match="digest"):
            verify_config(config, ["a"], [trace_digest("new")])

    def test_mode_may_differ_between_runs(self, tmp_path):
        # A run crashed under a pool may be finished serially.
        path = str(tmp_path / "run.wj1")
        labels = ["a"]
        digests = [trace_digest("t")]
        RunJournal.create(path, batch_config(labels, digests, "pooled"),
                          fsync=False).close()
        journal, _ = RunJournal.resume(path, labels, digests)
        journal.close()


class TestExactlyOnce:
    def test_complete_journal_passes(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        labels = build_journal(path, finishes=3)
        verdict = verify_exactly_once(path, expected_labels=labels)
        assert verdict["exactly_once"]
        assert verdict["traces"] == verdict["finished"] == 3
        assert verdict["missing"] == [] and verdict["duplicates"] == []

    def test_missing_finish_fails(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        labels = ["a", "b"]
        digests = [trace_digest(t) for t in ("ta", "tb")]
        with RunJournal.create(path, batch_config(labels, digests, "serial"),
                               fsync=False) as journal:
            journal.finish(0, "a", REPLAYED)
        verdict = verify_exactly_once(path)
        assert not verdict["exactly_once"]
        assert verdict["missing"] == ["b"]

    def test_duplicate_finish_fails(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        labels = ["a"]
        digests = [trace_digest("ta")]
        with RunJournal.create(path, batch_config(labels, digests, "serial"),
                               fsync=False) as journal:
            journal.finish(0, "a", REPLAYED)
            journal.finish(0, "a", FAILED)
        verdict = verify_exactly_once(path)
        assert not verdict["exactly_once"]
        assert verdict["duplicates"] == ["a"]

    def test_label_mismatch_fails_when_expected_given(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        build_journal(path, finishes=2)
        verdict = verify_exactly_once(path, expected_labels=["x", "y"])
        assert not verdict["exactly_once"]
        assert verdict["labels_match"] is False


# -- property tests -----------------------------------------------------------

_label = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1, max_size=12)

_finish = st.tuples(
    st.integers(min_value=0, max_value=40),           # index
    _label,
    st.sampled_from((REPLAYED, FAILED, QUARANTINED)),
    st.integers(min_value=1, max_value=5),            # attempts
    st.none() | st.integers(min_value=0, max_value=7),  # worker_id
    st.booleans(),                                    # carries a report?
)


class TestJournalProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_finish, max_size=12))
    def test_arbitrary_finish_sequences_round_trip(self, finishes):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "run.wj1")
            config = batch_config([], [], "serial")
            with RunJournal.create(path, config, fsync=False) as journal:
                for index, label, status, attempts, worker, with_report \
                        in finishes:
                    journal.finish(
                        index, label, status, attempts=attempts,
                        worker_id=worker,
                        report=small_report() if with_report else None,
                        error=None if with_report else "boom",
                        error_class=None if with_report else "ReplayError")
            snapshot = read_journal(path)
            assert not snapshot.torn
            got = [(f.index, f.label, f.status, f.attempts, f.worker_id)
                   for f in snapshot.finishes]
            assert got == [(i, l, s, a, w)
                           for i, l, s, a, w, _ in finishes]
            for record, (_, _, _, _, _, with_report) in zip(
                    snapshot.finishes, finishes):
                if with_report:
                    assert record.report == small_report()
                else:
                    assert record.error == "boom"
                    assert record.error_class == "ReplayError"

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_finish, min_size=1, max_size=8),
           st.integers(min_value=0, max_value=10**6))
    def test_any_cut_point_is_a_prefix_read(self, finishes, seed):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "run.wj1")
            with RunJournal.create(path, batch_config([], [], "serial"),
                                   fsync=False) as journal:
                for index, label, status, attempts, worker, _ in finishes:
                    journal.finish(index, label, status, attempts=attempts,
                                   worker_id=worker)
            with open(path, "rb") as handle:
                blob = handle.read()
            cut = len(run_journal.MAGIC) \
                + seed % (len(blob) - len(run_journal.MAGIC) + 1)
            with open(path, "wb") as handle:
                handle.write(blob[:cut])
            snapshot = read_journal(path)
            want = [(i, l, s) for i, l, s, _, _, _ in finishes]
            got = [(f.index, f.label, f.status) for f in snapshot.finishes]
            assert got == want[:len(got)]


# -- journaled batches end-to-end ---------------------------------------------


class TestJournaledBatch:
    def _runner(self, journal=None, resume=False, build=None):
        return BatchRunner(build or factory, timing=TimingPolicy.no_wait(),
                           journal=journal, resume=resume)

    def test_journaled_run_passes_the_exactly_once_audit(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        traces = [record_trace("one"), record_trace("two")]
        batch = self._runner(journal=path).run(traces, labels=["one", "two"])
        assert batch.complete
        verdict = verify_exactly_once(path, expected_labels=["one", "two"])
        assert verdict["exactly_once"], verdict

    def test_resume_of_complete_journal_executes_nothing(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        traces = [record_trace("one"), record_trace("two")]
        labels = ["one", "two"]
        original = self._runner(journal=path).run(traces, labels=labels)

        built = []

        def spying_factory():
            browser = factory()
            built.append(browser)
            return browser

        resumed = self._runner(journal=path, resume=True,
                               build=spying_factory).run(traces, labels=labels)
        assert built == []
        assert resumed.complete
        assert resumed.resumed_count == 2
        # merge-agreement: the resumed report carries the same content.
        assert [run.report.to_dict() for run in resumed.runs] \
            == [run.report.to_dict() for run in original.runs]
        assert resumed.summary().startswith(
            original.summary().split(";")[0])

    def test_drained_run_resumes_only_the_remainder(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        traces = [record_trace("t%d" % i) for i in range(3)]
        labels = ["t0", "t1", "t2"]

        calls = []

        def drain_after_first():
            calls.append(None)
            return len(calls) > 1

        batch = self._runner(journal=path).run(
            traces, labels=labels, drain=drain_after_first)
        assert batch.drained
        assert batch.trace_count < 3
        done_before = len(read_journal(path).finishes)
        assert 0 < done_before < 3

        built = []

        def spying_factory():
            browser = factory()
            built.append(browser)
            return browser

        resumed = self._runner(journal=path, resume=True,
                               build=spying_factory).run(traces, labels=labels)
        assert resumed.complete
        assert resumed.trace_count == 3
        assert resumed.resumed_count == done_before
        assert len(built) == 3 - done_before
        verdict = verify_exactly_once(path, expected_labels=labels)
        assert verdict["exactly_once"], verdict

    def test_resume_rejects_a_different_workload(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        traces = [record_trace("one")]
        self._runner(journal=path).run(traces, labels=["one"])
        imposter = [record_trace("two")]
        with pytest.raises(JournalError, match="digest"):
            self._runner(journal=path, resume=True).run(imposter,
                                                        labels=["one"])

    def test_resume_without_existing_journal_starts_fresh(self, tmp_path):
        path = str(tmp_path / "run.wj1")
        traces = [record_trace("solo")]
        batch = self._runner(journal=path, resume=True).run(traces,
                                                            labels=["solo"])
        assert batch.complete
        assert batch.resumed_count == 0
        assert verify_exactly_once(path)["exactly_once"]
