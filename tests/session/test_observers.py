"""Stock observers and tool-specific event-stream consumers."""

from repro.baselines.fidelity import ReplayFidelityObserver
from repro.core.commands import ClickCommand, TypeCommand
from repro.core.trace import WarrTrace
from repro.session.engine import SessionEngine
from repro.session.events import EventStream, SessionEvent, SessionObserver
from repro.session.observers import EventLogObserver, PerfCountersObserver
from tests.browser.helpers import build_browser, url


class TestSessionObserverDispatch:
    def test_hooks_receive_matching_kinds(self):
        class Spy(SessionObserver):
            def __init__(self):
                self.located = []
                self.failed = []

            def on_located(self, event):
                self.located.append(event)

            def on_failed(self, event):
                self.failed.append(event)

        spy = Spy()
        stream = EventStream([spy])
        stream.emit(SessionEvent(SessionEvent.LOCATED))
        stream.emit(SessionEvent(SessionEvent.ACTED))
        stream.emit(SessionEvent(SessionEvent.FAILED))
        assert len(spy.located) == 1
        assert len(spy.failed) == 1

    def test_unknown_kind_is_ignored(self):
        stream = EventStream([SessionObserver()])
        stream.emit(SessionEvent("brand-new-kind"))  # must not raise

    def test_emit_order_is_subscription_order(self):
        order = []

        class Tagged(SessionObserver):
            def __init__(self, tag):
                self.tag = tag

            def on_event(self, event):
                order.append(self.tag)

        stream = EventStream([Tagged("first"), Tagged("second")])
        stream.emit(SessionEvent(SessionEvent.ACTED))
        assert order == ["first", "second"]


class TestEventLogObserver:
    def test_filtering_by_kind(self):
        log = EventLogObserver(kinds=[SessionEvent.FAILED])
        stream = EventStream([log])
        stream.emit(SessionEvent(SessionEvent.ACTED))
        stream.emit(SessionEvent(SessionEvent.FAILED))
        assert log.kinds_seen() == [SessionEvent.FAILED]


class TestPerfCountersObserver:
    def test_totals_sum_across_sessions(self):
        totals = PerfCountersObserver()
        stream = EventStream([totals])
        stream.emit(SessionEvent(SessionEvent.PERF_DELTA, data={
            "counters": {"xpath": {"hits": 3, "misses": 1}}}))
        stream.emit(SessionEvent(SessionEvent.PERF_DELTA, data={
            "counters": {"xpath": {"hits": 1, "misses": 1}}}))
        assert totals.sessions == 2
        summary = totals.summary()
        assert summary["xpath"]["hits"] == 4
        assert summary["xpath"]["misses"] == 2
        assert summary["xpath"]["hit_rate"] == 4 / 6


class TestReplayFidelityObserver:
    def test_scores_replayed_interactions(self):
        trace = WarrTrace(start_url=url("/"), commands=[
            ClickCommand('//input[@name="who"]', x=1, y=1),
            TypeCommand("//video", "x", 88),  # unresolvable -> not replayed
        ])
        browser = build_browser(developer_mode=True)
        scorer = ReplayFidelityObserver()
        SessionEngine(browser).run(trace, observers=[scorer])
        result = scorer.result()
        assert result.total == 2
        assert result.covered == 1
        assert result.label == "P"
        assert result.per_kind["click"] == (1, 1)
        assert result.per_kind["key"] == (0, 1)
