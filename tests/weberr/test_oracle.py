"""Oracles and verdicts."""

from repro.core.replayer import ReplayReport
from repro.core.trace import WarrTrace
from repro.util.errors import JSReferenceError
from repro.weberr.oracle import (
    CompositeOracle,
    ConsoleErrorOracle,
    PredicateOracle,
    ReplayCompletionOracle,
    Verdict,
)


def clean_report():
    return ReplayReport(WarrTrace())


def test_verdict_factories():
    assert Verdict.ok().passed
    failure = Verdict.bug("broken")
    assert not failure.passed
    assert failure.reason == "broken"


def test_console_oracle_passes_clean_report():
    verdict = ConsoleErrorOracle().judge(clean_report(), browser=None)
    assert verdict.passed


def test_console_oracle_fails_on_page_errors():
    report = clean_report()
    report.page_errors = [JSReferenceError("editorState is not defined")]
    verdict = ConsoleErrorOracle().judge(report, browser=None)
    assert not verdict.passed
    assert "editorState" in verdict.reason


def test_completion_oracle_detects_halt():
    report = clean_report()
    report.halted = True
    report.halt_reason = "no active client"
    verdict = ReplayCompletionOracle().judge(report, browser=None)
    assert not verdict.passed
    assert "no active client" in verdict.reason


def test_predicate_oracle_pass_fail_and_message():
    passing = PredicateOracle(lambda report, browser: True)
    failing = PredicateOracle(lambda report, browser: False,
                              description="state mismatch")
    message = PredicateOracle(lambda report, browser: "saved count wrong")
    assert passing.judge(clean_report(), None).passed
    assert failing.judge(clean_report(), None).reason == "state mismatch"
    assert message.judge(clean_report(), None).reason == "saved count wrong"


def test_predicate_oracle_none_is_pass():
    oracle = PredicateOracle(lambda report, browser: None)
    assert oracle.judge(clean_report(), None).passed


def test_composite_reports_first_failure():
    report = clean_report()
    report.halted = True
    report.halt_reason = "x"
    oracle = CompositeOracle([
        ConsoleErrorOracle(),
        ReplayCompletionOracle(),
        PredicateOracle(lambda r, b: False, description="late check"),
    ])
    verdict = oracle.judge(report, None)
    assert "x" in verdict.reason  # the completion oracle fired first


def test_composite_passes_when_all_pass():
    oracle = CompositeOracle([ConsoleErrorOracle(), ReplayCompletionOracle()])
    assert oracle.judge(clean_report(), None).passed
