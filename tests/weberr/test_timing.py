"""Timing-error injection."""

import pytest

from repro.core.commands import ClickCommand, TypeCommand
from repro.core.trace import WarrTrace
from repro.weberr.timing import TimingErrorInjector


def make_trace():
    return WarrTrace(start_url="http://x/", commands=[
        ClickCommand("//start", elapsed_ms=800),
        TypeCommand("//content", key="a", code=65, elapsed_ms=120),
        ClickCommand("//save", elapsed_ms=300),
    ])


def test_no_wait_zeroes_all_delays():
    name, variant = TimingErrorInjector(make_trace()).no_wait()
    assert name == "no-wait"
    assert all(c.elapsed_ms == 0 for c in variant)


def test_scaled_variant():
    _, variant = TimingErrorInjector(make_trace()).scaled(0.5)
    assert [c.elapsed_ms for c in variant] == [400, 60, 150]


def test_rush_single_command():
    _, variant = TimingErrorInjector(make_trace()).rush_command(0)
    assert [c.elapsed_ms for c in variant] == [0, 120, 300]


def test_rush_out_of_range():
    with pytest.raises(IndexError):
        TimingErrorInjector(make_trace()).rush_command(10)


def test_rush_each_command_produces_one_variant_per_command():
    variants = TimingErrorInjector(make_trace()).rush_each_command()
    assert len(variants) == 3
    for index, (name, variant) in enumerate(variants):
        assert str(index) in name
        zeroed = [i for i, c in enumerate(variant) if c.elapsed_ms == 0]
        assert zeroed == [index]


def test_stress_variants_include_no_wait_and_scales():
    variants = TimingErrorInjector(make_trace()).stress_variants(
        factors=(0.0, 0.25))
    names = [name for name, _ in variants]
    assert names[0] == "no-wait"
    assert any("0.25" in name for name in names)


def test_original_trace_never_mutated():
    trace = make_trace()
    injector = TimingErrorInjector(trace)
    injector.no_wait()
    injector.rush_each_command()
    assert [c.elapsed_ms for c in trace] == [800, 120, 300]
