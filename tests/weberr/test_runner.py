"""The WebErr pipeline end to end (on the Sites clone)."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.util.errors import JSReferenceError
from repro.weberr.runner import WebErr
from repro.workloads.sessions import sites_edit_session


def record_trace():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="Ok")
    return recorder.trace


def factory():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


@pytest.fixture(scope="module")
def trace():
    return record_trace()


class TestTimingCampaign:
    def test_finds_the_google_sites_bug(self, trace):
        """The paper's Section V-C result, reproduced end to end."""
        weberr = WebErr(factory)
        report = weberr.run_timing_campaign(trace)
        assert report.bugs
        no_wait = next(o for o in report.outcomes
                       if o.description == "no-wait")
        assert no_wait.found_bug
        assert "editorState" in no_wait.verdict.reason

    def test_bug_is_a_reference_error(self, trace):
        weberr = WebErr(factory)
        report = weberr.run_timing_campaign(trace)
        buggy = report.bugs[0]
        assert any(isinstance(e, JSReferenceError)
                   for e in buggy.report.page_errors)

    def test_max_tests_caps_campaign(self, trace):
        weberr = WebErr(factory, max_tests=1)
        report = weberr.run_timing_campaign(trace)
        assert report.tests_run == 1


class TestNavigationCampaign:
    def test_campaign_runs_and_reports(self, trace):
        weberr = WebErr(factory, max_tests=12)
        report = weberr.run_navigation_campaign(trace, label="EditSite")
        assert report.tests_run > 0
        assert report.tests_run <= 12
        summary = report.summary()
        assert "tests run" in summary

    def test_fresh_environment_per_test(self, trace):
        """Injected errors must not contaminate later tests: the patient
        baseline replay still passes after a buggy campaign."""
        weberr = WebErr(factory, max_tests=6)
        weberr.run_navigation_campaign(trace, label="EditSite")
        outcome = weberr.replay_and_judge("baseline", trace)
        assert not outcome.found_bug

    def test_focus_rules_limit_tests(self, trace):
        everything = WebErr(factory).run_navigation_campaign(
            record_trace(), label="EditSite")
        _, grammar = WebErr(factory).infer(trace, label="EditSite")
        step_rules = [name for name in grammar.rule_names()
                      if name.startswith("Step")][:1]
        focused = WebErr(factory, focus_rules=step_rules)
        focused_report = focused.run_navigation_campaign(trace,
                                                         label="EditSite")
        assert focused_report.tests_run < everything.tests_run


class TestRunBoth:
    def test_run_returns_both_reports(self, trace):
        weberr = WebErr(factory, max_tests=5)
        navigation, timing = weberr.run(trace, label="EditSite")
        assert navigation.tests_run > 0
        assert timing.tests_run > 0
