"""Trace generation with the two pruning heuristics."""

from repro.core.commands import ClickCommand
from repro.core.trace import WarrTrace
from repro.weberr.generator import PrefixFailureCache, TraceGenerator
from repro.weberr.grammar import Grammar, Rule, Terminal


def click(name):
    return ClickCommand("//%s" % name, x=0, y=0)


def grammar_with(symbols, name="Task"):
    grammar = Grammar(name, start_url="http://x/")
    grammar.add_rule(Rule(name, [Terminal(c) for c in symbols]))
    return grammar


class TestPrefixFailureCache:
    def test_exact_prefix_dooms_extension(self):
        cache = PrefixFailureCache()
        cache.record_failure([click("a"), click("b")])
        assert cache.is_doomed([click("a"), click("b"), click("c")])

    def test_prefix_of_failure_is_not_doomed(self):
        cache = PrefixFailureCache()
        cache.record_failure([click("a"), click("b")])
        assert not cache.is_doomed([click("a")])

    def test_divergent_trace_not_doomed(self):
        cache = PrefixFailureCache()
        cache.record_failure([click("a"), click("b")])
        assert not cache.is_doomed([click("a"), click("x"), click("b")])

    def test_hit_counter(self):
        cache = PrefixFailureCache()
        cache.record_failure([click("a")])
        cache.is_doomed([click("a"), click("b")])
        cache.is_doomed([click("z")])
        assert cache.hits == 1
        assert cache.recorded == 1

    def test_empty_failure_dooms_everything(self):
        cache = PrefixFailureCache()
        cache.record_failure([])
        assert cache.is_doomed([click("anything")])


class TestTraceGenerator:
    def test_traces_expand_grammar_variants(self):
        generator = TraceGenerator()
        variants = [("v1", grammar_with([click("a")])),
                    ("v2", grammar_with([click("b")]))]
        produced = list(generator.traces(variants))
        assert [d for d, _ in produced] == ["v1", "v2"]
        assert all(isinstance(t, WarrTrace) for _, t in produced)
        assert generator.generated == 2

    def test_labels_carry_description(self):
        generator = TraceGenerator()
        (_, trace), = generator.traces([("forget X", grammar_with([click("a")]))])
        assert trace.label == "forget X"

    def test_max_traces_cap(self):
        generator = TraceGenerator(max_traces=1)
        variants = [("v%d" % i, grammar_with([click("c%d" % i)]))
                    for i in range(5)]
        assert len(list(generator.traces(variants))) == 1

    def test_failed_prefix_prunes_later_variants(self):
        """The paper's first reduction heuristic."""
        generator = TraceGenerator()
        doomed_grammar = grammar_with([click("bad"), click("rest")])
        same_prefix = grammar_with([click("bad"), click("other")])
        produced = list(generator.traces([("first", doomed_grammar)]))
        _, failed_trace = produced[0]
        generator.report_failure(failed_trace, 0)  # first command failed
        remaining = list(generator.traces([("second", same_prefix)]))
        assert remaining == []
        assert generator.pruned == 1

    def test_pruning_disabled(self):
        generator = TraceGenerator(prune_failed_prefixes=False)
        trace = WarrTrace(commands=[click("bad")])
        generator.report_failure(trace, 0)  # no-op
        produced = list(generator.traces(
            [("v", grammar_with([click("bad")]))]))
        assert len(produced) == 1
