"""Property-based tests for grammar error-injection operators."""

from hypothesis import given, settings, strategies as st

from repro.core.commands import ClickCommand, TypeCommand
from repro.weberr.grammar import Grammar, Rule, Terminal
from repro.weberr.navigation import (
    NavigationErrorInjector,
    forget_step,
)


@st.composite
def grammars(draw):
    """Two-level grammars: Task -> steps, each step -> terminals."""
    step_count = draw(st.integers(1, 4))
    grammar = Grammar("Task", start_url="http://x/")
    step_names = ["Step%d" % index for index in range(step_count)]
    grammar.add_rule(Rule("Task", list(step_names)))
    for index, name in enumerate(step_names):
        terminal_count = draw(st.integers(1, 5))
        terminals = []
        for t in range(terminal_count):
            if draw(st.booleans()):
                terminals.append(Terminal(ClickCommand(
                    "//el%d_%d" % (index, t), x=t, y=t, elapsed_ms=10)))
            else:
                terminals.append(Terminal(TypeCommand(
                    "//field%d" % index, key="a", code=65, elapsed_ms=5)))
        grammar.add_rule(Rule(name, terminals))
    return grammar


@given(grammars())
@settings(max_examples=40, deadline=None)
def test_forget_shrinks_expansion(grammar):
    baseline = len(grammar.expand())
    for name in grammar.rule_names():
        rule = grammar.rule(name)
        if rule.is_empty():
            continue
        variant = grammar.with_rule(forget_step(rule))
        assert len(variant.expand()) < baseline


@given(grammars(), st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_reorder_preserves_command_multiset(grammar, index):
    injector = NavigationErrorInjector(grammar)
    variants = list(injector.reorder_variants())
    if not variants:
        return
    _, variant = variants[index % len(variants)]
    original_lines = sorted(c.to_line() for c in grammar.expand())
    mutated_lines = sorted(c.to_line() for c in variant.expand())
    assert original_lines == mutated_lines


@given(grammars())
@settings(max_examples=40, deadline=None)
def test_reorder_changes_order_when_symbols_differ(grammar):
    injector = NavigationErrorInjector(grammar)
    original = [c.to_line() for c in grammar.expand()]
    for _, variant in injector.reorder_variants():
        mutated = [c.to_line() for c in variant.expand()]
        assert len(mutated) == len(original)


@given(grammars())
@settings(max_examples=40, deadline=None)
def test_substitution_preserves_rule_symbol_count(grammar):
    """Substitution swaps one symbol for another — the mutated rule has
    the same arity (expansion length may change: the substituted
    sub-step may be bigger or smaller than what it replaced)."""
    injector = NavigationErrorInjector(grammar)
    for description, variant in injector.substitution_variants():
        rule_name = description.split()[1].split("@")[0]
        assert len(variant.rule(rule_name).symbols) == \
            len(grammar.rule(rule_name).symbols)


@given(grammars())
@settings(max_examples=40, deadline=None)
def test_variants_never_mutate_the_base_grammar(grammar):
    snapshot = [c.to_line() for c in grammar.expand()]
    injector = NavigationErrorInjector(grammar)
    for _, _variant in injector.all_variants():
        pass
    assert [c.to_line() for c in grammar.expand()] == snapshot


@given(grammars())
@settings(max_examples=40, deadline=None)
def test_variant_traces_share_start_url(grammar):
    injector = NavigationErrorInjector(grammar)
    for _, variant in injector.all_variants():
        assert variant.to_trace().start_url == "http://x/"
