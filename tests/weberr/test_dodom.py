"""DoDOM-style invariant mining and checking."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.dom.parser import parse_html
from repro.weberr.dodom import (
    DomInvariantMiner,
    DomInvariantOracle,
    DomInvariants,
    _structure_sets,
)
from repro.weberr.runner import WebErr
from repro.workloads.sessions import sites_edit_session


def record_trace():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="Hi")
    return recorder.trace


def factory():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


class TestInvariantChecking:
    def test_page_satisfies_its_own_structure(self):
        doc = parse_html('<div id="a"><p>x</p></div>')
        nodes, edges = _structure_sets(doc)
        invariants = DomInvariants(nodes, edges, runs=1)
        assert invariants.check(doc) == []

    def test_missing_node_reported(self):
        full = parse_html('<div id="a"><p>x</p><span id="s">y</span></div>')
        nodes, edges = _structure_sets(full)
        invariants = DomInvariants(nodes, edges, runs=1)
        broken = parse_html('<div id="a"><p>x</p></div>')
        violations = invariants.check(broken)
        assert violations
        assert any("span" in violation for violation in violations)

    def test_extra_content_is_allowed(self):
        """Invariants constrain what must exist, not what may be added —
        the DOM 'is free to extensively change' around them."""
        base = parse_html('<div id="a"><p>x</p></div>')
        nodes, edges = _structure_sets(base)
        invariants = DomInvariants(nodes, edges, runs=1)
        grown = parse_html('<div id="a"><p>x</p><ul><li>new</li></ul></div>')
        assert invariants.check(grown) == []


class TestMining:
    def test_mining_produces_checkable_invariants(self):
        trace = record_trace()
        miner = DomInvariantMiner(factory, runs=2)
        invariants = miner.mine(trace)
        assert invariants.runs == 2
        assert len(invariants.nodes) > 0
        # A clean replay's final page satisfies the mined invariants.
        browser = factory()
        WarrReplayer(browser).replay(trace)
        assert invariants.check(browser.active_tab.document) == []

    def test_mining_rejects_failing_replays(self):
        trace = record_trace()
        trace.start_url = "http://nowhere.example/"
        with pytest.raises(RuntimeError):
            DomInvariantMiner(factory, runs=1).mine(trace)

    def test_runs_must_be_positive(self):
        with pytest.raises(ValueError):
            DomInvariantMiner(factory, runs=0)


class TestOracleIntegration:
    def test_oracle_passes_clean_replay(self):
        trace = record_trace()
        invariants = DomInvariantMiner(factory, runs=2).mine(trace)
        weberr = WebErr(factory, oracle=DomInvariantOracle(invariants))
        outcome = weberr.replay_and_judge("baseline", trace)
        assert not outcome.found_bug

    def test_oracle_catches_silently_wrong_page(self):
        """A timing error keeps the user on the editor page (the save
        never fires), so the final page violates the invariants mined
        from correct runs — caught even if one ignores console errors."""
        trace = record_trace()
        invariants = DomInvariantMiner(factory, runs=2).mine(trace)
        browser = factory()
        report = WarrReplayer(browser,
                              timing=TimingMode.no_wait()).replay(trace)
        verdict = DomInvariantOracle(invariants).judge(report, browser)
        assert not verdict.passed
        assert "invariant" in verdict.reason
