"""Task-tree and grammar inference from recorded traces."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.sites import SitesApplication
from repro.apps.portal import PortalApplication
from repro.core.recorder import WarrRecorder
from repro.weberr.inference import TaskNode, TaskTreeBuilder, infer_grammar
from repro.workloads.sessions import (
    portal_authenticate_session,
    sites_edit_session,
)


def record_sites_trace():
    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="Hi!")
    return recorder.trace


def sites_factory():
    browser, _ = make_browser([SitesApplication], developer_mode=True)
    return browser


@pytest.fixture(scope="module")
def sites_tree_and_grammar():
    trace = record_sites_trace()
    builder = TaskTreeBuilder(sites_factory)
    tree = builder.build(trace, label="EditSite")
    grammar = infer_grammar(tree, trace.start_url)
    return trace, tree, grammar


class TestTaskTree:
    def test_root_is_the_task(self, sites_tree_and_grammar):
        _, tree, _ = sites_tree_and_grammar
        assert tree.kind == TaskNode.TASK
        assert tree.name == "EditSite"

    def test_second_level_is_phases(self, sites_tree_and_grammar):
        _, tree, _ = sites_tree_and_grammar
        assert tree.children
        assert all(child.kind == TaskNode.PHASE for child in tree.children)

    def test_third_level_splits_on_element_change(self, sites_tree_and_grammar):
        """Steps: click start / type into content / click Save."""
        _, tree, _ = sites_tree_and_grammar
        edit_phase = tree.children[0]
        assert len(edit_phase.children) == 3
        xpaths = [step.xpath for step in edit_phase.children]
        assert 'start' in xpaths[0]
        assert 'content' in xpaths[1]
        assert 'Save' in xpaths[2]

    def test_consecutive_keystrokes_grouped(self, sites_tree_and_grammar):
        _, tree, _ = sites_tree_and_grammar
        typing_step = tree.children[0].children[1]
        assert len(typing_step.commands) == 3  # H, i, !

    def test_leaf_commands_reconstruct_trace(self, sites_tree_and_grammar):
        trace, tree, _ = sites_tree_and_grammar
        assert tree.leaf_commands() == list(trace.commands)

    def test_pretty_renders_figure6_style(self, sites_tree_and_grammar):
        _, tree, _ = sites_tree_and_grammar
        rendering = tree.pretty()
        assert "EditSite" in rendering.splitlines()[0]
        assert "Step" in rendering


class TestInferredGrammar:
    def test_grammar_round_trips_the_trace(self, sites_tree_and_grammar):
        trace, _, grammar = sites_tree_and_grammar
        assert grammar.to_trace().commands == list(trace.commands)

    def test_start_rule_named_after_task(self, sites_tree_and_grammar):
        _, _, grammar = sites_tree_and_grammar
        assert grammar.start == "EditSite"

    def test_rules_cover_phases_and_steps(self, sites_tree_and_grammar):
        _, tree, grammar = sites_tree_and_grammar
        assert len(grammar.rules) >= 1 + len(tree.children)


class TestMultiPageInference:
    def test_navigation_splits_phases(self):
        browser, _ = make_browser([PortalApplication])
        recorder = WarrRecorder().attach(browser)
        recorder.begin("http://portal.example.com/")
        portal_authenticate_session(browser)
        trace = recorder.trace

        def factory():
            fresh, _ = make_browser([PortalApplication], developer_mode=True)
            return fresh

        tree = TaskTreeBuilder(factory).build(trace, label="Authenticate")
        # Login page phase + portal home phase.
        assert len(tree.children) == 2
        # Every command still accounted for.
        assert len(tree.leaf_commands()) == len(trace)

    def test_grammar_names_unique_across_phases(self):
        browser, _ = make_browser([PortalApplication])
        recorder = WarrRecorder().attach(browser)
        recorder.begin("http://portal.example.com/")
        portal_authenticate_session(browser)

        def factory():
            fresh, _ = make_browser([PortalApplication], developer_mode=True)
            return fresh

        tree = TaskTreeBuilder(factory).build(recorder.trace, label="Auth")
        grammar = infer_grammar(tree, recorder.trace.start_url)
        assert grammar.to_trace().commands == list(recorder.trace.commands)
