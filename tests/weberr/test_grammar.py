"""User-interaction grammars: structure, expansion, copies."""

import pytest

from repro.core.commands import ClickCommand, TypeCommand
from repro.util.errors import GrammarError
from repro.weberr.grammar import Grammar, Rule, Terminal


def click(name):
    return Terminal(ClickCommand("//%s" % name, x=1, y=1, elapsed_ms=10))


def make_grammar():
    grammar = Grammar("EditSite", start_url="http://s/")
    grammar.add_rule(Rule("EditSite", ["Authenticate", "Edit"]))
    grammar.add_rule(Rule("Authenticate", [click("login"), click("submit")]))
    grammar.add_rule(Rule("Edit", [click("start"), "TypeText", click("save")]))
    grammar.add_rule(Rule("TypeText", [
        Terminal(TypeCommand("//content", key="H", code=72, elapsed_ms=5)),
        Terminal(TypeCommand("//content", key="i", code=73, elapsed_ms=5)),
    ]))
    return grammar


class TestStructure:
    def test_duplicate_rule_rejected(self):
        grammar = make_grammar()
        with pytest.raises(GrammarError):
            grammar.add_rule(Rule("Edit", []))

    def test_unknown_rule_lookup(self):
        with pytest.raises(GrammarError):
            make_grammar().rule("Ghost")

    def test_rule_names_sorted(self):
        assert make_grammar().rule_names() == [
            "Authenticate", "Edit", "EditSite", "TypeText"]

    def test_terminal_requires_command(self):
        with pytest.raises(TypeError):
            Terminal("not a command")

    def test_terminal_count(self):
        assert make_grammar().terminal_count() == 6


class TestExpansion:
    def test_expand_flattens_in_order(self):
        commands = make_grammar().expand()
        assert [c.xpath for c in commands] == [
            "//login", "//submit", "//start", "//content", "//content",
            "//save"]

    def test_expand_returns_copies(self):
        grammar = make_grammar()
        first = grammar.expand()
        first[0].x = 999
        second = grammar.expand()
        assert second[0].x == 1

    def test_to_trace_carries_url(self):
        trace = make_grammar().to_trace(label="test")
        assert trace.start_url == "http://s/"
        assert trace.label == "test"
        assert len(trace) == 6

    def test_recursion_detected(self):
        grammar = Grammar("A")
        grammar.add_rule(Rule("A", ["B"]))
        grammar.add_rule(Rule("B", ["A"]))
        with pytest.raises(GrammarError):
            grammar.expand()

    def test_empty_rule_contributes_nothing(self):
        grammar = make_grammar()
        grammar.rules["TypeText"] = Rule("TypeText", [])
        assert len(grammar.expand()) == 4


class TestCopies:
    def test_copy_is_independent(self):
        grammar = make_grammar()
        clone = grammar.copy()
        clone.rules["Edit"].symbols.pop()
        assert len(grammar.rules["Edit"].symbols) == 3

    def test_with_rule_replaces_one_rule(self):
        grammar = make_grammar()
        variant = grammar.with_rule(Rule("TypeText", []))
        assert len(variant.expand()) == 4
        assert len(grammar.expand()) == 6

    def test_with_rule_unknown_name_rejected(self):
        with pytest.raises(GrammarError):
            make_grammar().with_rule(Rule("Ghost", []))


class TestPretty:
    def test_pretty_starts_with_start_rule(self):
        listing = make_grammar().pretty()
        assert listing.splitlines()[0].startswith("Rule(EditSite")

    def test_empty_rule_shows_epsilon(self):
        rule = Rule("Forgotten", [])
        assert "ε" in repr(rule)
