"""DOM-shape similarity."""


from repro.dom.parser import parse_html
from repro.weberr.similarity import (
    dom_shape_similarity,
    page_signature,
    signature_similarity,
)


def test_identical_pages_score_one():
    html = '<div id="a"><p>x</p></div>'
    assert dom_shape_similarity(parse_html(html), parse_html(html)) == 1.0


def test_unrelated_pages_score_low():
    a = parse_html("<table><tr><td>x</td></tr></table>")
    b = parse_html("<ul><li>1</li><li>2</li><li>3</li></ul>")
    assert dom_shape_similarity(a, b) < 0.5


def test_small_text_change_scores_high():
    a = parse_html('<div id="main"><p>hello</p><ul><li>1</li></ul></div>')
    b = parse_html('<div id="main"><p>goodbye</p><ul><li>1</li></ul></div>')
    assert dom_shape_similarity(a, b) == 1.0  # text is not shape


def test_id_changes_lower_similarity():
    a = parse_html('<div id="one"><p>x</p></div>')
    b = parse_html('<div id="two"><p>x</p></div>')
    score = dom_shape_similarity(a, b)
    assert 0.0 < score < 1.0


def test_structural_growth_lowers_similarity_gradually():
    base = '<div id="m">' + "<p>x</p>" * 3 + "</div>"
    grown = '<div id="m">' + "<p>x</p>" * 30 + "</div>"
    slightly = '<div id="m">' + "<p>x</p>" * 4 + "</div>"
    a, b, c = parse_html(base), parse_html(grown), parse_html(slightly)
    assert dom_shape_similarity(a, c) > dom_shape_similarity(a, b)


def test_similarity_symmetric():
    a = parse_html('<div><span id="s">x</span></div>')
    b = parse_html("<div><p>y</p><p>z</p></div>")
    assert dom_shape_similarity(a, b) == dom_shape_similarity(b, a)


def test_signature_reuse():
    a = parse_html("<div><p>x</p></div>")
    signature = page_signature(a)
    assert signature_similarity(signature, signature) == 1.0


def test_depth_is_part_of_shape():
    flat = parse_html("<div></div><div></div>")
    nested = parse_html("<div><div></div></div>")
    assert dom_shape_similarity(flat, nested) < 1.0


def test_signature_counts_repeated_shapes():
    nodes, edges = page_signature(parse_html("<ul><li>a</li><li>b</li></ul>"))
    li_keys = [k for k in nodes if k[1] == "li"]
    assert len(li_keys) == 1
    assert nodes[li_keys[0]] == 2
