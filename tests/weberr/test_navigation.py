"""Navigation-error operators and the variant enumerator."""

import pytest

from repro.core.commands import ClickCommand, TypeCommand
from repro.weberr.grammar import Grammar, Rule, Terminal
from repro.weberr.navigation import (
    NavigationErrorInjector,
    forget_step,
    reorder_steps,
    substitute_step,
    substitute_typo,
)


def click(name):
    return Terminal(ClickCommand("//%s" % name, x=0, y=0))


def keystroke(key, code):
    return Terminal(TypeCommand("//field", key=key, code=code))


def make_grammar():
    grammar = Grammar("Task", start_url="http://x/")
    grammar.add_rule(Rule("Task", ["StepA", "StepB"]))
    grammar.add_rule(Rule("StepA", [click("one"), click("two")]))
    grammar.add_rule(Rule("StepB", [keystroke("h", 72), keystroke("i", 73)]))
    return grammar


class TestOperators:
    def test_forget_empties_rule(self):
        rule = make_grammar().rule("StepA")
        assert forget_step(rule).symbols == []
        assert rule.symbols  # original untouched

    def test_reorder_swaps_adjacent(self):
        rule = make_grammar().rule("StepA")
        swapped = reorder_steps(rule, 0)
        assert swapped.symbols == [rule.symbols[1], rule.symbols[0]]

    def test_reorder_out_of_range(self):
        with pytest.raises(IndexError):
            reorder_steps(make_grammar().rule("StepA"), 5)

    def test_substitute_replaces_symbol(self):
        rule = make_grammar().rule("StepA")
        replaced = substitute_step(rule, 0, rule.symbols[1])
        assert replaced.symbols[0] == rule.symbols[1]

    def test_substitute_out_of_range(self):
        with pytest.raises(IndexError):
            substitute_step(make_grammar().rule("StepA"), 9, None)

    def test_substitute_typo_changes_keystroke(self):
        rule = make_grammar().rule("StepB")
        typo = substitute_typo(rule, 0, "g")
        command = typo.symbols[0].command
        assert command.key == "g"
        assert command.code == 71
        assert command.xpath == "//field"

    def test_substitute_typo_rejects_non_keystroke(self):
        with pytest.raises(TypeError):
            substitute_typo(make_grammar().rule("StepA"), 0, "g")


class TestInjectorEnumeration:
    def test_forget_variant_per_nonempty_rule(self):
        injector = NavigationErrorInjector(make_grammar())
        variants = list(injector.forget_variants())
        assert len(variants) == 3  # Task, StepA, StepB

    def test_forget_variant_expands_without_rule(self):
        injector = NavigationErrorInjector(make_grammar())
        variants = dict(injector.forget_variants())
        shrunk = variants["forget StepB"]
        assert len(shrunk.expand()) == 2  # only StepA's clicks

    def test_reorder_variant_per_adjacent_pair(self):
        injector = NavigationErrorInjector(make_grammar())
        variants = list(injector.reorder_variants())
        # Task has 1 pair, StepA 1, StepB 1.
        assert len(variants) == 3

    def test_substitution_never_crosses_rules(self):
        """Paper: 'never performs cross-rule error injection'."""
        injector = NavigationErrorInjector(make_grammar())
        for description, grammar in injector.substitution_variants():
            rule_name = description.split()[1].split("@")[0]
            mutated = grammar.rule(rule_name)
            original = make_grammar().rule(rule_name)
            for symbol in mutated.symbols:
                assert symbol in original.symbols

    def test_typo_variants_target_keystrokes_only(self):
        injector = NavigationErrorInjector(make_grammar())
        variants = list(injector.typo_variants())
        assert len(variants) == 2  # h and i each get one neighbour typo
        for description, grammar in variants:
            assert "StepB" in description

    def test_focus_rules_restrict_injection(self):
        injector = NavigationErrorInjector(make_grammar(),
                                           focus_rules=["StepB"])
        descriptions = [d for d, _ in injector.all_variants()]
        assert all("StepB" in d for d in descriptions)

    def test_focus_with_unknown_rule_is_empty(self):
        injector = NavigationErrorInjector(make_grammar(),
                                           focus_rules=["Ghost"])
        assert list(injector.all_variants()) == []

    def test_all_variants_ordering(self):
        injector = NavigationErrorInjector(make_grammar())
        descriptions = [d for d, _ in injector.all_variants()]
        first_forget = descriptions.index(
            next(d for d in descriptions if d.startswith("forget")))
        first_reorder = descriptions.index(
            next(d for d in descriptions if d.startswith("reorder")))
        first_substitute = descriptions.index(
            next(d for d in descriptions if d.startswith("substitute")))
        assert first_forget < first_reorder < first_substitute

    def test_variants_do_not_mutate_base_grammar(self):
        grammar = make_grammar()
        injector = NavigationErrorInjector(grammar)
        list(injector.all_variants())
        assert len(grammar.expand()) == 4
