"""Fiddler proxy baseline: traffic visibility and its limits."""

from repro.baselines.fiddler import FiddlerProxy
from tests.browser.helpers import build_browser, url


def test_captures_exchanges_in_window():
    browser = build_browser()
    proxy = FiddlerProxy(browser.network)
    browser.new_tab(url("/"))  # before begin(): not in window
    proxy.begin()
    tab = browser.active_tab
    tab.navigate(url("/about"))
    assert proxy.request_urls() == [url("/about")]


def test_http_bodies_visible():
    browser = build_browser()
    proxy = FiddlerProxy(browser.network).begin()
    browser.new_tab(url("/about"))
    assert any("about" in body for body in proxy.visible_bodies())


def test_https_bodies_opaque():
    """The paper's argument against proxy recorders under HTTPS."""
    browser = build_browser()
    proxy = FiddlerProxy(browser.network).begin()
    browser.new_tab("https://test.example/about")
    bodies = proxy.visible_bodies()
    assert len(bodies) == 1
    assert "about" not in bodies[0]
    assert "encrypted" in bodies[0]


def test_cannot_attribute_requests_to_user_actions():
    """A traffic log cannot distinguish load-time requests from
    user-caused ones — the honest answer is None (unknowable)."""
    browser = build_browser()
    proxy = FiddlerProxy(browser.network).begin()
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//a[text()="About"]'))
    # Two exchanges: initial load + user navigation. Indistinguishable.
    assert len(proxy.captured()) == 2
    assert proxy.user_action_count() is None
