"""UsaProxy baseline: injection mechanism and its two limitations."""


from repro.baselines.usaproxy import TRACKER_SCRIPT_NAME, UsaProxyRecorder
from repro.browser.window import Browser
from repro.net.http import HttpResponse
from repro.net.server import Network, RouteServer
from repro.scripting.registry import ScriptRegistry
from repro.util.clock import VirtualClock
from repro.util.event_loop import EventLoop

HOST = "app.example"


def make_upstream():
    server = RouteServer()
    server.add_route("/", lambda request: (
        '<html><head><title>App</title></head><body>'
        '<a href="/next" id="go">Next</a>'
        '<div id="pad" contenteditable></div>'
        '</body></html>'))
    server.add_route("/next", lambda request: (
        '<html><head><title>Next</title></head><body><p>done</p>'
        '</body></html>'))
    server.add_route("/data", lambda request: HttpResponse.json('{"x": 1}'))
    return server


def make_environment(break_https=False):
    loop = EventLoop(VirtualClock())
    network = Network(loop)
    registry = ScriptRegistry()
    proxy = UsaProxyRecorder(make_upstream(), break_https=break_https)
    proxy.install(network, registry, HOST)
    browser = Browser(network=network, script_registry=registry)
    return browser, proxy


class TestInjection:
    def test_tracker_injected_into_html(self):
        browser, proxy = make_environment()
        tab = browser.new_tab("http://%s/" % HOST)
        scripts = tab.document.get_elements_by_tag("script")
        assert any(s.get_attribute("data-script") == TRACKER_SCRIPT_NAME
                   for s in scripts)

    def test_clicks_tracked_on_instrumented_pages(self):
        browser, proxy = make_environment()
        tab = browser.new_tab("http://%s/" % HOST)
        tab.click_element(tab.find('//a[@id="go"]'))
        assert ("click", '//body/a[@id="go"]') in proxy.commands or \
            any(locator.endswith('a[@id="go"]')
                for _, locator in proxy.commands)

    def test_keystrokes_not_tracked(self):
        """Click tracking only: typing never reaches the proxy log."""
        browser, proxy = make_environment()
        tab = browser.new_tab("http://%s/" % HOST)
        tab.click_element(tab.find('//div[@id="pad"]'))
        tab.type_text("hello")
        assert all(action == "click" for action, _ in proxy.commands)
        assert len(proxy.commands) == 1


class TestLimitationNonHtml:
    def test_non_html_responses_pass_uninstrumented(self):
        browser, proxy = make_environment()
        response = browser.network.fetch("http://%s/data" % HOST)
        assert response.body == '{"x": 1}'  # untouched
        assert ("http://%s/data" % HOST, "non-html") in proxy.uninstrumented


class TestLimitationHttps:
    def test_https_pages_record_nothing(self):
        """'using proxies requires breaking the end-to-end security
        enforced by HTTPS' — without doing so, secure pages are blind."""
        browser, proxy = make_environment(break_https=False)
        tab = browser.new_tab("https://%s/" % HOST)
        tab.click_element(tab.find('//a[@id="go"]'))
        assert proxy.commands == []
        assert any(reason == "https" for _, reason in proxy.uninstrumented)
        assert not proxy.broke_encryption

    def test_breaking_https_works_but_is_flagged(self):
        browser, proxy = make_environment(break_https=True)
        tab = browser.new_tab("https://%s/" % HOST)
        tab.click_element(tab.find('//a[@id="go"]'))
        assert len(proxy.commands) == 1
        assert proxy.broke_encryption  # the privacy hazard, on record


class TestContrastWithWarr:
    def test_warr_records_https_without_mitm(self):
        """WaRR 'has access to the processed and decrypted HTML code ...
        and logs user actions on the user's machine' — no proxy, no
        broken encryption, full trace."""
        from repro.core.recorder import WarrRecorder

        browser, proxy = make_environment(break_https=False)
        warr = WarrRecorder().attach(browser)
        warr.begin("https://%s/" % HOST)
        tab = browser.new_tab("https://%s/" % HOST)
        tab.click_element(tab.find('//div[@id="pad"]'))
        tab.type_text("hi")
        assert len(warr.trace) == 3  # click + 2 keystrokes
        assert proxy.commands == []  # the proxy saw nothing
