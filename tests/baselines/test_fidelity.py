"""Fidelity scoring rules."""

from repro.baselines.fidelity import (
    ACTION_CLICK,
    ACTION_DOUBLECLICK,
    ACTION_DRAG,
    ACTION_KEY,
    COMPLETE,
    PARTIAL,
    evaluate_recording_fidelity,
)
from repro.baselines.selenium_ide import SeleniumCommand
from repro.core.commands import (
    ClickCommand,
    DoubleClickCommand,
    DragCommand,
    TypeCommand,
)
from repro.core.trace import WarrTrace
from repro.workloads.sessions import UserAction


def actions_for_form_login():
    return [
        UserAction(ACTION_CLICK, "input", is_focus_click=True),
        UserAction(ACTION_KEY, "input", into_value_control=True, key="j"),
        UserAction(ACTION_KEY, "input", into_value_control=True, key="o"),
        UserAction(ACTION_CLICK, "input"),  # submit button
    ]


def test_warr_complete_when_all_captured():
    actions = actions_for_form_login()
    trace = WarrTrace(commands=[
        ClickCommand("//input"), TypeCommand("//input", "j", 74),
        TypeCommand("//input", "o", 79), ClickCommand("//input"),
    ])
    warr, _ = evaluate_recording_fidelity(actions, trace, [])
    assert warr.label == COMPLETE
    assert warr.coverage == 1.0


def test_warr_partial_when_commands_missing():
    actions = actions_for_form_login()
    trace = WarrTrace(commands=[ClickCommand("//input")])
    warr, _ = evaluate_recording_fidelity(actions, trace, [])
    assert warr.label == PARTIAL
    assert warr.covered == 1


def test_selenium_type_covers_keystrokes_and_focus_click():
    actions = actions_for_form_login()
    selenium = [
        SeleniumCommand("type", "//input", "jo"),
        SeleniumCommand("click", "//input"),
    ]
    _, result = evaluate_recording_fidelity(actions, WarrTrace(), selenium)
    assert result.label == COMPLETE


def test_selenium_contenteditable_keys_not_credited():
    actions = [
        UserAction(ACTION_CLICK, "a"),
        UserAction(ACTION_KEY, "div", into_value_control=False, key="h"),
        UserAction(ACTION_KEY, "div", into_value_control=False, key="i"),
    ]
    selenium = [SeleniumCommand("click", "//a"),
                SeleniumCommand("type", "//somewhere", "hi")]
    _, result = evaluate_recording_fidelity(actions, WarrTrace(), selenium)
    # The 'hi' went into a div; Selenese type can't represent that.
    assert result.per_kind[ACTION_KEY] == (0, 2)
    assert result.label == PARTIAL


def test_selenium_never_covers_drags_or_doubleclicks():
    actions = [
        UserAction(ACTION_DRAG, "div"),
        UserAction(ACTION_DOUBLECLICK, "div"),
    ]
    _, result = evaluate_recording_fidelity(actions, WarrTrace(), [])
    assert result.covered == 0


def test_warr_covers_drags_and_doubleclicks():
    actions = [
        UserAction(ACTION_DRAG, "div"),
        UserAction(ACTION_DOUBLECLICK, "div"),
    ]
    trace = WarrTrace(commands=[
        DragCommand("//div", 1, 1), DoubleClickCommand("//div", 1, 1),
    ])
    warr, _ = evaluate_recording_fidelity(actions, trace, [])
    assert warr.label == COMPLETE


def test_extra_recorded_commands_do_not_overcount():
    actions = [UserAction(ACTION_CLICK, "a")]
    trace = WarrTrace(commands=[ClickCommand("//a"), ClickCommand("//a")])
    warr, _ = evaluate_recording_fidelity(actions, trace, [])
    assert warr.covered == 1
    assert warr.total == 1


def test_empty_session_is_trivially_complete():
    warr, selenium = evaluate_recording_fidelity([], WarrTrace(), [])
    assert warr.coverage == 1.0
    assert selenium.coverage == 1.0
