"""Selenium IDE simulation: what it records and what it misses."""

import pytest

from repro.baselines.selenium_ide import SeleniumCommand, SeleniumIDERecorder
from tests.browser.helpers import build_browser, url


@pytest.fixture
def recording():
    browser = build_browser()
    recorder = SeleniumIDERecorder().attach(browser).begin(url("/"))
    tab = browser.new_tab(url("/"))
    return browser, recorder, tab


class TestRecorded:
    def test_open_command_first(self, recording):
        _, recorder, _ = recording
        assert recorder.commands[0] == SeleniumCommand("open", url("/"))

    def test_link_click_recorded(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//a[text()="About"]'))
        actions = recorder.recorded_actions()
        assert len(actions) == 1
        assert actions[0].action == "click"

    def test_typed_value_recorded_on_blur(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//input[@name="who"]'))
        tab.type_text("Ada")
        # Value captured when focus leaves the field.
        tab.click_element(tab.find("//h1"))
        types = [c for c in recorder.recorded_actions() if c.action == "type"]
        assert len(types) == 1
        assert types[0].value == "Ada"

    def test_submit_click_recorded(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//input[@type="submit"]'))
        assert any(c.action == "click" for c in recorder.recorded_actions())

    def test_checkbox_click_recorded(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//input[@type="checkbox"]'))
        assert len(recorder.recorded_actions()) == 1


class TestMissed:
    def test_contenteditable_typing_missed(self, recording):
        """The structural blind spot behind Table II's 'Partial'."""
        _, recorder, tab = recording
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_text("invisible to selenium")
        tab.click_element(tab.find("//h1"))  # blur
        assert recorder.recorded_actions() == []

    def test_clicks_on_divs_missed(self, recording):
        _, recorder, tab = recording
        tab.click_element(tab.find('//span[@id="start"]'))
        tab.click_element(tab.find('//div[@id="box"]'))
        assert recorder.recorded_actions() == []

    def test_drags_missed(self, recording):
        _, recorder, tab = recording
        tab.drag_element(tab.find('//div[@id="widget"]'), 10, 10)
        assert recorder.recorded_actions() == []

    def test_dynamically_created_elements_missed(self, recording):
        """Elements added after the instrumentation pass are invisible."""
        _, recorder, tab = recording
        document = tab.document
        late_link = document.create_element("a", {"href": "/about"})
        late_link.text_content = "late"
        document.body.append_child(late_link)
        tab.engine.invalidate_layout()
        tab.click_element(late_link)
        assert all(c.action != "click" or "late" not in c.locator
                   for c in recorder.recorded_actions())

    def test_untrusted_clicks_ignored(self, recording):
        """Selenium IDE records user input, not script-dispatched events."""
        from repro.events.event import MouseEvent

        _, recorder, tab = recording
        link = tab.find('//a[text()="About"]')
        link.add_event_listener  # instrumented at load
        synthetic = MouseEvent("click")
        tab.engine.dispatch(link, synthetic)
        assert recorder.recorded_actions() == []


class TestLifecycle:
    def test_detach_stops_recording(self, recording):
        browser, recorder, tab = recording
        recorder.detach()
        tab.click_element(tab.find('//a[text()="About"]'))
        assert recorder.recorded_actions() == []

    def test_pages_loaded_after_attach_are_instrumented(self):
        browser = build_browser()
        recorder = SeleniumIDERecorder().attach(browser).begin(url("/"))
        tab = browser.new_tab(url("/"))
        tab.click_element(tab.find('//a[text()="About"]'))
        tab.back()
        tab.click_element(tab.find('//a[text()="About"]'))
        clicks = [c for c in recorder.recorded_actions() if c.action == "click"]
        assert len(clicks) == 2

    def test_command_line_rendering(self):
        assert SeleniumCommand("type", "//input", "abc").to_line() == \
            "type | //input | abc"
        assert SeleniumCommand("click", "//a").to_line() == "click | //a"
