"""The bench-trend perf ratchet (benchmarks/trend.py)."""

import io
import json
import os
import subprocess

import pytest

from benchmarks.trend import (
    DEFAULT_THRESHOLD,
    check_budgets,
    check_files,
    classify_metric,
    compare,
    extract_metrics,
)


class TestMetricExtraction:
    def test_naming_convention_drives_direction(self):
        assert classify_metric("commands_per_second") == "up"
        assert classify_metric("traces_per_second") == "up"
        assert classify_metric("speedup") == "up"
        assert classify_metric("disabled_profile_cost") == "down"
        assert classify_metric("chaos_off_overhead") == "down"
        assert classify_metric("commands") is None
        assert classify_metric("seconds") is None

    def test_nested_paths_and_booleans(self):
        metrics = extract_metrics({
            "replay": {"tracing_on_cost": 2.5,
                       "tracing_off_commands_per_second": 1000.0},
            "quick": True,       # bool is not a metric even if numeric-ish
            "commands": 42,
        })
        assert metrics == {
            "replay.tracing_on_cost": ("down", 2.5),
            "replay.tracing_off_commands_per_second": ("up", 1000.0),
        }

    def test_series_rows_are_keyed_by_identity_not_position(self):
        payload = {"series": [
            {"mode": "serial", "traces_per_second": 10.0},
            {"mode": "pool", "workers": 4, "traces_per_second": 30.0},
        ]}
        metrics = extract_metrics(payload)
        assert "series[mode=serial].traces_per_second" in metrics
        assert "series[mode=pool,workers=4].traces_per_second" in metrics
        # Reordering the rows produces the same metric names.
        reordered = extract_metrics({"series": payload["series"][::-1]})
        assert set(metrics) == set(reordered)

    def test_rows_sharing_a_mode_stay_distinct(self):
        # Two sweep points of the same backend must not collapse into
        # one metric (the id is a composite of every identity field).
        metrics = extract_metrics({"series": [
            {"mode": "sharded", "shards": 2, "traces_per_second": 8.0},
            {"mode": "sharded", "shards": 4, "traces_per_second": 9.0},
        ]})
        assert len(metrics) == 2
        assert "series[mode=sharded,shards=2].traces_per_second" in metrics
        assert "series[mode=sharded,shards=4].traces_per_second" in metrics


class TestCompare:
    def test_within_threshold_is_ok(self):
        records = compare({"x_per_second": 90.0}, {"x_per_second": 100.0})
        assert [r["status"] for r in records] == ["ok"]
        assert records[0]["change"] == pytest.approx(-0.10)

    def test_throughput_drop_beyond_threshold_regresses(self):
        records = compare({"x_per_second": 80.0}, {"x_per_second": 100.0})
        assert records[0]["status"] == "regressed"

    def test_cost_increase_regresses(self):
        # Lower-better metric: a cost going up is the regression.
        records = compare({"run_cost": 2.0}, {"run_cost": 1.0})
        assert records[0]["status"] == "regressed"
        records = compare({"run_cost": 0.5}, {"run_cost": 1.0})
        assert records[0]["status"] == "ok"

    def test_quick_vs_full_mode_skips_everything(self):
        records = compare({"quick": True, "x_per_second": 1.0},
                          {"x_per_second": 100.0})
        assert [r["status"] for r in records] == ["skipped"]
        assert records[0]["reason"] == "quick/full mode mismatch"

    def test_new_metric_without_baseline_skips(self):
        records = compare({"new_per_second": 5.0}, {"benchmark": "x"})
        assert records[0]["status"] == "skipped"
        assert records[0]["reason"] == "no baseline"

    def test_custom_threshold(self):
        current, baseline = {"x_per_second": 89.0}, {"x_per_second": 100.0}
        assert compare(current, baseline,
                       threshold=0.10)[0]["status"] == "regressed"
        assert compare(current, baseline,
                       threshold=DEFAULT_THRESHOLD)[0]["status"] == "ok"


class TestAbsoluteBudgets:
    def test_over_budget_is_a_violation(self):
        out = io.StringIO()
        payload = {"replay": {"tracing_on_cost": 0.12}}
        assert check_budgets("BENCH_telemetry.json", payload, out=out) == 1
        assert "OVER BUDGET" in out.getvalue()

    def test_under_budget_passes(self):
        payload = {"replay": {"tracing_on_cost": 0.06},
                   "guard": {"tracing_off_overhead": 0.01}}
        out = io.StringIO()
        assert check_budgets("BENCH_telemetry.json", payload, out=out) == 0
        assert "OVER BUDGET" not in out.getvalue()

    def test_quick_mode_numbers_are_not_load_bearing(self):
        payload = {"quick": True, "replay": {"tracing_on_cost": 0.5}}
        out = io.StringIO()
        assert check_budgets("BENCH_telemetry.json", payload, out=out) == 0
        assert "quick mode" in out.getvalue()

    def test_files_without_budgets_are_free(self):
        payload = {"replay": {"tracing_on_cost": 9.9}}
        assert check_budgets("BENCH_demo.json", payload) == 0

    def test_absent_metric_skips_with_a_note(self):
        out = io.StringIO()
        assert check_budgets("BENCH_telemetry.json",
                             {"benchmark": "telemetry"}, out=out) == 0
        assert "metric absent" in out.getvalue()


class TestCheckFiles:
    @pytest.fixture
    def bench_repo(self, tmp_path, monkeypatch):
        """A throwaway git repo with one committed BENCH file."""
        repo = tmp_path / "repo"
        repo.mkdir()
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"}
        for key, value in env.items():
            monkeypatch.setenv(key, value)

        def git(*args):
            subprocess.run(["git", *args], cwd=str(repo), check=True,
                           capture_output=True)

        git("init", "-q")
        path = repo / "BENCH_demo.json"
        path.write_text(json.dumps({"benchmark": "demo",
                                    "replay_per_second": 100.0}))
        git("add", "-A")
        git("commit", "-q", "-m", "baseline")
        monkeypatch.setattr("benchmarks.trend.REPO_ROOT", str(repo))
        return path

    def test_regression_is_counted(self, bench_repo):
        bench_repo.write_text(json.dumps({"benchmark": "demo",
                                          "replay_per_second": 50.0}))
        out = io.StringIO()
        assert check_files([str(bench_repo)], out=out) == 1
        assert "REGRESSED" in out.getvalue()

    def test_steady_numbers_pass(self, bench_repo):
        bench_repo.write_text(json.dumps({"benchmark": "demo",
                                          "replay_per_second": 99.0}))
        out = io.StringIO()
        assert check_files([str(bench_repo)], out=out) == 0
        assert "ok" in out.getvalue()

    def test_budget_gates_even_without_a_baseline(self, bench_repo):
        # A brand-new (uncommitted) bench file skips the relative
        # ratchet but still hits the absolute ceiling.
        fresh = os.path.join(os.path.dirname(str(bench_repo)),
                             "BENCH_telemetry.json")
        with open(fresh, "w") as handle:
            json.dump({"benchmark": "telemetry",
                       "replay": {"tracing_on_cost": 0.2}}, handle)
        out = io.StringIO()
        assert check_files([fresh], out=out) == 1
        text = out.getvalue()
        assert "OVER BUDGET" in text
        assert "no committed baseline" in text

    def test_missing_baseline_file_skips(self, bench_repo):
        fresh = os.path.join(os.path.dirname(str(bench_repo)),
                             "BENCH_new.json")
        with open(fresh, "w") as handle:
            json.dump({"benchmark": "new", "x_per_second": 1.0}, handle)
        out = io.StringIO()
        assert check_files([fresh], out=out) == 0
        assert "no committed baseline" in out.getvalue()
