"""Search engines: spell checkers and the results UI."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.search import (
    BingSearchApplication,
    GoogleSearchApplication,
    QueryLogSpellChecker,
    WordSpellChecker,
    YahooSearchApplication,
)
from repro.util.rng import SeededRandom
from repro.workloads.queries import FREQUENT_QUERIES, query_vocabulary, word_frequencies


def make_word_checker(**kwargs):
    return WordSpellChecker(query_vocabulary(), word_frequencies(), **kwargs)


class TestWordSpellChecker:
    def test_correct_word_untouched(self):
        checker = make_word_checker()
        assert checker.correct("weather forecast") == "weather forecast"

    def test_single_substitution_fixed(self):
        checker = make_word_checker()
        assert checker.correct("weathet forecast") == "weather forecast"

    def test_transposition_fixed_with_damerau(self):
        checker = make_word_checker(transpositions=True)
        assert checker.correct("youtueb videos") == "youtube videos"

    def test_transposition_missed_without_damerau(self):
        checker = make_word_checker(transpositions=False, max_distance=1)
        assert checker.correct("youtueb videos") == "youtueb videos"

    def test_short_words_skipped(self):
        checker = make_word_checker(min_word_length=5)
        assert checker.correct("mapz") == "mapz"

    def test_unique_requirement_refuses_ties(self):
        # Construct a tie: dictionary with two equal-distance candidates.
        checker = WordSpellChecker(["cat", "car"], {"cat": 1, "car": 1},
                                   require_unique=True)
        assert checker.correct("caf") == "caf"

    def test_without_unique_requirement_picks_most_frequent(self):
        checker = WordSpellChecker(["cat", "car"], {"cat": 5, "car": 1})
        assert checker.correct("caf") == "cat"

    def test_no_candidates_leaves_word(self):
        checker = make_word_checker()
        assert checker.correct("zzzzqqq") == "zzzzqqq"

    def test_real_word_error_invisible(self):
        """A typo that forms another dictionary word is missed — the
        structural weakness of unigram checkers."""
        checker = make_word_checker()
        # 'lost' and 'cost' are both corpus words.
        assert checker.correct("lost finale") == "lost finale"


class TestQueryLogChecker:
    def test_known_query_untouched(self):
        checker = QueryLogSpellChecker(FREQUENT_QUERIES)
        assert checker.correct("world cup 2010") == "world cup 2010"

    def test_near_miss_snapped_to_log(self):
        checker = QueryLogSpellChecker(FREQUENT_QUERIES)
        assert checker.correct("worl cup 2010") == "world cup 2010"

    def test_real_word_error_fixed_by_context(self):
        """The query-log model catches what unigram checkers miss."""
        checker = QueryLogSpellChecker(FREQUENT_QUERIES)
        # 'lost' -> 'cost': both real words, but only one matches the log.
        assert checker.correct("lost finale explained") == "lost finale explained"
        assert checker.correct("cost finale explained") == "lost finale explained"

    def test_out_of_log_falls_back_to_words(self):
        checker = QueryLogSpellChecker(FREQUENT_QUERIES)
        corrected = checker.correct("weathet in paris tomorrow")
        assert corrected.startswith("weather")


class TestSearchUI:
    @pytest.fixture
    def google(self):
        return make_browser([GoogleSearchApplication])

    def test_search_via_form(self, google):
        browser, (app,) = google
        tab = browser.new_tab("http://www.google.example/")
        tab.click_element(tab.find('//input[@name="q"]'))
        tab.type_text("weather forecast")
        tab.click_element(tab.find('//input[@type="submit"]'))
        assert app.queries_received == ["weather forecast"]
        assert tab.document.get_element_by_id("corrected") is None
        assert len(tab.document.get_element_by_id("results").children) == 3

    def test_typo_shows_correction_banner(self, google):
        browser, (app,) = google
        tab = browser.new_tab(
            "http://www.google.example/search?q=worl+cup+2010")
        banner = tab.document.get_element_by_id("corrected")
        assert banner is not None
        assert app.correction_shown(tab.document) == "world cup 2010"

    def test_correction_shown_none_without_banner(self, google):
        browser, (app,) = google
        tab = browser.new_tab(
            "http://www.google.example/search?q=weather+forecast")
        assert app.correction_shown(tab.document) is None


class TestEnginePolicies:
    def test_google_strictly_strongest(self):
        """Detection ordering must match Table I: Google > Yahoo > Bing."""
        rng = SeededRandom(42)
        from repro.workloads.typos import TypoInjector

        typos = TypoInjector(rng).inject_all(FREQUENT_QUERIES[:60])
        rates = {}
        for cls in (GoogleSearchApplication, YahooSearchApplication,
                    BingSearchApplication):
            app = cls(rng=SeededRandom(0))
            fixed = sum(1 for typo in typos
                        if app.checker.correct(typo.corrupted) == typo.original)
            rates[cls.engine_name] = fixed
        assert rates["Google"] > rates["Yahoo!"] > rates["Bing"]

    def test_google_host(self):
        assert GoogleSearchApplication.host == "www.google.example"

    def test_all_engines_serve_the_same_ui(self):
        for cls in (GoogleSearchApplication, YahooSearchApplication,
                    BingSearchApplication):
            browser, (app,) = make_browser([cls])
            tab = browser.new_tab("http://%s/" % cls.host)
            assert tab.find('//input[@name="q"]') is not None
