"""Dashboard app: widgets across iframes."""

import pytest

from repro.apps.dashboard import DashboardApplication
from repro.apps.framework import make_browser

BASE = "http://dashboard.example.com"


@pytest.fixture
def env():
    return make_browser([DashboardApplication])


def click_in_news(tab, element_id):
    iframe = tab.find('//iframe[@id="news"]')
    child = tab.engine.frame_for(iframe)
    target = child.document.get_element_by_id(element_id)
    outer = tab.engine.layout.box_for(iframe)
    inner = child.layout.click_point(target)
    tab.click(int(outer.rect.x + inner[0]), int(outer.rect.y + inner[1]))
    return child


def test_main_page_loads_both_iframes(env):
    browser, _ = env
    tab = browser.new_tab(BASE + "/")
    news = tab.find('//iframe[@id="news"]')
    notes = tab.find('//iframe[@id="notes"]')
    assert tab.engine.frame_for(news) is not None
    assert tab.engine.frame_for(notes) is None  # srcless: no child engine


def test_news_widget_shows_headlines(env):
    browser, (app,) = env
    tab = browser.new_tab(BASE + "/")
    child = tab.engine.frame_for(tab.find('//iframe[@id="news"]'))
    text = child.document.text_content
    for headline in app.headlines:
        assert headline in text


def test_refresh_button_fetches_new_headline(env):
    browser, (app,) = env
    tab = browser.new_tab(BASE + "/")
    child = click_in_news(tab, "refresh")
    tab.wait_until_idle()
    assert app.refresh_count == 1
    assert child.window.env.refreshes == 1
    assert "all widgets nominal" in child.document.text_content


def test_notes_pad_lives_in_parent_document(env):
    browser, _ = env
    tab = browser.new_tab(BASE + "/")
    pad = tab.find('//div[@id="pad"]')  # found in the MAIN document
    tab.click_element(pad)
    tab.type_text("buy milk")
    assert pad.text_content == "buy milk"


def test_save_note_round_trip(env):
    browser, (app,) = env
    tab = browser.new_tab(BASE + "/")
    tab.click_element(tab.find('//div[@id="pad"]'))
    tab.type_text("remember")
    tab.click_element(tab.find('//div[text()="Save note"]'))
    tab.wait_until_idle()
    assert app.saved_notes == ["note=remember"]


def test_chart_widget_drags(env):
    browser, _ = env
    tab = browser.new_tab(BASE + "/")
    chart = tab.find('//div[@id="chart"]')
    tab.drag_element(chart, 18, 9)
    assert chart.get_attribute("data-offset-x") == "18"
