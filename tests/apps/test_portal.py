"""Yahoo-style portal: form authentication."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.portal import PortalApplication

BASE = "http://portal.example.com"


@pytest.fixture
def env():
    return make_browser([PortalApplication])


def sign_in(tab, login, password):
    tab.click_element(tab.find('//input[@name="login"]'))
    tab.type_text(login)
    tab.click_element(tab.find('//input[@name="passwd"]'))
    tab.type_text(password)
    tab.click_element(tab.find('//input[@type="submit"]'))


def test_successful_login_shows_home(env):
    browser, (app,) = env
    tab = browser.new_tab(BASE + "/")
    sign_in(tab, "jane", "s3cret")
    assert tab.document.title == "Portal - Home"
    assert "Welcome, jane" in tab.find('//div[@id="greeting"]').text_content
    assert app.login_attempts == ["jane"]


def test_wrong_password_shows_error(env):
    browser, _ = env
    tab = browser.new_tab(BASE + "/")
    sign_in(tab, "jane", "wrong")
    assert "Invalid id or password" in tab.document.text_content
    assert tab.document.title == "Portal - Sign in"


def test_unknown_user_rejected(env):
    browser, _ = env
    tab = browser.new_tab(BASE + "/")
    sign_in(tab, "mallory", "s3cret")
    assert "Invalid" in tab.document.text_content


def test_login_uses_post(env):
    browser, _ = env
    tab = browser.new_tab(BASE + "/")
    sign_in(tab, "jane", "s3cret")
    exchange = browser.network.exchange_log[-1]
    assert exchange.request.method == "POST"
    assert "passwd=s3cret" in exchange.request.body
    # Credentials never appear in the URL.
    assert "s3cret" not in exchange.request.url


def test_news_headlines_render(env):
    browser, _ = env
    tab = browser.new_tab(BASE + "/home/jane")
    items = tab.document.get_elements_by_tag("li")
    assert len(items) == 3
