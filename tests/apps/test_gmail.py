"""GMail clone: compose flow, id churn, autosave."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.gmail import AUTOSAVE_MS, GmailApplication

BASE = "http://mail.example.com"


@pytest.fixture
def env():
    return make_browser([GmailApplication])


class TestCompose:
    def test_full_compose_flow(self, env):
        browser, (app,) = env
        tab = browser.new_tab(BASE + "/")
        tab.click_element(tab.find('//a[text()="Compose"]'))
        tab.click_element(tab.find('//input[@name="to"]'))
        tab.type_text("bob@x.com")
        tab.click_element(tab.find('//input[@name="subject"]'))
        tab.type_text("Yo")
        tab.click_element(tab.find('//div[contains(@class, "editable")]'))
        tab.type_text("Body text")
        tab.click_element(tab.find('//div[text()="Send"]'))
        tab.wait_until_idle()
        assert app.sent == [{"to": "bob@x.com", "subject": "Yo",
                             "body": "Body text"}]
        assert tab.url == BASE + "/sent"
        assert "has been sent" in tab.find('//p[@id="confirmation"]').text_content

    def test_send_without_recipient_rejected(self, env):
        browser, (app,) = env
        tab = browser.new_tab(BASE + "/compose")
        tab.click_element(tab.find('//div[text()="Send"]'))
        tab.wait_until_idle()
        assert app.sent == []
        assert tab.url == BASE + "/compose"  # no navigation on error


class TestIdChurn:
    def test_ids_differ_between_loads(self, env):
        browser, _ = env
        tab = browser.new_tab(BASE + "/compose")
        first_id = tab.find('//input[@name="to"]').id
        tab.navigate(BASE + "/compose")
        second_id = tab.find('//input[@name="to"]').id
        assert first_id != second_id

    def test_names_are_stable(self, env):
        browser, _ = env
        tab = browser.new_tab(BASE + "/compose")
        tab.navigate(BASE + "/compose")
        assert tab.find('//input[@name="to"]') is not None
        assert tab.find('//input[@name="subject"]') is not None

    def test_structure_is_stable(self, env):
        """Ids churn, but //td/div structure persists — what relaxation
        relies on."""
        browser, _ = env
        tab = browser.new_tab(BASE + "/compose")
        body1 = tab.find('//td/div[contains(@class, "editable")]')
        tab.navigate(BASE + "/compose")
        body2 = tab.find('//td/div[contains(@class, "editable")]')
        assert body1.id != body2.id
        assert body1.tag == body2.tag == "div"


class TestClientScript:
    def test_keypress_codes_observed(self, env):
        browser, _ = env
        tab = browser.new_tab(BASE + "/compose")
        tab.click_element(tab.find('//div[contains(@class, "editable")]'))
        tab.type_text("Hi")
        assert tab.engine.window.env.observed_key_codes == [72, 73]

    def test_autosave_fires_once_after_delay(self, env):
        browser, (app,) = env
        tab = browser.new_tab(BASE + "/compose")
        tab.click_element(tab.find('//input[@name="to"]'))
        tab.type_text("a@b")
        tab.wait(AUTOSAVE_MS + 100)
        assert len(app.drafts) == 1
        assert app.drafts[0]["to"] == "a@b"

    def test_autosave_cancelled_by_navigation(self, env):
        browser, (app,) = env
        tab = browser.new_tab(BASE + "/compose")
        tab.navigate(BASE + "/")
        browser.event_loop.run_until_idle()
        assert app.drafts == []


class TestInbox:
    def test_inbox_lists_messages(self, env):
        browser, (app,) = env
        tab = browser.new_tab(BASE + "/")
        text = tab.document.text_content
        for message in app.inbox:
            assert message["subject"] in text

    def test_sent_page_lists_sent_mail(self, env):
        browser, (app,) = env
        app.sent.append({"to": "x@y", "subject": "prior", "body": ""})
        tab = browser.new_tab(BASE + "/sent")
        assert "prior" in tab.document.text_content
