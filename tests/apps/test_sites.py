"""Google Sites clone: editing flow and the timing bug."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.sites import EDITOR_LOAD_MS, SitesApplication
from repro.util.errors import JSReferenceError

EDIT_URL = "http://sites.example.com/edit/home"


@pytest.fixture
def env():
    return make_browser([SitesApplication])


class TestServerSide:
    def test_home_lists_pages(self, env):
        browser, (app,) = env
        tab = browser.new_tab("http://sites.example.com/")
        links = tab.document.get_elements_by_tag("a")
        assert {a.text_content for a in links} == set(app.pages)

    def test_view_page_renders_content(self, env):
        browser, (app,) = env
        tab = browser.new_tab("http://sites.example.com/page/home")
        assert app.pages["home"] in tab.find('//div[@id="view"]').text_content

    def test_unknown_page_404(self, env):
        browser, _ = env
        tab = browser.new_tab("http://sites.example.com/page/ghost")
        assert "no page" in tab.document.text_content


class TestPatientEditing:
    def test_full_edit_flow_saves(self, env):
        browser, (app,) = env
        tab = browser.new_tab(EDIT_URL)
        tab.wait(EDITOR_LOAD_MS + 50)
        assert tab.find('//span[@id="status"]').text_content == "Ready"
        tab.click_element(tab.find('//span[@id="start"]'))
        tab.type_text(" Extra")
        tab.click_element(tab.find('//td/div[text()="Save"]'))
        tab.wait_until_idle()
        assert app.pages["home"].endswith("Extra")
        assert app.save_count == 1
        assert tab.url == "http://sites.example.com/page/home"
        assert not browser.page_errors

    def test_start_click_focuses_content(self, env):
        browser, _ = env
        tab = browser.new_tab(EDIT_URL)
        tab.wait(EDITOR_LOAD_MS + 50)
        tab.click_element(tab.find('//span[@id="start"]'))
        assert tab.engine.focused_element is tab.find('//div[@id="content"]')

    def test_keystrokes_tracked_in_editor_state(self, env):
        browser, _ = env
        tab = browser.new_tab(EDIT_URL)
        tab.wait(EDITOR_LOAD_MS + 50)
        tab.click_element(tab.find('//span[@id="start"]'))
        tab.type_text("abc")
        env_vars = tab.engine.window.env
        assert env_vars.editorState["keystrokes"] == 3
        assert env_vars.editorState["dirty"] is True


class TestImpatientEditing:
    """The Section V-C bug: interacting before the editor module loads."""

    def test_early_click_raises_reference_error(self, env):
        browser, _ = env
        tab = browser.new_tab(EDIT_URL)
        tab.click_element(tab.find('//span[@id="start"]'))  # no wait
        assert browser.page_errors
        assert isinstance(browser.page_errors[0], JSReferenceError)
        assert "editorState" in str(browser.page_errors[0])

    def test_early_typing_raises_per_keystroke(self, env):
        browser, _ = env
        tab = browser.new_tab(EDIT_URL)
        tab.click_element(tab.find('//div[@id="content"]'))
        tab.type_text("hi")
        errors = [e for e in browser.page_errors
                  if isinstance(e, JSReferenceError)]
        assert len(errors) == 2

    def test_bug_window_closes_exactly_at_load(self, env):
        browser, _ = env
        tab = browser.new_tab(EDIT_URL)
        tab.wait(EDITOR_LOAD_MS - 1)
        tab.click_element(tab.find('//span[@id="start"]'))
        assert browser.page_errors  # still inside the window

    def test_save_too_early_does_not_save(self, env):
        browser, (app,) = env
        tab = browser.new_tab(EDIT_URL)
        tab.click_element(tab.find('//td/div[text()="Save"]'))
        tab.wait_until_idle()
        assert app.save_count == 0
        assert browser.page_errors
