"""Google Docs clone: double-click editing, drags, saving."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.docs import DocsApplication

SHEET_URL = "http://docs.example.com/sheet/budget"


@pytest.fixture
def env():
    return make_browser([DocsApplication])


class TestGrid:
    def test_sheet_renders_initial_cells(self, env):
        browser, (app,) = env
        tab = browser.new_tab(SHEET_URL)
        assert tab.find('//div[@id="cell_0_0"]').text_content == "Item"
        assert tab.find('//div[@id="cell_1_1"]').text_content == "1200"

    def test_unknown_sheet_404(self, env):
        browser, _ = env
        tab = browser.new_tab("http://docs.example.com/sheet/ghost")
        assert "no sheet" in tab.document.text_content


class TestEditing:
    def test_double_click_starts_editing(self, env):
        browser, _ = env
        tab = browser.new_tab(SHEET_URL)
        cell = tab.find('//div[@id="cell_2_0"]')
        tab.double_click_element(cell)
        assert cell.has_attribute("contenteditable")
        assert tab.engine.focused_element is cell

    def test_single_click_does_not_start_editing(self, env):
        browser, _ = env
        tab = browser.new_tab(SHEET_URL)
        cell = tab.find('//div[@id="cell_2_0"]')
        tab.click_element(cell)
        assert not cell.has_attribute("contenteditable")

    def test_typing_after_double_click_fills_cell(self, env):
        browser, _ = env
        tab = browser.new_tab(SHEET_URL)
        tab.double_click_element(tab.find('//div[@id="cell_2_0"]'))
        tab.type_text("Travel")
        assert tab.find('//div[@id="cell_2_0"]').text_content == "Travel"

    def test_click_elsewhere_commits_edit(self, env):
        browser, _ = env
        tab = browser.new_tab(SHEET_URL)
        cell = tab.find('//div[@id="cell_2_0"]')
        tab.double_click_element(cell)
        tab.type_text("Travel")
        tab.click_element(tab.find('//div[@id="cell_0_0"]'))
        env_vars = tab.engine.window.env
        assert env_vars.model["cell_2_0"] == "Travel"
        assert not cell.has_attribute("contenteditable")
        assert tab.find('//span[@id="sheetstatus"]').text_content == "Edited"

    def test_double_click_new_cell_commits_previous(self, env):
        browser, _ = env
        tab = browser.new_tab(SHEET_URL)
        tab.double_click_element(tab.find('//div[@id="cell_2_0"]'))
        tab.type_text("A")
        tab.double_click_element(tab.find('//div[@id="cell_2_1"]'))
        env_vars = tab.engine.window.env
        assert env_vars.model["cell_2_0"].endswith("A")


class TestDrag:
    def test_cell_drag_selects_not_moves(self, env):
        browser, _ = env
        tab = browser.new_tab(SHEET_URL)
        cell = tab.find('//div[@id="cell_0_0"]')
        tab.drag_element(cell, 40, 20)
        assert cell.get_attribute("data-selected") == "true"
        assert cell.get_attribute("data-offset-x") is None  # prevented

    def test_chart_widget_drag_moves(self, env):
        browser, _ = env
        tab = browser.new_tab(SHEET_URL)
        chart = tab.find('//div[@id="chart"]')
        tab.drag_element(chart, 30, 45)
        assert chart.get_attribute("data-offset-x") == "30"
        assert chart.get_attribute("data-offset-y") == "45"


class TestSave:
    def test_save_pushes_model_to_server(self, env):
        browser, (app,) = env
        tab = browser.new_tab(SHEET_URL)
        tab.double_click_element(tab.find('//div[@id="cell_2_0"]'))
        tab.type_text("Travel")
        tab.click_element(tab.find('//div[text()="Save"]'))
        tab.wait_until_idle()
        assert app.save_count == 1
        assert app.sheets["budget"][(2, 0)] == "Travel"
        assert tab.find('//span[@id="sheetstatus"]').text_content == "Saved"

    def test_save_commits_pending_edit_first(self, env):
        browser, (app,) = env
        tab = browser.new_tab(SHEET_URL)
        tab.double_click_element(tab.find('//div[@id="cell_3_2"]'))
        tab.type_text("99")
        # Straight to Save without clicking elsewhere.
        tab.click_element(tab.find('//div[text()="Save"]'))
        tab.wait_until_idle()
        assert app.sheets["budget"][(3, 2)] == "99"
