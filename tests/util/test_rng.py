"""Seeded randomness: determinism and forking."""

from repro.util.rng import SeededRandom


def test_same_seed_same_stream():
    a = SeededRandom(7)
    b = SeededRandom(7)
    assert [a.randint(0, 100) for _ in range(10)] == \
        [b.randint(0, 100) for _ in range(10)]


def test_different_seeds_differ():
    a = [SeededRandom(1).randint(0, 10**9) for _ in range(3)]
    b = [SeededRandom(2).randint(0, 10**9) for _ in range(3)]
    assert a != b


def test_choice_comes_from_sequence():
    rng = SeededRandom(0)
    items = ["a", "b", "c"]
    for _ in range(20):
        assert rng.choice(items) in items


def test_sample_is_distinct():
    rng = SeededRandom(3)
    picked = rng.sample(list(range(100)), 10)
    assert len(set(picked)) == 10


def test_shuffle_in_place_returns_list():
    rng = SeededRandom(5)
    items = list(range(20))
    result = rng.shuffle(items)
    assert result is items
    assert sorted(items) == list(range(20))


def test_gauss_positive_respects_minimum():
    rng = SeededRandom(11)
    for _ in range(200):
        assert rng.gauss_positive(0.0, 100.0, minimum=5.0) >= 5.0


def test_fork_is_deterministic():
    parent_a = SeededRandom(42)
    parent_b = SeededRandom(42)
    child_a = parent_a.fork("typos")
    child_b = parent_b.fork("typos")
    assert [child_a.random() for _ in range(5)] == \
        [child_b.random() for _ in range(5)]


def test_fork_labels_are_independent():
    parent = SeededRandom(42)
    assert parent.fork("x").seed != parent.fork("y").seed


def test_fork_does_not_perturb_parent():
    lone = SeededRandom(9)
    expected = [lone.random() for _ in range(3)]
    forked = SeededRandom(9)
    forked.fork("child")
    assert [forked.random() for _ in range(3)] == expected
