"""Exception hierarchy contracts."""

import pytest

from repro.util import errors


def test_everything_is_a_repro_error():
    for name in ("DomError", "XPathError", "XPathSyntaxError",
                 "ElementNotFoundError", "NavigationError", "NetworkError",
                 "ScriptError", "JSReferenceError", "JSTypeError",
                 "ReadOnlyPropertyError", "ReplayError", "ReplayHaltedError",
                 "DriverError", "TraceFormatError", "GrammarError"):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_xpath_hierarchy():
    assert issubclass(errors.XPathSyntaxError, errors.XPathError)
    assert issubclass(errors.ElementNotFoundError, errors.XPathError)


def test_js_errors_are_script_errors():
    assert issubclass(errors.JSReferenceError, errors.ScriptError)
    assert issubclass(errors.JSTypeError, errors.ScriptError)


def test_replay_halted_is_replay_error():
    assert issubclass(errors.ReplayHaltedError, errors.ReplayError)


def test_script_error_carries_cause():
    cause = ValueError("boom")
    error = errors.ScriptError("wrapped", cause=cause)
    assert error.cause is cause
    assert "wrapped" in str(error)


def test_catching_base_catches_specializations():
    with pytest.raises(errors.ScriptError):
        raise errors.JSReferenceError("x is not defined")
