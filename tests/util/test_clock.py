"""VirtualClock behaviour."""

import pytest

from repro.util.clock import VirtualClock


def test_starts_at_zero():
    assert VirtualClock().now() == 0.0


def test_starts_at_custom_time():
    assert VirtualClock(start=42.5).now() == 42.5


def test_rejects_negative_start():
    with pytest.raises(ValueError):
        VirtualClock(start=-1)


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(10)
    clock.advance(2.5)
    assert clock.now() == 12.5


def test_advance_zero_is_allowed():
    clock = VirtualClock()
    clock.advance(0)
    assert clock.now() == 0.0


def test_advance_rejects_negative_delta():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.001)


def test_advance_to_absolute():
    clock = VirtualClock()
    clock.advance_to(100)
    assert clock.now() == 100.0


def test_advance_to_rejects_rewind():
    clock = VirtualClock(start=50)
    with pytest.raises(ValueError):
        clock.advance_to(49.9)


def test_advance_to_same_instant_is_noop():
    clock = VirtualClock(start=50)
    clock.advance_to(50)
    assert clock.now() == 50.0


def test_repr_mentions_time():
    assert "12.5" in repr(VirtualClock(start=12.5))
