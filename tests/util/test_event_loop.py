"""Discrete-event loop semantics."""

import pytest

from repro.util.clock import VirtualClock
from repro.util.event_loop import EventLoop


@pytest.fixture
def loop():
    return EventLoop(VirtualClock())


def test_call_later_runs_and_advances_clock(loop):
    fired = []
    loop.call_later(250, lambda: fired.append(loop.clock.now()))
    executed = loop.run_until_idle()
    assert executed == 1
    assert fired == [250.0]


def test_rejects_negative_delay(loop):
    with pytest.raises(ValueError):
        loop.call_later(-1, lambda: None)


def test_tasks_run_in_deadline_order(loop):
    order = []
    loop.call_later(300, lambda: order.append("late"))
    loop.call_later(100, lambda: order.append("early"))
    loop.run_until_idle()
    assert order == ["early", "late"]


def test_same_deadline_is_fifo(loop):
    order = []
    for name in ("a", "b", "c"):
        loop.call_later(100, lambda name=name: order.append(name))
    loop.run_until_idle()
    assert order == ["a", "b", "c"]


def test_cancelled_task_does_not_run(loop):
    fired = []
    task = loop.call_later(10, lambda: fired.append(1))
    task.cancel()
    loop.run_until_idle()
    assert fired == []


def test_pending_count_ignores_cancelled(loop):
    keep = loop.call_later(10, lambda: None)
    cancelled = loop.call_later(20, lambda: None)
    cancelled.cancel()
    assert loop.pending_count() == 1
    assert keep.cancelled is False


def test_callback_can_schedule_more_work(loop):
    fired = []

    def first():
        fired.append("first")
        loop.call_later(50, lambda: fired.append("second"))

    loop.call_later(100, first)
    loop.run_until_idle()
    assert fired == ["first", "second"]
    assert loop.clock.now() == 150.0


def test_run_for_executes_only_due_tasks(loop):
    fired = []
    loop.call_later(100, lambda: fired.append("in-window"))
    loop.call_later(500, lambda: fired.append("after-window"))
    loop.run_for(200)
    assert fired == ["in-window"]
    assert loop.clock.now() == 200.0
    loop.run_until_idle()
    assert fired == ["in-window", "after-window"]


def test_run_for_zero_runs_due_now_tasks(loop):
    fired = []
    loop.call_soon(lambda: fired.append(1))
    loop.run_for(0)
    assert fired == [1]


def test_run_for_rejects_negative(loop):
    with pytest.raises(ValueError):
        loop.run_for(-5)


def test_overdue_task_runs_at_current_time(loop):
    """Synchronous work may advance the clock past a deadline; the task
    must still run (at 'now'), never rewind the clock."""
    observed = []
    loop.call_later(100, lambda: observed.append(loop.clock.now()))
    loop.clock.advance(500)  # e.g. a synchronous navigation fetch
    loop.run_until_idle()
    assert observed == [500.0]


def test_next_deadline(loop):
    assert loop.next_deadline() is None
    loop.call_later(75, lambda: None)
    assert loop.next_deadline() == 75.0


def test_run_until_idle_guards_against_runaway(loop):
    def reschedule():
        loop.call_soon(reschedule)

    loop.call_soon(reschedule)
    with pytest.raises(RuntimeError):
        loop.run_until_idle(max_tasks=100)
