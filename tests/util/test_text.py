"""Edit distance and Dice coefficient."""

import pytest
from hypothesis import given, strategies as st

from repro.util.text import dice_coefficient, edit_distance


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("kitten", "kitten") == 0

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_empty_strings(self):
        assert edit_distance("", "") == 0
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_single_substitution(self):
        assert edit_distance("cat", "car") == 1

    def test_transposition_costs_two_without_damerau(self):
        assert edit_distance("youtueb", "youtube") == 2

    def test_transposition_costs_one_with_damerau(self):
        assert edit_distance("youtueb", "youtube", transpositions=True) == 1

    def test_maximum_short_circuits(self):
        assert edit_distance("completely", "different", maximum=2) == 3

    def test_maximum_length_gap_short_circuit(self):
        assert edit_distance("ab", "abcdefgh", maximum=2) == 3

    def test_maximum_preserves_exact_small_distances(self):
        assert edit_distance("cat", "cart", maximum=2) == 1

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(st.text(max_size=10))
    def test_self_distance_zero(self, s):
        assert edit_distance(s, s) == 0

    @given(st.text(min_size=1, max_size=10), st.integers(0, 9))
    def test_single_deletion_distance_one(self, s, index):
        index = index % len(s)
        shorter = s[:index] + s[index + 1:]
        assert edit_distance(s, shorter) <= 1

    @given(st.text(max_size=8), st.text(max_size=8))
    def test_damerau_never_exceeds_levenshtein(self, a, b):
        assert edit_distance(a, b, transpositions=True) <= edit_distance(a, b)

    @given(st.text(max_size=8), st.text(max_size=8), st.text(max_size=8))
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


class TestDice:
    def test_identical_multisets(self):
        assert dice_coefficient({"a": 2, "b": 1}, {"a": 2, "b": 1}) == 1.0

    def test_disjoint_multisets(self):
        assert dice_coefficient({"a": 1}, {"b": 1}) == 0.0

    def test_both_empty_is_similar(self):
        assert dice_coefficient({}, {}) == 1.0

    def test_partial_overlap(self):
        score = dice_coefficient({"a": 1, "b": 1}, {"a": 1, "c": 1})
        assert score == pytest.approx(0.5)

    def test_counts_matter(self):
        low = dice_coefficient({"a": 1}, {"a": 10})
        assert 0.0 < low < 0.5
