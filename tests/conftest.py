"""Shared fixtures: deterministic environments and recorded traces."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.docs import DocsApplication
from repro.apps.gmail import GmailApplication
from repro.apps.portal import PortalApplication
from repro.apps.sites import SitesApplication
from repro.core.recorder import WarrRecorder
from repro.workloads.sessions import (
    docs_edit_session,
    gmail_compose_session,
    portal_authenticate_session,
    sites_edit_session,
)


@pytest.fixture
def sites_browser():
    browser, (app,) = make_browser([SitesApplication])
    return browser, app


@pytest.fixture
def gmail_browser():
    browser, (app,) = make_browser([GmailApplication])
    return browser, app


@pytest.fixture
def portal_browser():
    browser, (app,) = make_browser([PortalApplication])
    return browser, app


@pytest.fixture
def docs_browser():
    browser, (app,) = make_browser([DocsApplication])
    return browser, app


def record_session(app_factories, session, start_url, **session_kwargs):
    """Record a scripted session; returns (trace, user, app_list)."""
    browser, apps = make_browser(app_factories)
    recorder = WarrRecorder().attach(browser)
    recorder.begin(start_url)
    user = session(browser, **session_kwargs)
    recorder.detach()
    return recorder.trace, user, apps


@pytest.fixture
def sites_trace():
    trace, _, _ = record_session(
        [SitesApplication], sites_edit_session,
        "http://sites.example.com/edit/home", text="Hello world!")
    return trace


@pytest.fixture
def gmail_trace():
    trace, _, _ = record_session(
        [GmailApplication], gmail_compose_session,
        "http://mail.example.com/")
    return trace


@pytest.fixture
def portal_trace():
    trace, _, _ = record_session(
        [PortalApplication], portal_authenticate_session,
        "http://portal.example.com/")
    return trace


@pytest.fixture
def docs_trace():
    trace, _, _ = record_session(
        [DocsApplication], docs_edit_session,
        "http://docs.example.com/sheet/budget")
    return trace
