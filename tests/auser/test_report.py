"""AUsER reports end to end."""

import pytest

from repro.apps.framework import make_browser
from repro.apps.portal import PortalApplication
from repro.auser.crypto import ToyRSA
from repro.auser.report import AUsER, PERCEPTION_THRESHOLD_MS
from repro.core.recorder import WarrRecorder
from repro.core.replayer import WarrReplayer
from repro.workloads.sessions import portal_authenticate_session


@pytest.fixture
def session():
    browser, app = make_browser([PortalApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://portal.example.com/")
    portal_authenticate_session(browser)
    return browser, recorder


class TestReportAssembly:
    def test_report_contains_description_trace_snapshot(self, session):
        browser, recorder = session
        auser = AUsER(recorder, browser)
        report = auser.report_problem("Greeting shows wrong name")
        text = report.to_text()
        assert "Greeting shows wrong name" in text
        assert "#! warr-trace v1" in text
        assert "snapshot (full page)" in text
        assert report in auser.reports

    def test_partial_snapshot(self, session):
        browser, recorder = session
        auser = AUsER(recorder, browser)
        report = auser.report_problem(
            "wrong greeting", region_xpath='//div[@id="greeting"]')
        assert "Welcome, jane" in report.snapshot.html
        assert "news" not in report.snapshot.html

    def test_hidden_xpaths_redact(self, session):
        browser, recorder = session
        auser = AUsER(recorder, browser)
        report = auser.report_problem(
            "bug", hidden_xpaths=['//ul[contains(@class, "news")]'])
        assert "Markets rally" not in report.snapshot.html
        assert "Welcome, jane" in report.snapshot.html

    def test_scrubbing_on_by_default(self, session):
        browser, recorder = session
        report = AUsER(recorder, browser).report_problem("bug")
        assert report.scrubbed
        assert "[s,83]" not in report.to_text()  # no password keys
        assert "[*,0]" in report.to_text()

    def test_scrubbing_can_be_disabled(self, session):
        browser, recorder = session
        report = AUsER(recorder, browser).report_problem("bug", scrub=False)
        assert "[s,83]" in report.to_text()


class TestEncryptedReports:
    def test_encrypt_decrypt_round_trip(self, session):
        browser, recorder = session
        report = AUsER(recorder, browser).report_problem("bug")
        keys = ToyRSA.generate(seed=5)
        ciphertext = report.encrypt(keys.public)
        assert ToyRSA.decrypt(ciphertext, keys.private) == report.to_text()


class TestScrubbedTraceStillReplays:
    def test_scrubbed_trace_exercises_same_path(self, session):
        """The anonymized trace leads the application along the same
        execution path (the paper's [29] reference): same pages visited,
        same number of login attempts — just with dummy keystrokes."""
        browser, recorder = session
        report = AUsER(recorder, browser).report_problem("bug")
        replay_browser, (app,) = make_browser([PortalApplication],
                                              developer_mode=True)
        result = WarrReplayer(replay_browser).replay(report.trace)
        assert result.complete
        assert app.login_attempts == ["jane"]  # login survived; password dummy
        assert "Invalid" in replay_browser.tabs[0].document.text_content


class TestOverheadGate:
    def test_recorder_overhead_below_perception(self, session):
        browser, recorder = session
        auser = AUsER(recorder, browser)
        assert recorder.overhead_samples_us  # something was measured
        assert auser.recorder_overhead_acceptable()
        assert recorder.mean_overhead_us() / 1000.0 < PERCEPTION_THRESHOLD_MS

    def test_threshold_is_the_papers_100ms(self):
        assert PERCEPTION_THRESHOLD_MS == 100.0
