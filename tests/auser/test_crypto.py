"""Toy RSA: correctness of the demonstration cipher."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.auser.crypto import KeyPair, ToyRSA


@pytest.fixture(scope="module")
def keys():
    return ToyRSA.generate(seed=7)


def test_generation_is_deterministic():
    assert ToyRSA.generate(seed=1).modulus == ToyRSA.generate(seed=1).modulus


def test_different_seeds_give_different_keys():
    assert ToyRSA.generate(seed=1).modulus != ToyRSA.generate(seed=2).modulus


def test_round_trip(keys):
    text = "click //div[@id=\"x\"] 1,2 3"
    ciphertext = ToyRSA.encrypt(text, keys.public)
    assert ToyRSA.decrypt(ciphertext, keys.private) == text


def test_ciphertext_is_not_plaintext(keys):
    text = "secret"
    ciphertext = ToyRSA.encrypt(text, keys.public)
    assert ciphertext != [ord(c) for c in text]


def test_unicode_round_trip(keys):
    text = "héllo wörld ❤"
    assert ToyRSA.decrypt(ToyRSA.encrypt(text, keys.public),
                          keys.private) == text


def test_wrong_key_garbles(keys):
    other = ToyRSA.generate(seed=99)
    ciphertext = ToyRSA.encrypt("attack at dawn", keys.public)
    try:
        wrong = ToyRSA.decrypt(ciphertext, other.private)
        assert wrong != "attack at dawn"
    except (UnicodeDecodeError, ValueError):
        pass  # garbled bytes refusing to decode is also failure to read


def test_keypair_accessors():
    pair = KeyPair(91, 5, 29)
    assert pair.public == (91, 5)
    assert pair.private == (91, 29)


@given(st.text(max_size=40))
@settings(max_examples=25, deadline=None)
def test_property_round_trip(text):
    keys = ToyRSA.generate(seed=3)
    assert ToyRSA.decrypt(ToyRSA.encrypt(text, keys.public),
                          keys.private) == text
