"""Trace scrubbing."""

from repro.core.commands import ClickCommand, TypeCommand
from repro.core.trace import WarrTrace
from repro.auser.privacy import REDACTED_KEY, scrub_trace, sensitive_xpaths


def login_trace():
    return WarrTrace(start_url="http://portal/", commands=[
        ClickCommand('//input[@name="login"]', x=1, y=1, elapsed_ms=10),
        TypeCommand('//input[@name="login"]', key="j", code=74, elapsed_ms=5),
        ClickCommand('//input[@name="passwd"]', x=1, y=2, elapsed_ms=10),
        TypeCommand('//input[@name="passwd"]', key="s", code=83, elapsed_ms=5),
        TypeCommand('//input[@name="passwd"]', key="3", code=51, elapsed_ms=5),
        ClickCommand('//input[@type="submit"]', x=1, y=3, elapsed_ms=10),
    ])


def test_sensitive_xpaths_detected():
    found = sensitive_xpaths(login_trace())
    assert found == ['//input[@name="passwd"]']


def test_extra_markers_extend_detection():
    found = sensitive_xpaths(login_trace(), extra_markers=("login",))
    assert '//input[@name="login"]' in found


def test_scrub_redacts_only_sensitive_keystrokes():
    scrubbed = scrub_trace(login_trace())
    keys = [(c.xpath, c.key) for c in scrubbed
            if isinstance(c, TypeCommand)]
    assert keys == [
        ('//input[@name="login"]', "j"),
        ('//input[@name="passwd"]', REDACTED_KEY),
        ('//input[@name="passwd"]', REDACTED_KEY),
    ]
    assert scrubbed.redacted_count == 2


def test_scrub_preserves_structure_and_timing():
    original = login_trace()
    scrubbed = scrub_trace(original)
    assert len(scrubbed) == len(original)
    assert [c.elapsed_ms for c in scrubbed] == [c.elapsed_ms for c in original]
    assert [c.action for c in scrubbed] == [c.action for c in original]


def test_scrub_clears_key_codes():
    scrubbed = scrub_trace(login_trace())
    password_types = [c for c in scrubbed
                      if isinstance(c, TypeCommand) and "passwd" in c.xpath]
    assert all(c.code == 0 for c in password_types)


def test_explicit_targets_override_detection():
    scrubbed = scrub_trace(login_trace(),
                           xpaths=['//input[@name="login"]'])
    login_keys = [c.key for c in scrubbed
                  if isinstance(c, TypeCommand) and "login" in c.xpath]
    password_keys = [c.key for c in scrubbed
                     if isinstance(c, TypeCommand) and "passwd" in c.xpath]
    assert login_keys == [REDACTED_KEY]
    assert password_keys == ["s", "3"]


def test_original_trace_untouched():
    original = login_trace()
    scrub_trace(original)
    assert any(c.key == "s" for c in original
               if isinstance(c, TypeCommand))


def test_label_notes_scrubbing():
    assert "[scrubbed]" in scrub_trace(login_trace()).label
