"""Page snapshots: full, region, redacted."""

import pytest

from repro.auser.snapshot import PageSnapshot
from repro.dom.parser import parse_html
from repro.util.errors import ElementNotFoundError

HTML = """<html><head><title>Inbox</title></head><body>
<div id="nav"><a href="/compose">Compose</a></div>
<div id="private"><p>secret balance: 12345</p></div>
<div id="broken"><button id="b">Wrnog Name</button></div>
</body></html>"""


@pytest.fixture
def document():
    return parse_html(HTML, url="http://mail/")


def test_full_snapshot_contains_everything(document):
    snapshot = PageSnapshot.full(document)
    assert "secret balance" in snapshot.html
    assert "Wrnog Name" in snapshot.html
    assert snapshot.url == "http://mail/"
    assert not snapshot.is_partial


def test_region_snapshot_only_contains_subtree(document):
    snapshot = PageSnapshot.region(document, '//div[@id="broken"]')
    assert "Wrnog Name" in snapshot.html
    assert "secret balance" not in snapshot.html
    assert snapshot.is_partial
    assert snapshot.region_xpath == '//div[@id="broken"]'


def test_region_snapshot_missing_element(document):
    with pytest.raises(ElementNotFoundError):
        PageSnapshot.region(document, '//div[@id="ghost"]')


def test_redacted_snapshot_blanks_private_parts(document):
    snapshot = PageSnapshot.redacted(document, ['//div[@id="private"]'])
    assert "secret balance" not in snapshot.html
    assert "Wrnog Name" in snapshot.html
    assert 'data-redacted="true"' in snapshot.html


def test_redaction_does_not_mutate_live_page(document):
    PageSnapshot.redacted(document, ['//div[@id="private"]'])
    assert "secret balance" in document.text_content


def test_redacted_keeps_structural_attributes(document):
    snapshot = PageSnapshot.redacted(document, ['//div[@id="private"]'])
    assert 'id="private"' in snapshot.html
