"""The 186-query corpus."""

from repro.workloads.queries import (
    FREQUENT_QUERIES,
    query_vocabulary,
    word_frequencies,
)


def test_exactly_186_queries():
    """The paper's workload size (Section V-C)."""
    assert len(FREQUENT_QUERIES) == 186


def test_queries_unique():
    assert len(set(FREQUENT_QUERIES)) == 186


def test_queries_are_lowercase_words():
    for query in FREQUENT_QUERIES:
        assert query == query.strip()
        assert "  " not in query


def test_vocabulary_covers_all_words():
    vocabulary = set(query_vocabulary())
    for query in FREQUENT_QUERIES:
        for word in query.split():
            assert word in vocabulary


def test_vocabulary_sorted_and_unique():
    vocabulary = query_vocabulary()
    assert vocabulary == sorted(set(vocabulary))


def test_frequencies_sum_to_word_occurrences():
    frequencies = word_frequencies()
    total = sum(len(q.split()) for q in FREQUENT_QUERIES)
    assert sum(frequencies.values()) == total


def test_common_words_have_high_frequency():
    frequencies = word_frequencies()
    assert frequencies["how"] >= 5  # the how-to block
    assert frequencies.get("weather", 0) >= 2
