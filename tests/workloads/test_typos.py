"""Typo injector: determinism and edit classes."""

from hypothesis import given, settings, strategies as st

from repro.util.rng import SeededRandom
from repro.util.text import edit_distance
from repro.workloads.queries import FREQUENT_QUERIES
from repro.workloads.typos import KINDS, QWERTY_NEIGHBORS, TypoInjector


def make_injector(seed=0):
    return TypoInjector(SeededRandom(seed))


class TestDeterminism:
    def test_same_seed_same_typos(self):
        first = make_injector(7).inject_all(FREQUENT_QUERIES[:30])
        second = make_injector(7).inject_all(FREQUENT_QUERIES[:30])
        assert [t.corrupted for t in first] == [t.corrupted for t in second]

    def test_different_seeds_differ(self):
        first = make_injector(1).inject_all(FREQUENT_QUERIES[:30])
        second = make_injector(2).inject_all(FREQUENT_QUERIES[:30])
        assert [t.corrupted for t in first] != [t.corrupted for t in second]


class TestInjection:
    def test_always_changes_the_query(self):
        injector = make_injector(3)
        for query in FREQUENT_QUERIES:
            typo = injector.inject(query)
            assert typo.corrupted != typo.original

    def test_single_word_affected(self):
        injector = make_injector(5)
        for query in FREQUENT_QUERIES[:50]:
            typo = injector.inject(query)
            original_words = typo.original.split()
            corrupted_words = typo.corrupted.split()
            assert len(original_words) == len(corrupted_words)
            differing = [i for i, (a, b)
                         in enumerate(zip(original_words, corrupted_words))
                         if a != b]
            assert differing == [typo.word_index]

    def test_damerau_distance_is_one(self):
        injector = make_injector(11)
        for query in FREQUENT_QUERIES[:80]:
            typo = injector.inject(query)
            bad = typo.corrupted.split()[typo.word_index]
            good = typo.original.split()[typo.word_index]
            assert edit_distance(bad, good, transpositions=True) == 1

    def test_kind_is_valid(self):
        injector = make_injector(13)
        kinds_seen = set()
        for query in FREQUENT_QUERIES:
            typo = injector.inject(query)
            assert typo.kind in KINDS
            kinds_seen.add(typo.kind)
        # All five classes appear across a large workload.
        assert kinds_seen == set(KINDS)

    def test_substitutions_use_adjacent_keys(self):
        injector = make_injector(17)
        for query in FREQUENT_QUERIES:
            typo = injector.inject(query)
            if typo.kind != "substitution":
                continue
            good = typo.original.split()[typo.word_index]
            bad = typo.corrupted.split()[typo.word_index]
            position = typo.char_index
            assert bad[position] in QWERTY_NEIGHBORS[good[position].lower()]

    def test_inject_all_covers_every_query(self):
        typos = make_injector(0).inject_all(FREQUENT_QUERIES)
        assert len(typos) == 186
        assert [t.original for t in typos] == FREQUENT_QUERIES


class TestEdgeCases:
    def test_short_word_query(self):
        typo = make_injector(1).inject("a an")
        assert typo.corrupted != "a an"

    def test_numeric_query(self):
        typo = make_injector(2).inject("2010 365 42")
        assert typo.corrupted != "2010 365 42"


@given(st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_property_typos_always_single_damerau_edit(seed):
    injector = TypoInjector(SeededRandom(seed))
    typo = injector.inject("weather forecast tomorrow")
    assert edit_distance(typo.original, typo.corrupted,
                         transpositions=True) == 1
