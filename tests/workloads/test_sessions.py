"""SimulatedUser ground truth and the scripted scenarios."""


from repro.apps.docs import DocsApplication
from repro.apps.framework import make_browser
from repro.apps.gmail import GmailApplication
from repro.apps.portal import PortalApplication
from repro.apps.search import GoogleSearchApplication
from repro.apps.sites import SitesApplication
from repro.baselines.fidelity import ACTION_CLICK, ACTION_DOUBLECLICK, ACTION_DRAG, ACTION_KEY
from repro.workloads.sessions import (
    SimulatedUser,
    docs_edit_session,
    gmail_compose_session,
    portal_authenticate_session,
    search_session,
    sites_edit_session,
)


class TestSimulatedUser:
    def test_actions_logged_in_order(self):
        browser, _ = make_browser([PortalApplication])
        tab = browser.new_tab("http://portal.example.com/")
        user = SimulatedUser(tab, think_time_ms=10)
        user.click('//input[@name="login"]')
        user.type_text("ab")
        kinds = [a.kind for a in user.actions]
        assert kinds == [ACTION_CLICK, ACTION_KEY, ACTION_KEY]

    def test_focus_click_flag_set_for_text_inputs(self):
        browser, _ = make_browser([PortalApplication])
        tab = browser.new_tab("http://portal.example.com/")
        user = SimulatedUser(tab, think_time_ms=10)
        user.click('//input[@name="login"]')
        user.click('//input[@type="submit"]')
        assert user.actions[0].is_focus_click
        assert not user.actions[1].is_focus_click

    def test_key_actions_know_their_target_kind(self):
        browser, _ = make_browser([GmailApplication])
        tab = browser.new_tab("http://mail.example.com/compose")
        user = SimulatedUser(tab, think_time_ms=10)
        user.click('//input[@name="to"]')
        user.type_text("x")
        user.click('//div[contains(@class, "editable")]')
        user.type_text("y")
        key_actions = [a for a in user.actions if a.kind == ACTION_KEY]
        assert key_actions[0].into_value_control
        assert not key_actions[1].into_value_control

    def test_think_time_advances_clock(self):
        browser, _ = make_browser([PortalApplication])
        tab = browser.new_tab("http://portal.example.com/")
        user = SimulatedUser(tab, think_time_ms=200)
        before = browser.clock.now()
        user.click('//input[@name="login"]')
        assert browser.clock.now() >= before + 200


class TestScenarios:
    def test_sites_session_saves_the_page(self):
        browser, (app,) = make_browser([SitesApplication])
        sites_edit_session(browser, text="Hi")
        assert app.save_count == 1
        assert not browser.page_errors

    def test_gmail_session_sends_mail(self):
        browser, (app,) = make_browser([GmailApplication])
        gmail_compose_session(browser, to="a@b", subject="s", body="b")
        assert app.sent == [{"to": "a@b", "subject": "s", "body": "b"}]

    def test_portal_session_authenticates(self):
        browser, (app,) = make_browser([PortalApplication])
        portal_authenticate_session(browser)
        assert app.login_attempts == ["jane"]
        assert browser.tabs[0].document.title == "Portal - Home"

    def test_docs_session_edits_and_saves(self):
        browser, (app,) = make_browser([DocsApplication])
        user = docs_edit_session(browser)
        assert app.save_count == 1
        assert app.sheets["budget"][(2, 0)] == "Travel"
        kinds = {a.kind for a in user.actions}
        assert ACTION_DOUBLECLICK in kinds
        assert ACTION_DRAG in kinds

    def test_search_session_reaches_results(self):
        browser, (app,) = make_browser([GoogleSearchApplication])
        user, tab = search_session(browser, "http://www.google.example",
                                   "weather forecast")
        assert app.queries_received == ["weather forecast"]
        assert tab.document.get_element_by_id("results") is not None

    def test_search_session_with_enter(self):
        browser, (app,) = make_browser([GoogleSearchApplication])
        user, tab = search_session(browser, "http://www.google.example",
                                   "weather forecast", submit_with_enter=True)
        assert app.queries_received == ["weather forecast"]

    def test_sessions_are_deterministic(self):
        first_browser, _ = make_browser([PortalApplication])
        first = portal_authenticate_session(first_browser)
        second_browser, _ = make_browser([PortalApplication])
        second = portal_authenticate_session(second_browser)
        assert len(first.actions) == len(second.actions)
        assert first_browser.clock.now() == second_browser.clock.now()
