"""XPath parser: AST construction and re-rendering."""

import pytest

from repro.util.errors import XPathSyntaxError
from repro.xpath.ast import (
    AttributeEquals,
    AttributeExists,
    ContainsPredicate,
    PositionPredicate,
    Step,
    TextEquals,
)
from repro.xpath.parser import parse_xpath


class TestStructure:
    def test_descendant_then_child(self):
        path = parse_xpath("//td/div")
        assert [s.axis for s in path.steps] == [Step.DESCENDANT, Step.CHILD]
        assert [s.name for s in path.steps] == ["td", "div"]

    def test_absolute_path(self):
        path = parse_xpath("/html/body")
        assert all(s.axis == Step.CHILD for s in path.steps)

    def test_relative_path_is_descendant_anchored(self):
        path = parse_xpath("div/span")
        assert path.steps[0].axis == Step.DESCENDANT
        assert path.steps[1].axis == Step.CHILD

    def test_double_slash_mid_path(self):
        path = parse_xpath("/html//div")
        assert path.steps[1].axis == Step.DESCENDANT

    def test_wildcard(self):
        assert parse_xpath("//*").steps[0].name == "*"

    def test_names_lowercased(self):
        assert parse_xpath("//DIV").steps[0].name == "div"


class TestPredicates:
    def test_attribute_equals(self):
        path = parse_xpath('//div[@id="content"]')
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, AttributeEquals)
        assert (predicate.name, predicate.value) == ("id", "content")

    def test_attribute_exists(self):
        predicate = parse_xpath("//input[@checked]").steps[0].predicates[0]
        assert isinstance(predicate, AttributeExists)
        assert predicate.name == "checked"

    def test_text_equals(self):
        predicate = parse_xpath('//div[text()="Save"]').steps[0].predicates[0]
        assert isinstance(predicate, TextEquals)
        assert predicate.value == "Save"

    def test_position_integer(self):
        predicate = parse_xpath("//li[3]").steps[0].predicates[0]
        assert isinstance(predicate, PositionPredicate)
        assert predicate.index == 3

    def test_position_function(self):
        predicate = parse_xpath("//li[position()=2]").steps[0].predicates[0]
        assert predicate.index == 2

    def test_last(self):
        predicate = parse_xpath("//li[last()]").steps[0].predicates[0]
        assert predicate.index == PositionPredicate.LAST

    def test_contains_attribute(self):
        predicate = parse_xpath('//a[contains(@href, "http")]').steps[0].predicates[0]
        assert isinstance(predicate, ContainsPredicate)
        assert predicate.target == "@href"

    def test_contains_text(self):
        predicate = parse_xpath('//p[contains(text(), "err")]').steps[0].predicates[0]
        assert predicate.target == "text()"

    def test_multiple_predicates(self):
        step = parse_xpath('//input[@type="text"][2]').steps[0]
        assert len(step.predicates) == 2


class TestRendering:
    @pytest.mark.parametrize("expression", [
        '//div/span[@id="start"]',
        '//td/div[text()="Save"]',
        '//td/div[@id="content"]',
        "/html/body/div[2]/span",
        '//input[@name="q"][@type="text"]',
        "//li[last()]",
        '//a[contains(@href, "x")]',
    ])
    def test_round_trip(self, expression):
        path = parse_xpath(expression)
        assert path.to_xpath() == expression
        assert parse_xpath(path.to_xpath()) == path

    def test_parse_is_idempotent_on_path(self):
        path = parse_xpath("//div")
        assert parse_xpath(path) is path


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "", "//", "//div[", "//div[]", "//div[@]", "//div[0]",
        "//div[bogus()]", "//div[contains(bogus, 'x')]", "//div]",
        "//div[text()]",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)


class TestEquality:
    def test_equal_paths(self):
        assert parse_xpath("//a/b") == parse_xpath("//a/b")

    def test_axis_matters(self):
        assert parse_xpath("//a/b") != parse_xpath("//a//b")

    def test_predicates_matter(self):
        assert parse_xpath('//a[@id="x"]') != parse_xpath("//a")
