"""XPath AST node behaviour (construction, rendering, equality)."""

import pytest

from repro.dom.parser import parse_html
from repro.xpath.ast import (
    AttributeEquals,
    AttributeExists,
    ContainsPredicate,
    Path,
    PositionPredicate,
    Step,
    TextEquals,
)


def element(html, tag):
    return parse_html(html).get_elements_by_tag(tag)[0]


class TestPredicates:
    def test_attribute_equals_matching(self):
        el = element('<div id="x">a</div>', "div")
        assert AttributeEquals("id", "x").matches(el, 1, 1)
        assert not AttributeEquals("id", "y").matches(el, 1, 1)

    def test_attribute_exists_matching(self):
        el = element("<input checked>", "input")
        assert AttributeExists("checked").matches(el, 1, 1)
        assert not AttributeExists("disabled").matches(el, 1, 1)

    def test_text_equals_uses_direct_text_only(self):
        el = element("<div>Save<span>inner</span></div>", "div")
        assert TextEquals("Save").matches(el, 1, 1)
        assert not TextEquals("Saveinner").matches(el, 1, 1)

    def test_text_equals_strips_whitespace(self):
        el = element("<div>  Save  </div>", "div")
        assert TextEquals("Save").matches(el, 1, 1)

    def test_contains_attribute(self):
        el = element('<a href="/about/team">x</a>', "a")
        assert ContainsPredicate("@href", "about").matches(el, 1, 1)
        assert not ContainsPredicate("@href", "contact").matches(el, 1, 1)

    def test_contains_missing_attribute(self):
        el = element("<a>x</a>", "a")
        assert not ContainsPredicate("@href", "a").matches(el, 1, 1)

    def test_contains_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            ContainsPredicate("bogus", "x")

    def test_position_predicate(self):
        el = element("<li>a</li>", "li")
        assert PositionPredicate(2).matches(el, 2, 5)
        assert not PositionPredicate(2).matches(el, 3, 5)

    def test_last_predicate(self):
        el = element("<li>a</li>", "li")
        assert PositionPredicate(PositionPredicate.LAST).matches(el, 5, 5)
        assert not PositionPredicate(PositionPredicate.LAST).matches(el, 4, 5)

    def test_predicate_equality_and_hash(self):
        assert AttributeEquals("id", "x") == AttributeEquals("id", "x")
        assert AttributeEquals("id", "x") != AttributeEquals("id", "y")
        assert hash(TextEquals("a")) == hash(TextEquals("a"))
        assert AttributeEquals("id", "x") != AttributeExists("id")


class TestSteps:
    def test_invalid_axis_rejected(self):
        with pytest.raises(ValueError):
            Step("sibling", "div")

    def test_separator(self):
        assert Step(Step.CHILD, "div").separator() == "/"
        assert Step(Step.DESCENDANT, "div").separator() == "//"

    def test_copy_with_overrides(self):
        step = Step(Step.CHILD, "div", [AttributeEquals("id", "x")])
        relaxed = step.copy(predicates=[])
        assert relaxed.predicates == []
        assert step.predicates  # original untouched
        assert relaxed.axis == Step.CHILD

    def test_rendering(self):
        step = Step(Step.CHILD, "div",
                    [AttributeEquals("id", "x"), PositionPredicate(2)])
        assert step.to_xpath() == 'div[@id="x"][2]'


class TestPaths:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path([])

    def test_rendering(self):
        path = Path([Step(Step.DESCENDANT, "td"),
                     Step(Step.CHILD, "div", [TextEquals("Save")])])
        assert path.to_xpath() == '//td/div[text()="Save"]'
        assert str(path) == path.to_xpath()

    def test_copy_deep_copies_steps(self):
        path = Path([Step(Step.DESCENDANT, "div", [AttributeEquals("id", "x")])])
        clone = path.copy()
        clone.steps[0].predicates.clear()
        assert path.steps[0].predicates
