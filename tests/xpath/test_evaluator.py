"""XPath evaluation over real documents."""

import pytest

from repro.dom.parser import parse_html
from repro.util.errors import ElementNotFoundError
from repro.xpath.evaluator import evaluate, find_all, find_first

DOC = parse_html("""
<html><head><title>T</title></head><body>
  <div id="main">
    <span id="start">Go</span>
    <table>
      <tr><td><div id="content">Hello</div></td>
          <td><div>Save</div></td></tr>
      <tr><td><div>Other</div></td></tr>
    </table>
    <ul>
      <li class="odd">one</li>
      <li class="even">two</li>
      <li class="odd">three</li>
    </ul>
    <form>
      <input type="text" name="q" value="init">
      <input type="submit" value="Go">
    </form>
  </div>
  <div id="footer"><a href="/about">About</a></div>
</body></html>
""")


class TestDescendantAxis:
    def test_all_by_tag(self):
        assert len(evaluate("//li", DOC)) == 3

    def test_tag_under_tag(self):
        divs = evaluate("//td/div", DOC)
        assert [d.text_content for d in divs] == ["Hello", "Save", "Other"]

    def test_skip_levels(self):
        assert len(evaluate("//table//div", DOC)) == 3

    def test_wildcard(self):
        spans = evaluate("//div/*", DOC)
        assert any(el.tag == "span" for el in spans)

    def test_no_match_is_empty(self):
        assert evaluate("//video", DOC) == []


class TestChildAxis:
    def test_absolute(self):
        body = evaluate("/html/body", DOC)
        assert len(body) == 1 and body[0].tag == "body"

    def test_child_only_does_not_skip(self):
        assert evaluate("/html/div", DOC) == []


class TestPredicates:
    def test_attribute_equals(self):
        el = evaluate('//div[@id="content"]', DOC)
        assert len(el) == 1 and el[0].text_content == "Hello"

    def test_attribute_exists(self):
        assert len(evaluate("//li[@class]", DOC)) == 3

    def test_attribute_value_filters(self):
        assert len(evaluate('//li[@class="odd"]', DOC)) == 2

    def test_text_equals(self):
        el = evaluate('//td/div[text()="Save"]', DOC)
        assert len(el) == 1

    def test_text_no_match(self):
        assert evaluate('//td/div[text()="Nope"]', DOC) == []

    def test_contains_attribute(self):
        assert len(evaluate('//a[contains(@href, "about")]', DOC)) == 1

    def test_contains_text(self):
        assert len(evaluate('//li[contains(text(), "o")]', DOC)) == 2

    def test_position(self):
        el = evaluate("//li[2]", DOC)
        assert [e.text_content for e in el] == ["two"]

    def test_position_is_per_parent_group(self):
        # //td[1]: the first td of EACH row.
        tds = evaluate("//tr/td[1]", DOC)
        assert len(tds) == 2

    def test_last(self):
        el = evaluate("//li[last()]", DOC)
        assert [e.text_content for e in el] == ["three"]

    def test_stacked_predicates_apply_in_order(self):
        el = evaluate('//li[@class="odd"][2]', DOC)
        assert [e.text_content for e in el] == ["three"]

    def test_position_then_attribute(self):
        assert evaluate('//li[2][@class="odd"]', DOC) == []


class TestContext:
    def test_element_context(self):
        footer = DOC.get_element_by_id("footer")
        assert len(evaluate("//a", footer)) == 1
        assert evaluate("//li", footer) == []

    def test_bad_context_type(self):
        with pytest.raises(TypeError):
            evaluate("//a", "not a node")


class TestDocumentOrder:
    def test_results_in_document_order(self):
        elements = evaluate("//div", DOC)
        ids = [el.id for el in elements]
        assert ids.index("main") < ids.index("content")
        assert ids.index("content") < ids.index("footer")

    def test_no_duplicates(self):
        # //div//div could visit nested divs via multiple ancestors.
        elements = evaluate("//div//div", DOC)
        assert len(elements) == len({id(e) for e in elements})


class TestFindFirst:
    def test_returns_first(self):
        assert find_first("//li", DOC).text_content == "one"

    def test_raises_when_missing(self):
        with pytest.raises(ElementNotFoundError):
            find_first("//video", DOC)

    def test_find_all_alias(self):
        assert find_all("//li", DOC) == evaluate("//li", DOC)


class TestDocumentOrderFallback:
    def test_unknown_nodes_sort_last(self):
        # Regression: the fallback key for nodes the tree does not
        # contain used to be -1, silently promoting detached nodes
        # ahead of every real match. They must sort last — on both the
        # indexed and the tree-walk ordering paths.
        from repro import perf
        from repro.xpath.evaluator import _document_order

        doc = parse_html("<ul><li>a</li><li>b</li></ul>")
        matches = evaluate("//li", doc)
        detached = doc.create_element("li")
        for fast in (False, True):
            with perf.fast_path(fast):
                ordered = _document_order(doc, [detached] + matches)
                assert ordered[-1] is detached
                assert ordered[:2] == matches
