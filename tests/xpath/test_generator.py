"""XPath generation for DOM elements (the recorder's locator strategy)."""

from hypothesis import given, settings, strategies as st

from repro.dom.parser import parse_html
from repro.xpath.evaluator import evaluate
from repro.xpath.generator import absolute_xpath, xpath_for_element


def make_doc():
    return parse_html("""
    <html><body>
      <div><span id="start">Go</span></div>
      <table><tr>
        <td><div id="content">Hello</div></td>
        <td><div>Save</div></td>
      </tr></table>
      <form>
        <input type="text" name="q">
        <input type="submit" value="Go">
      </form>
      <ul><li>a</li><li>b</li></ul>
      <p>no identifiers here</p>
    </body></html>
    """)


class TestPaperStyle:
    def test_id_with_parent_context(self):
        doc = make_doc()
        el = doc.get_element_by_id("content")
        assert str(xpath_for_element(el)) == '//td/div[@id="content"]'

    def test_text_predicate_like_save_button(self):
        doc = make_doc()
        save = [d for d in doc.get_elements_by_tag("div")
                if d.text_content == "Save"][0]
        assert str(xpath_for_element(save)) == '//td/div[text()="Save"]'

    def test_span_with_id(self):
        doc = make_doc()
        el = doc.get_element_by_id("start")
        assert str(xpath_for_element(el)) == '//div/span[@id="start"]'

    def test_name_attribute_used(self):
        doc = make_doc()
        el = [i for i in doc.get_elements_by_tag("input") if i.name == "q"][0]
        assert '@name="q"' in str(xpath_for_element(el))

    def test_id_and_name_both_recorded(self):
        doc = parse_html('<form><input id="i9" name="login"></form>')
        el = doc.get_elements_by_tag("input")[0]
        expression = str(xpath_for_element(el))
        assert '@id="i9"' in expression
        assert '@name="login"' in expression

    def test_short_unique_text_is_used(self):
        doc = make_doc()
        second_li = doc.get_elements_by_tag("li")[1]
        assert str(xpath_for_element(second_li)) == '//ul/li[text()="b"]'

    def test_positional_fallback_when_text_is_ambiguous(self):
        doc = parse_html("<ul><li>same</li><li>same</li></ul>")
        second_li = doc.get_elements_by_tag("li")[1]
        expression = str(xpath_for_element(second_li))
        assert "[2]" in expression

    def test_anonymous_paragraph_gets_text_or_absolute(self):
        doc = make_doc()
        p = doc.get_elements_by_tag("p")[0]
        expression = str(xpath_for_element(p))
        matches = evaluate(expression, doc)
        assert matches == [p]


class TestResolution:
    def test_generated_xpath_always_resolves_uniquely(self):
        doc = make_doc()
        for element in doc.all_elements():
            expression = xpath_for_element(element)
            matches = evaluate(expression, doc)
            assert matches == [element], (
                "%s resolved to %r" % (expression, matches))

    def test_duplicate_ids_fall_back_to_position(self):
        doc = parse_html(
            '<div><p id="dup">a</p></div><div><p id="dup">b</p></div>')
        second = doc.get_elements_by_tag("p")[1]
        expression = xpath_for_element(second)
        assert evaluate(expression, doc) == [second]


class TestAbsolute:
    def test_absolute_path_resolves(self):
        doc = make_doc()
        li = doc.get_elements_by_tag("li")[0]
        assert evaluate(absolute_xpath(li), doc) == [li]

    def test_no_position_for_only_children(self):
        doc = parse_html("<div><span>x</span></div>")
        span = doc.get_elements_by_tag("span")[0]
        assert "[" not in str(absolute_xpath(span))


# Random DOM generation for the uniqueness property.
_tags = st.sampled_from(["div", "span", "p", "td", "li", "section"])


@st.composite
def random_dom(draw, max_children=3, depth=3):
    def build(current_depth):
        tag = draw(_tags)
        attrs = {}
        if draw(st.booleans()):
            attrs["id"] = "id%d" % draw(st.integers(0, 5))
        parts = ["<%s%s>" % (tag, "".join(' %s="%s"' % kv for kv in attrs.items()))]
        if current_depth < depth:
            for _ in range(draw(st.integers(0, max_children))):
                parts.append(build(current_depth + 1))
        if draw(st.booleans()):
            parts.append("t%d" % draw(st.integers(0, 3)))
        parts.append("</%s>" % tag)
        return "".join(parts)
    return "<html><body>%s</body></html>" % build(0)


@given(random_dom())
@settings(max_examples=40, deadline=None)
def test_property_generated_xpaths_resolve_to_their_element(html):
    doc = parse_html(html)
    for element in doc.all_elements():
        expression = xpath_for_element(element)
        assert evaluate(expression, doc) == [element]
