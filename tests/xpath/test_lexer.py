"""XPath tokenizer."""

import pytest

from repro.util.errors import XPathSyntaxError
from repro.xpath import lexer


def kinds(expression):
    return [t.kind for t in lexer.tokenize(expression)]


def test_simple_path():
    assert kinds("//div/span") == [
        lexer.DSLASH, lexer.NAME, lexer.SLASH, lexer.NAME, lexer.END]


def test_predicate_tokens():
    tokens = lexer.tokenize('//div[@id="x"]')
    assert [t.kind for t in tokens] == [
        lexer.DSLASH, lexer.NAME, lexer.LBRACKET, lexer.AT, lexer.NAME,
        lexer.EQ, lexer.STRING, lexer.RBRACKET, lexer.END]
    assert tokens[6].value == "x"


def test_single_quoted_string():
    tokens = lexer.tokenize("//div[@id='y']")
    assert tokens[6].value == "y"


def test_integer_token():
    tokens = lexer.tokenize("//li[2]")
    assert tokens[3].kind == lexer.INTEGER
    assert tokens[3].value == 2


def test_star():
    assert kinds("//*") == [lexer.DSLASH, lexer.STAR, lexer.END]


def test_function_syntax_tokens():
    assert kinds('//div[text()="Save"]') == [
        lexer.DSLASH, lexer.NAME, lexer.LBRACKET, lexer.NAME, lexer.LPAREN,
        lexer.RPAREN, lexer.EQ, lexer.STRING, lexer.RBRACKET, lexer.END]


def test_contains_with_comma():
    assert lexer.COMMA in kinds('//a[contains(@href, "x")]')


def test_whitespace_skipped():
    assert kinds("  //div  [ 1 ]") == [
        lexer.DSLASH, lexer.NAME, lexer.LBRACKET, lexer.INTEGER,
        lexer.RBRACKET, lexer.END]


def test_names_allow_dashes_and_dots():
    tokens = lexer.tokenize("//my-el[@data-x.y]")
    assert tokens[1].value == "my-el"
    assert tokens[4].value == "data-x.y"


def test_unterminated_string_raises():
    with pytest.raises(XPathSyntaxError):
        lexer.tokenize('//div[@id="oops]')


def test_unexpected_character_raises():
    with pytest.raises(XPathSyntaxError):
        lexer.tokenize("//div[#]")


def test_value_of_string_excludes_quotes():
    tokens = lexer.tokenize('"hello world"')
    assert tokens[0].value == "hello world"
