"""WebKitEngine: loading, scripts, frames, focus, unload."""


from repro.util.errors import JSReferenceError, ScriptError
from tests.browser.helpers import build_browser, url


class TestLoading:
    def test_load_builds_document_and_layout(self):
        browser = build_browser()
        tab = browser.new_tab(url("/"))
        engine = tab.engine
        assert engine.loaded
        assert engine.document.title == "Home"
        assert engine.layout.box_for(engine.document.body) is not None

    def test_frame_load_listeners_fire(self):
        browser = build_browser()
        loaded = []
        browser.frame_load_listeners.append(loaded.append)
        browser.new_tab(url("/"))
        assert len(loaded) == 1
        assert loaded[0].document.title == "Home"


class TestScripts:
    def test_registered_script_runs_at_load(self):
        browser = build_browser()
        tab = browser.new_tab(url("/"))
        assert tab.engine.window.env.loaded is True

    def test_unregistered_script_reference_is_console_error(self):
        browser = build_browser(extra_routes={
            "/broken": lambda request:
                "<body><script data-script='ghost.script'></script></body>",
        })
        tab = browser.new_tab(url("/broken"))
        assert tab.engine.console.has_errors

    def test_script_error_at_load_is_captured_not_raised(self):
        def bad_script(window):
            raise JSReferenceError("boom is not defined")

        browser = build_browser(
            extra_routes={
                "/bad": lambda request:
                    "<body><script data-script='test.bad'></script></body>",
            },
            extra_scripts={"test.bad": bad_script},
        )
        tab = browser.new_tab(url("/bad"))
        assert isinstance(tab.engine.console.errors[0], JSReferenceError)
        assert browser.page_errors  # surfaced at browser level too

    def test_plain_exception_in_script_wrapped(self):
        browser = build_browser(
            extra_routes={
                "/bad": lambda request:
                    "<body><script data-script='test.crash'></script></body>",
            },
            extra_scripts={"test.crash": lambda window: 1 / 0},
        )
        tab = browser.new_tab(url("/bad"))
        assert isinstance(tab.engine.console.errors[0], ScriptError)

    def test_script_tag_without_data_script_ignored(self):
        browser = build_browser(extra_routes={
            "/plain": lambda request:
                "<body><script>var x = 1;</script><p>ok</p></body>",
        })
        tab = browser.new_tab(url("/plain"))
        assert not tab.engine.console.has_errors


class TestFrames:
    def test_src_iframe_gets_child_engine(self):
        browser = build_browser()
        tab = browser.new_tab(url("/frame"))
        engine = tab.engine
        iframe = tab.find('//iframe[@id="child"]')
        child = engine.frame_for(iframe)
        assert child is not None
        assert child.document.title == "Inner"
        assert child.parent is engine

    def test_srcless_iframe_gets_no_child_engine(self):
        browser = build_browser()
        tab = browser.new_tab(url("/frame"))
        bare = tab.find('//iframe[@id="bare"]')
        assert tab.engine.frame_for(bare) is None

    def test_all_engines_includes_frames(self):
        browser = build_browser()
        tab = browser.new_tab(url("/frame"))
        engines = tab.engine.all_engines()
        assert len(engines) == 2

    def test_click_forwarded_into_iframe(self):
        browser = build_browser()
        tab = browser.new_tab(url("/frame"))
        iframe = tab.find('//iframe[@id="child"]')
        child = tab.engine.frame_for(iframe)
        button = child.document.get_element_by_id("innerbtn")
        pressed = []
        button.add_event_listener("click", lambda event: pressed.append(1))
        # Click in the middle of the iframe's box, translated by the engine.
        box = tab.engine.layout.box_for(iframe)
        inner_box = child.layout.box_for(button)
        tab.click(int(box.rect.x + inner_box.rect.center[0]),
                  int(box.rect.y + inner_box.rect.center[1]))
        assert pressed == [1]


class TestFocus:
    def test_focus_fires_focus_and_blur(self):
        browser = build_browser()
        tab = browser.new_tab(url("/"))
        field = tab.find('//input[@name="who"]')
        box = tab.find('//div[@id="box"]')
        events = []
        field.add_event_listener("focus", lambda event: events.append("field-focus"))
        field.add_event_listener("blur", lambda event: events.append("field-blur"))
        box.add_event_listener("focus", lambda event: events.append("box-focus"))
        tab.click_element(field)
        tab.click_element(box)
        assert events == ["field-focus", "field-blur", "box-focus"]

    def test_refocusing_same_element_is_noop(self):
        browser = build_browser()
        tab = browser.new_tab(url("/"))
        field = tab.find('//input[@name="who"]')
        events = []
        field.add_event_listener("focus", lambda event: events.append(1))
        tab.click_element(field)
        tab.click_element(field)
        assert events == [1]


class TestUnload:
    def test_unload_notifies_listeners(self):
        browser = build_browser()
        tab = browser.new_tab(url("/"))
        engine = tab.engine
        unloaded = []
        engine.unload_listeners.append(unloaded.append)
        tab.navigate(url("/about"))
        assert unloaded == [engine]
        assert not engine.loaded

    def test_unload_cancels_timers(self):
        fired = []

        def timer_script(window):
            window.set_timeout(10_000, lambda: fired.append(1))

        browser = build_browser(
            extra_routes={
                "/t": lambda request:
                    "<body><script data-script='test.timer'></script></body>",
            },
            extra_scripts={"test.timer": timer_script},
        )
        tab = browser.new_tab(url("/t"))
        tab.navigate(url("/about"))
        browser.event_loop.run_until_idle()
        assert fired == []

    def test_unload_recurses_into_frames(self):
        browser = build_browser()
        tab = browser.new_tab(url("/frame"))
        iframe = tab.find('//iframe[@id="child"]')
        child = tab.engine.frame_for(iframe)
        tab.navigate(url("/about"))
        assert not child.loaded
