"""Shared test application used across browser-layer tests."""

from repro.browser.window import Browser
from repro.net.server import Network, RouteServer
from repro.scripting.registry import ScriptRegistry
from repro.util.clock import VirtualClock
from repro.util.event_loop import EventLoop

HOST = "test.example"

HOME_HTML = """<html><head><title>Home</title></head><body>
<h1>Welcome</h1>
<div><span id="start">start</span></div>
<form action="/greet" method="GET">
  <input type="text" name="who">
  <input type="checkbox" name="subscribe">
  <input type="submit" value="Go">
</form>
<a href="/about">About</a>
<div id="box" contenteditable></div>
<div id="widget">drag me</div>
<script data-script="test.home"></script>
</body></html>"""


def build_browser(extra_routes=None, extra_scripts=None, latency_ms=50.0,
                  developer_mode=False):
    """A browser serving the standard test application."""
    loop = EventLoop(VirtualClock())
    network = Network(loop, default_latency_ms=latency_ms)
    registry = ScriptRegistry()

    server = RouteServer()
    server.add_route("/", lambda request: HOME_HTML)
    server.add_route(
        "/greet",
        lambda request: (
            '<html><head><title>Greet</title></head><body>'
            '<p id="msg">Hello %s</p><a href="/">back</a></body></html>'
            % request.query.get("who", "?")))
    server.add_route(
        "/about",
        lambda request: ('<html><head><title>About</title></head>'
                         '<body><p>about</p></body></html>'))
    server.add_route(
        "/frame",
        lambda request: ('<html><head><title>Framed</title></head><body>'
                         '<iframe id="child" src="/inner"></iframe>'
                         '<iframe id="bare"><p id="inline">inline</p></iframe>'
                         '</body></html>'))
    server.add_route(
        "/inner",
        lambda request: ('<html><head><title>Inner</title></head><body>'
                         '<button id="innerbtn">press</button>'
                         '</body></html>'))
    for path, handler in (extra_routes or {}).items():
        server.add_route(path, handler)

    def home_script(window):
        window.env.loaded = True
        window.env.clicks = []
        window.env.keys = []
        box = window.get_element_by_id("box")
        box.add_event_listener(
            "click", lambda event: window.env.clicks.append("box"))
        box.add_event_listener(
            "keypress", lambda event: window.env.keys.append(event.key_code))

    registry.register("test.home", home_script)
    for name, script in (extra_scripts or {}).items():
        registry.register(name, script)

    network.register(HOST, server)
    return Browser(network=network, script_registry=registry,
                   developer_mode=developer_mode)


def url(path="/"):
    return "http://%s%s" % (HOST, path)
