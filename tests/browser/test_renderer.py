"""The renderer process and the Figure-3 input path."""

import pytest

from repro.browser.ipc import InputMessage
from repro.events.event import KeyboardEvent, MouseEvent
from repro.events.keys import virtual_key_code
from tests.browser.helpers import build_browser, url


@pytest.fixture
def tab():
    return build_browser().new_tab(url("/"))


def test_input_crosses_the_ipc_channel(tab):
    """Input must take the browser → IPC → renderer → WebKit path."""
    before = tab.renderer.channel.delivered_count
    tab.click_element(tab.find('//span[@id="start"]'))
    assert tab.renderer.channel.delivered_count == before + 1


def test_keystrokes_are_individual_messages(tab):
    tab.click_element(tab.find('//div[@id="box"]'))
    before = tab.renderer.channel.delivered_count
    tab.type_text("abc")
    assert tab.renderer.channel.delivered_count == before + 3


def test_shifted_key_is_two_messages(tab):
    """Chrome registers two keystrokes for Shift+letter (paper IV-B)."""
    tab.click_element(tab.find('//div[@id="box"]'))
    before = tab.renderer.channel.delivered_count
    tab.type_key("H")
    assert tab.renderer.channel.delivered_count == before + 2


def test_renderer_routes_message_kinds(tab):
    """Directly injected messages reach the right EventHandler method."""
    renderer = tab.renderer
    field = tab.find('//input[@name="who"]')
    x, y = tab.engine.layout.click_point(field)

    mouse = MouseEvent("mousepress", client_x=x, client_y=y, detail=1)
    mouse.is_trusted = True
    renderer.send_input(InputMessage(InputMessage.MOUSE, mouse))
    assert tab.engine.focused_element is field

    key = KeyboardEvent.trusted("rawkey", "a", virtual_key_code("a"))
    renderer.send_input(InputMessage(InputMessage.KEY, key))
    assert field.value == "a"


def test_shutdown_renderer_ignores_input(tab):
    renderer = tab.renderer
    renderer.shutdown()
    mouse = MouseEvent("mousepress", client_x=5, client_y=5, detail=1)
    mouse.is_trusted = True
    # No exception: a dead renderer drops input on the floor.
    renderer.send_input(InputMessage(InputMessage.MOUSE, mouse))


def test_navigation_swaps_renderers_new_before_old(tab):
    """The load-new-then-unload-old order the active-client bug needs."""
    events = []
    old_engine = tab.engine
    old_engine.unload_listeners.append(lambda engine: events.append("unload"))
    tab.browser.frame_load_listeners.append(lambda engine: events.append("load"))
    tab.navigate(url("/about"))
    assert events == ["load", "unload"]
