"""Tabs: navigation, history, waiting, input surface."""

import pytest

from repro.util.errors import NavigationError
from tests.browser.helpers import build_browser, url


@pytest.fixture
def browser():
    return build_browser()


class TestNavigation:
    def test_navigate_loads_page(self, browser):
        tab = browser.new_tab(url("/"))
        assert tab.url == url("/")
        assert tab.document.title == "Home"

    def test_navigation_replaces_renderer(self, browser):
        tab = browser.new_tab(url("/"))
        first_renderer = tab.renderer
        tab.navigate(url("/about"))
        assert tab.renderer is not first_renderer

    def test_unknown_host_raises(self, browser):
        tab = browser.new_tab(url("/"))
        with pytest.raises(NavigationError):
            tab.navigate("http://nowhere.example/")

    def test_404_still_renders(self, browser):
        tab = browser.new_tab(url("/missing-page"))
        assert tab.url == url("/missing-page")

    def test_engine_access_before_load_raises(self, browser):
        tab = browser.new_tab()
        with pytest.raises(NavigationError):
            tab.engine


class TestHistory:
    def test_back_and_forward(self, browser):
        tab = browser.new_tab(url("/"))
        tab.navigate(url("/about"))
        tab.back()
        assert tab.document.title == "Home"
        tab.forward()
        assert tab.document.title == "About"

    def test_back_at_start_raises(self, browser):
        tab = browser.new_tab(url("/"))
        with pytest.raises(NavigationError):
            tab.back()

    def test_forward_at_end_raises(self, browser):
        tab = browser.new_tab(url("/"))
        with pytest.raises(NavigationError):
            tab.forward()

    def test_new_navigation_truncates_forward_history(self, browser):
        tab = browser.new_tab(url("/"))
        tab.navigate(url("/about"))
        tab.back()
        tab.navigate(url("/greet?who=x"))
        with pytest.raises(NavigationError):
            tab.forward()

    def test_link_navigation_recorded_in_history(self, browser):
        tab = browser.new_tab(url("/"))
        tab.click_element(tab.find('//a[text()="About"]'))
        tab.back()
        assert tab.document.title == "Home"


class TestWaiting:
    def test_wait_advances_clock(self, browser):
        tab = browser.new_tab(url("/"))
        before = browser.clock.now()
        tab.wait(250)
        assert browser.clock.now() == before + 250

    def test_wait_runs_due_timers(self, browser):
        tab = browser.new_tab(url("/"))
        fired = []
        browser.event_loop.call_later(100, lambda: fired.append(1))
        tab.wait(150)
        assert fired == [1]


class TestTypeText:
    def test_type_text_advances_clock_per_key(self, browser):
        tab = browser.new_tab(url("/"))
        tab.click_element(tab.find('//input[@name="who"]'))
        before = browser.clock.now()
        tab.type_text("abc", think_time_ms=40)
        assert browser.clock.now() == before + 120

    def test_shifted_character_still_one_char(self, browser):
        tab = browser.new_tab(url("/"))
        field = tab.find('//input[@name="who"]')
        tab.click_element(field)
        tab.type_text("Ab!")
        assert field.value == "Ab!"


class TestFind:
    def test_find_returns_element(self, browser):
        tab = browser.new_tab(url("/"))
        assert tab.find("//h1").text_content == "Welcome"

    def test_find_raises_for_missing(self, browser):
        from repro.util.errors import ElementNotFoundError

        tab = browser.new_tab(url("/"))
        with pytest.raises(ElementNotFoundError):
            tab.find("//video")
