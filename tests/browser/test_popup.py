"""Popup widgets bypass WebKit — the recorder's documented blind spot."""

import pytest

from repro.core.recorder import WarrRecorder
from tests.browser.helpers import build_browser, url


def test_popup_buttons_and_handlers():
    browser = build_browser()
    outcomes = []
    popup = browser.show_popup("Confirm", ["OK", "Cancel"])
    popup.on_button("OK", lambda: outcomes.append("ok"))
    popup.click_button("OK")
    assert outcomes == ["ok"]
    assert popup.dismissed
    assert popup.clicked[0][0] == "OK"


def test_unknown_button_rejected():
    browser = build_browser()
    popup = browser.show_popup("Confirm", ["OK"])
    with pytest.raises(ValueError):
        popup.click_button("Maybe")
    with pytest.raises(ValueError):
        popup.on_button("Maybe", lambda: None)


def test_popup_click_timestamps_use_clock():
    browser = build_browser()
    browser.clock.advance(123)
    popup = browser.show_popup("X", ["OK"])
    popup.click_button("OK")
    assert popup.clicked[0][1] == 123


def test_recorder_misses_popup_interaction():
    """Paper, Section IV-D: 'WaRR cannot handle pop-ups because user
    interaction events that happen on such widgets are not routed
    through to WebKit.'"""
    browser = build_browser()
    recorder = WarrRecorder().attach(browser)
    recorder.begin(url("/"))
    tab = browser.new_tab(url("/"))
    tab.click_element(tab.find('//span[@id="start"]'))  # recorded
    popup = browser.show_popup("Alert", ["OK"])
    popup.click_button("OK")  # NOT recorded
    assert len(recorder.trace) == 1
    assert recorder.trace[0].action == "click"
