"""IPC channel message passing."""

import pytest

from repro.browser.ipc import InputMessage, IpcChannel


def test_message_kinds_validated():
    with pytest.raises(ValueError):
        InputMessage("bogus", None)


def test_send_then_pump_delivers_in_order():
    channel = IpcChannel()
    received = []
    channel.connect(received.append)
    first = InputMessage(InputMessage.MOUSE, "m1")
    second = InputMessage(InputMessage.KEY, "k1")
    channel.send(first)
    channel.send(second)
    assert received == []
    delivered = channel.pump()
    assert delivered == 2
    assert received == [first, second]


def test_pump_without_receiver_raises():
    channel = IpcChannel()
    channel.send(InputMessage(InputMessage.KEY, "x"))
    with pytest.raises(RuntimeError):
        channel.pump()


def test_send_and_pump_round_trip():
    channel = IpcChannel()
    received = []
    channel.connect(received.append)
    channel.send_and_pump(InputMessage(InputMessage.DRAG, "d"))
    assert len(received) == 1


def test_delivered_count_accumulates():
    channel = IpcChannel()
    channel.connect(lambda message: None)
    for _ in range(3):
        channel.send_and_pump(InputMessage(InputMessage.KEY, "x"))
    assert channel.delivered_count == 3


def test_enqueue_timestamps_recorded():
    channel = IpcChannel()
    channel.connect(lambda message: None)
    message = InputMessage(InputMessage.MOUSE, "m")
    assert message.enqueued_at is None
    channel.send(message)
    assert message.enqueued_at is not None


def test_large_queue_drains_in_order():
    """Regression: pump must be O(n) over the queue, not O(n^2).

    The old implementation popped from the front of a list, making a
    deep queue quadratic to drain; 50k messages now drain well inside
    any sane time budget, and strictly in FIFO order.
    """
    import time as _time

    channel = IpcChannel()
    received = []
    channel.connect(received.append)
    count = 50_000
    for n in range(count):
        channel.send(InputMessage(InputMessage.KEY, n))
    started = _time.perf_counter()
    delivered = channel.pump()
    elapsed = _time.perf_counter() - started
    assert delivered == count
    assert [message.payload for message in received] == list(range(count))
    # Generous wall bound: quadratic draining takes tens of seconds.
    assert elapsed < 5.0


def test_virtual_clock_makes_latency_deterministic():
    from repro.util.clock import VirtualClock

    clock = VirtualClock()
    channel = IpcChannel(clock=clock)
    channel.connect(lambda message: None)
    message = InputMessage(InputMessage.MOUSE, "m")
    channel.send(message)
    clock.advance(5.0)
    assert channel.latency_ms(message) == 5.0
    clock.advance(2.5)
    assert channel.latency_ms(message) == 7.5


def test_wall_clock_latency_is_milliseconds():
    channel = IpcChannel()
    channel.connect(lambda message: None)
    message = InputMessage(InputMessage.KEY, "k")
    channel.send(message)
    latency = channel.latency_ms(message)
    assert latency is not None
    assert 0.0 <= latency < 1000.0


def test_latency_none_before_send():
    channel = IpcChannel()
    assert channel.latency_ms(InputMessage(InputMessage.KEY, "k")) is None
