"""IPC channel message passing."""

import pytest

from repro.browser.ipc import InputMessage, IpcChannel


def test_message_kinds_validated():
    with pytest.raises(ValueError):
        InputMessage("bogus", None)


def test_send_then_pump_delivers_in_order():
    channel = IpcChannel()
    received = []
    channel.connect(received.append)
    first = InputMessage(InputMessage.MOUSE, "m1")
    second = InputMessage(InputMessage.KEY, "k1")
    channel.send(first)
    channel.send(second)
    assert received == []
    delivered = channel.pump()
    assert delivered == 2
    assert received == [first, second]


def test_pump_without_receiver_raises():
    channel = IpcChannel()
    channel.send(InputMessage(InputMessage.KEY, "x"))
    with pytest.raises(RuntimeError):
        channel.pump()


def test_send_and_pump_round_trip():
    channel = IpcChannel()
    received = []
    channel.connect(received.append)
    channel.send_and_pump(InputMessage(InputMessage.DRAG, "d"))
    assert len(received) == 1


def test_delivered_count_accumulates():
    channel = IpcChannel()
    channel.connect(lambda message: None)
    for _ in range(3):
        channel.send_and_pump(InputMessage(InputMessage.KEY, "x"))
    assert channel.delivered_count == 3


def test_enqueue_timestamps_recorded():
    channel = IpcChannel()
    channel.connect(lambda message: None)
    message = InputMessage(InputMessage.MOUSE, "m")
    assert message.enqueued_at is None
    channel.send(message)
    assert message.enqueued_at is not None
