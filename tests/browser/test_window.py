"""Browser composition root."""

import pytest

from repro.browser.window import Browser, BrowserWindow
from repro.net.server import Network
from repro.util.clock import VirtualClock
from repro.util.event_loop import EventLoop
from tests.browser.helpers import build_browser, url


class TestConstruction:
    def test_defaults_build_own_services(self):
        browser = Browser()
        assert browser.network is not None
        assert browser.clock is browser.event_loop.clock

    def test_inherits_network_loop(self):
        loop = EventLoop(VirtualClock())
        network = Network(loop)
        browser = Browser(network=network)
        assert browser.event_loop is loop

    def test_mismatched_loop_rejected(self):
        network = Network(EventLoop(VirtualClock()))
        with pytest.raises(ValueError):
            Browser(network=network, event_loop=EventLoop(VirtualClock()))

    def test_browser_window_alias(self):
        assert issubclass(BrowserWindow, Browser)


class TestTabs:
    def test_new_tab_ids_increment(self):
        browser = build_browser()
        first = browser.new_tab()
        second = browser.new_tab()
        assert (first.tab_id, second.tab_id) == (0, 1)

    def test_active_tab_is_latest(self):
        browser = build_browser()
        browser.new_tab()
        latest = browser.new_tab()
        assert browser.active_tab is latest

    def test_no_tabs_active_none(self):
        assert build_browser().active_tab is None

    def test_tabs_share_clock(self):
        browser = build_browser()
        a = browser.new_tab(url("/"))
        browser.new_tab(url("/about"))
        a.wait(100)
        assert browser.clock.now() >= 100


class TestPageErrors:
    def test_page_errors_survive_navigation(self):
        def bad_script(window):
            raise ValueError("nope")

        browser = build_browser(
            extra_routes={
                "/bad": lambda request:
                    "<body><script data-script='t.bad'></script></body>",
            },
            extra_scripts={"t.bad": bad_script},
        )
        tab = browser.new_tab(url("/bad"))
        tab.navigate(url("/about"))
        assert len(browser.page_errors) == 1


class TestObserverRegistry:
    def test_attach_returns_observer(self):
        browser = build_browser()
        marker = object()
        assert browser.attach_observer(marker) is marker
        assert marker in browser.input_observers

    def test_detach_unknown_is_noop(self):
        build_browser().detach_observer(object())
