"""WebKit-layer event handling: default actions and observer hooks."""

import pytest

from repro.browser.event_handler import InputObserver
from tests.browser.helpers import build_browser, url


@pytest.fixture
def tab():
    browser = build_browser()
    return browser.new_tab(url("/"))


class RecordingObserver(InputObserver):
    def __init__(self):
        self.mouse = []
        self.keys = []
        self.drags = []

    def on_mouse_press(self, engine, event, target):
        self.mouse.append((event, target))

    def on_key(self, engine, event, target):
        self.keys.append((event, target))

    def on_drag(self, engine, event, target):
        self.drags.append((event, target))


class TestClickDefaults:
    def test_click_focuses_focusable(self, tab):
        field = tab.find('//input[@name="who"]')
        tab.click_element(field)
        assert tab.engine.focused_element is field

    def test_click_on_div_clears_focus(self, tab):
        tab.click_element(tab.find('//input[@name="who"]'))
        tab.click_element(tab.find("//h1"))
        assert tab.engine.focused_element is None

    def test_click_contenteditable_focuses(self, tab):
        box = tab.find('//div[@id="box"]')
        tab.click_element(box)
        assert tab.engine.focused_element is box

    def test_link_click_navigates(self, tab):
        tab.click_element(tab.find('//a[text()="About"]'))
        assert tab.document.title == "About"

    def test_checkbox_toggles(self, tab):
        checkbox = tab.find('//input[@type="checkbox"]')
        tab.click_element(checkbox)
        assert checkbox.has_attribute("checked")
        tab.click_element(checkbox)
        assert not checkbox.has_attribute("checked")

    def test_submit_click_serializes_form(self, tab):
        tab.click_element(tab.find('//input[@name="who"]'))
        tab.type_text("Ada")
        tab.click_element(tab.find('//input[@type="submit"]'))
        assert "who=Ada" in tab.url
        assert tab.find('//p[@id="msg"]').text_content == "Hello Ada"

    def test_checked_checkbox_included_in_submit(self, tab):
        tab.click_element(tab.find('//input[@type="checkbox"]'))
        tab.click_element(tab.find('//input[@type="submit"]'))
        assert "subscribe=" in tab.url

    def test_prevent_default_stops_navigation(self, tab):
        link = tab.find('//a[text()="About"]')
        link.add_event_listener("click", lambda event: event.prevent_default())
        tab.click_element(link)
        assert tab.document.title == "Home"


class TestKeyDefaults:
    def test_typing_into_input_builds_value(self, tab):
        tab.click_element(tab.find('//input[@name="who"]'))
        tab.type_text("Hi!")
        assert tab.find('//input[@name="who"]').value == "Hi!"

    def test_typing_into_contenteditable_builds_text(self, tab):
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_text("abc")
        assert tab.find('//div[@id="box"]').text_content == "abc"

    def test_backspace_deletes(self, tab):
        tab.click_element(tab.find('//input[@name="who"]'))
        tab.type_text("abc")
        tab.type_key("Backspace")
        assert tab.find('//input[@name="who"]').value == "ab"

    def test_enter_in_input_submits_form(self, tab):
        tab.click_element(tab.find('//input[@name="who"]'))
        tab.type_text("Eve")
        tab.type_key("Enter")
        assert tab.document.title == "Greet"

    def test_keys_without_focus_hit_body_harmlessly(self, tab):
        tab.type_key("x")
        assert tab.document.title == "Home"

    def test_keypress_handler_sees_trusted_key_code(self, tab):
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_text("Hi")
        env = tab.engine.window.env
        assert env.keys == [72, 73]

    def test_prevent_default_on_keydown_stops_insertion(self, tab):
        field = tab.find('//input[@name="who"]')
        field.add_event_listener("keydown", lambda event: event.prevent_default())
        tab.click_element(field)
        tab.type_text("x")
        assert field.value == ""


class TestDragDefaults:
    def test_drag_moves_element(self, tab):
        widget = tab.find('//div[@id="widget"]')
        before = tab.engine.layout.box_for(widget).rect
        tab.drag_element(widget, 25, 10)
        after = tab.engine.layout.box_for(widget).rect
        assert (after.x, after.y) == (before.x + 25, before.y + 10)

    def test_drags_accumulate(self, tab):
        widget = tab.find('//div[@id="widget"]')
        tab.drag_element(widget, 10, 0)
        tab.drag_element(widget, 10, 0)
        assert widget.get_attribute("data-offset-x") == "20"

    def test_prevent_default_stops_move(self, tab):
        widget = tab.find('//div[@id="widget"]')
        widget.add_event_listener("drag", lambda event: event.prevent_default())
        tab.drag_element(widget, 25, 10)
        assert widget.get_attribute("data-offset-x") is None


class TestObservers:
    def test_observer_sees_every_action(self, tab):
        observer = RecordingObserver()
        tab.browser.attach_observer(observer)
        tab.click_element(tab.find('//span[@id="start"]'))
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_text("ab")
        tab.drag_element(tab.find('//div[@id="widget"]'), 5, 5)
        assert len(observer.mouse) == 2
        assert len(observer.keys) == 2
        assert len(observer.drags) == 1

    def test_observer_called_before_dom_dispatch(self, tab):
        order = []

        class Probe(InputObserver):
            def on_mouse_press(self, engine, event, target):
                order.append("recorder")

        tab.browser.attach_observer(Probe())
        box = tab.find('//div[@id="box"]')
        box.add_event_listener("click", lambda event: order.append("page"))
        tab.click_element(box)
        assert order == ["recorder", "page"]

    def test_observer_receives_hit_target(self, tab):
        observer = RecordingObserver()
        tab.browser.attach_observer(observer)
        start = tab.find('//span[@id="start"]')
        tab.click_element(start)
        _, target = observer.mouse[0]
        assert target is start

    def test_shift_keystroke_reaches_observer(self, tab):
        """Chrome registers two keystrokes for shift+letter; both cross
        the EventHandler (the recorder decides to combine them)."""
        observer = RecordingObserver()
        tab.browser.attach_observer(observer)
        tab.click_element(tab.find('//div[@id="box"]'))
        tab.type_key("H")
        keys = [event.key for event, _ in observer.keys]
        assert keys == ["Shift", "H"]

    def test_detached_observer_not_called(self, tab):
        observer = RecordingObserver()
        tab.browser.attach_observer(observer)
        tab.browser.detach_observer(observer)
        tab.click_element(tab.find('//span[@id="start"]'))
        assert observer.mouse == []


class TestDoubleClick:
    def test_dblclick_dispatched_for_detail_two(self, tab):
        box = tab.find('//div[@id="box"]')
        seen = []
        box.add_event_listener("dblclick", lambda event: seen.append(event.detail))
        tab.double_click_element(box)
        assert seen == [2]

    def test_single_click_not_dblclick(self, tab):
        box = tab.find('//div[@id="box"]')
        seen = []
        box.add_event_listener("dblclick", lambda event: seen.append(1))
        tab.click_element(box)
        assert seen == []
