"""Seeded randomness.

Anything stochastic in the reproduction — typo injection, GMail's per-load
id churn, synthetic user sessions, human think-time — draws from a
:class:`SeededRandom` so experiments are reproducible and tests can assert
exact outcomes.
"""

import random


class SeededRandom:
    """Thin wrapper over :class:`random.Random` with domain helpers."""

    def __init__(self, seed=0):
        self.seed = seed
        self._random = random.Random(seed)

    def randint(self, low, high):
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def random(self):
        """Uniform float in [0, 1)."""
        return self._random.random()

    def choice(self, sequence):
        """Uniformly pick one element of a non-empty sequence."""
        return self._random.choice(sequence)

    def sample(self, sequence, count):
        """Pick ``count`` distinct elements."""
        return self._random.sample(sequence, count)

    def shuffle(self, items):
        """Shuffle a list in place and return it for convenience."""
        self._random.shuffle(items)
        return items

    def uniform(self, low, high):
        """Uniform float in [low, high]."""
        return self._random.uniform(low, high)

    def gauss_positive(self, mean, stddev, minimum=0.0):
        """Gaussian sample clamped below at ``minimum``.

        Used for human think-time between actions (always non-negative).
        """
        return max(minimum, self._random.gauss(mean, stddev))

    def fork(self, label):
        """Derive an independent, reproducible child generator.

        Forking by label keeps unrelated consumers (e.g. the typo injector
        and the id-churn generator) from perturbing each other's streams.
        """
        child_seed = hash((self.seed, label)) & 0x7FFFFFFF
        return SeededRandom(child_seed)

    def __repr__(self):
        return "SeededRandom(seed=%r)" % (self.seed,)
