"""Exception hierarchy and failure taxonomy for the WaRR reproduction.

The hierarchy mirrors the layers of the system: DOM/XPath errors come from
the engine substrate, script errors model JavaScript runtime failures (the
Google Sites bug in the paper manifests as a ``JSReferenceError``), and
replay errors come from the WaRR Replayer and its ChromeDriver simulation.

Every error additionally carries a **severity** — the structured taxonomy
the self-healing replay engine keys retries on:

- ``transient`` — the failure is environmental and a retry may succeed
  (a dropped fetch, a crashed renderer, an injected fault);
- ``permanent`` — retrying the same command cannot help (a locator the
  whole relaxation ladder missed, a malformed trace);
- ``fatal`` — the session itself is unrecoverable (no active
  ChromeDriver client left).

Severity is a class attribute, so ``classify()`` works on any exception;
non-:class:`ReproError` exceptions classify as permanent.
"""

#: Severity levels of the failure taxonomy.
TRANSIENT = "transient"
PERMANENT = "permanent"
FATAL = "fatal"


def classify(error):
    """Severity of ``error``: ``transient``, ``permanent``, or ``fatal``.

    Instances may override their class's severity by assigning a
    ``severity`` attribute (e.g. a :class:`NavigationError` wrapping a
    transient network fault stays retryable).
    """
    return getattr(error, "severity", PERMANENT)


def is_transient(error):
    """True when a retry of the failed operation may succeed."""
    return classify(error) == TRANSIENT


def is_fatal(error):
    """True when the whole session is beyond recovery."""
    return classify(error) == FATAL


class ReproError(Exception):
    """Base class for every error raised by this library."""

    #: Default taxonomy bucket; subclasses (or instances) override.
    severity = PERMANENT


class DomError(ReproError):
    """Invalid DOM manipulation (bad hierarchy, detached node, ...)."""


class XPathError(ReproError):
    """Base class for XPath engine errors."""


class XPathSyntaxError(XPathError):
    """The XPath expression could not be parsed."""


class ElementNotFoundError(XPathError):
    """No element in the document matches the given locator."""


class NavigationError(ReproError):
    """The browser could not navigate to the requested URL.

    The severity follows the underlying cause: a navigation that failed
    because the network faulted transiently is itself transient (the
    caller re-raising should copy the cause's severity onto the
    instance).
    """


class NetworkError(ReproError):
    """The simulated network failed the request (no route, bad status)."""


class NetworkFaultError(NetworkError):
    """A transient network failure (injected fault, flaky backend).

    Distinct from the base :class:`NetworkError` (which covers permanent
    conditions like "no server registered") so the retry machinery never
    wastes attempts on unroutable requests.
    """

    severity = TRANSIENT


class NetworkTimeoutError(NetworkError):
    """The request exceeded the network's configured timeout."""

    severity = TRANSIENT


class TapeMissError(NetworkError):
    """Playback found no tape entry matching the request fingerprint.

    Permanent by design: replaying the same request against the same
    tape cannot start matching, so burning retry attempts (and backoff
    time) on a miss would only delay the inevitable failure.
    """


class ScriptError(ReproError):
    """A page script raised during execution.

    Carries the underlying JS-level error so tools built on WaRR (e.g.
    WebErr's oracle) can classify failures.
    """

    def __init__(self, message, cause=None):
        super().__init__(message)
        self.cause = cause


class JSReferenceError(ScriptError):
    """Use of an undefined variable inside a page script.

    This is the class of bug WebErr found in Google Sites: interacting
    before asynchronous initialization finished makes the page script read
    a variable that was never assigned.
    """


class JSTypeError(ScriptError):
    """A page script called/accessed a value of the wrong type."""


class InjectedScriptError(ScriptError):
    """A page-script exception injected by :mod:`repro.chaos`.

    Kept distinct from organic script failures so oracles (and the
    chaos survival report) can tell injected noise from real bugs.
    """

    severity = TRANSIENT


class ReadOnlyPropertyError(ReproError):
    """Attempt to set a read-only JavaScript event property.

    User-facing WebKit browsers make certain ``KeyboardEvent`` properties
    read-only; the WaRR Replayer's developer browser lifts the restriction
    (paper, Section IV-C).
    """


class ReplayError(ReproError):
    """The WaRR Replayer failed to replay a command."""


class ReplayHaltedError(ReplayError):
    """Replay halted because no active ChromeDriver client exists.

    Models the ChromeDriver unresponsiveness described in Section IV-C:
    after a page change, the master may fail to elect a new active client
    unless WaRR's fix is enabled.
    """

    severity = FATAL


class DriverError(ReproError):
    """Browser-driver (WebDriver/ChromeDriver) protocol failure."""


class RendererCrashError(DriverError):
    """The renderer process behind the page died (Chrome's "sad tab").

    Transient by design: the tab can be reloaded and the session resumed
    from its replay checkpoint, which is exactly what the engine's
    recovery path does when a :class:`~repro.session.policies.RetryPolicy`
    is active.
    """

    severity = TRANSIENT


class RendererHangError(DriverError):
    """The renderer stopped responding to input for longer than allowed."""

    severity = TRANSIENT


class TraceFormatError(ReproError):
    """A serialized WaRR Command trace could not be parsed."""


class GrammarError(ReproError):
    """Invalid user-interaction grammar (WebErr)."""
