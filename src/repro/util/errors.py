"""Exception hierarchy for the WaRR reproduction.

The hierarchy mirrors the layers of the system: DOM/XPath errors come from
the engine substrate, script errors model JavaScript runtime failures (the
Google Sites bug in the paper manifests as a ``JSReferenceError``), and
replay errors come from the WaRR Replayer and its ChromeDriver simulation.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DomError(ReproError):
    """Invalid DOM manipulation (bad hierarchy, detached node, ...)."""


class XPathError(ReproError):
    """Base class for XPath engine errors."""


class XPathSyntaxError(XPathError):
    """The XPath expression could not be parsed."""


class ElementNotFoundError(XPathError):
    """No element in the document matches the given locator."""


class NavigationError(ReproError):
    """The browser could not navigate to the requested URL."""


class NetworkError(ReproError):
    """The simulated network failed the request (no route, bad status)."""


class ScriptError(ReproError):
    """A page script raised during execution.

    Carries the underlying JS-level error so tools built on WaRR (e.g.
    WebErr's oracle) can classify failures.
    """

    def __init__(self, message, cause=None):
        super().__init__(message)
        self.cause = cause


class JSReferenceError(ScriptError):
    """Use of an undefined variable inside a page script.

    This is the class of bug WebErr found in Google Sites: interacting
    before asynchronous initialization finished makes the page script read
    a variable that was never assigned.
    """


class JSTypeError(ScriptError):
    """A page script called/accessed a value of the wrong type."""


class ReadOnlyPropertyError(ReproError):
    """Attempt to set a read-only JavaScript event property.

    User-facing WebKit browsers make certain ``KeyboardEvent`` properties
    read-only; the WaRR Replayer's developer browser lifts the restriction
    (paper, Section IV-C).
    """


class ReplayError(ReproError):
    """The WaRR Replayer failed to replay a command."""


class ReplayHaltedError(ReplayError):
    """Replay halted because no active ChromeDriver client exists.

    Models the ChromeDriver unresponsiveness described in Section IV-C:
    after a page change, the master may fail to elect a new active client
    unless WaRR's fix is enabled.
    """


class DriverError(ReproError):
    """Browser-driver (WebDriver/ChromeDriver) protocol failure."""


class TraceFormatError(ReproError):
    """A serialized WaRR Command trace could not be parsed."""


class GrammarError(ReproError):
    """Invalid user-interaction grammar (WebErr)."""
