"""Small text algorithms shared across the library."""


def edit_distance(left, right, maximum=None, transpositions=False):
    """Levenshtein (or Damerau-Levenshtein) distance between strings.

    ``transpositions=True`` counts swapping two adjacent characters as a
    single edit (Damerau), which is what competent spell checkers use —
    human typos are frequently transpositions.

    With ``maximum`` set, computation short-circuits and returns
    ``maximum + 1`` as soon as the distance provably exceeds it — the
    spell checkers only care about small distances.
    """
    if left == right:
        return 0
    if maximum is not None and abs(len(left) - len(right)) > maximum:
        return maximum + 1
    grand = None  # row i-2, needed for the transposition case
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        row_minimum = i
        for j, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            value = min(previous[j] + 1, current[j - 1] + 1,
                        previous[j - 1] + cost)
            if (transpositions and i > 1 and j > 1
                    and left_char == right[j - 2]
                    and left[i - 2] == right_char):
                value = min(value, grand[j - 2] + 1)
            current.append(value)
            row_minimum = min(row_minimum, value)
        if maximum is not None and row_minimum > maximum:
            return maximum + 1
        grand = previous
        previous = current
    return previous[-1]


def dice_coefficient(set_a, set_b):
    """Dice similarity of two multisets (given as dicts item -> count)."""
    if not set_a and not set_b:
        return 1.0
    overlap = 0
    for item, count in set_a.items():
        overlap += min(count, set_b.get(item, 0))
    total = sum(set_a.values()) + sum(set_b.values())
    if total == 0:
        return 1.0
    return 2.0 * overlap / total
