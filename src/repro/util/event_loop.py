"""Discrete-event scheduler driving the simulated browser.

AJAX responses, ``setTimeout`` callbacks, and asynchronous page
initialization (the source of the timing errors WebErr injects) are all
modeled as tasks scheduled on this loop. Running the loop advances the
:class:`~repro.util.clock.VirtualClock`, so "waiting" during replay is a
deterministic simulation step rather than a real sleep.
"""

import heapq
import itertools

from repro.util.clock import VirtualClock


class ScheduledTask:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("when", "callback", "cancelled", "task_id")

    def __init__(self, when, callback, task_id):
        self.when = when
        self.callback = callback
        self.cancelled = False
        self.task_id = task_id

    def cancel(self):
        """Prevent the task from running (no-op if it already ran)."""
        self.cancelled = True

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "ScheduledTask(id=%d, when=%.3f, %s)" % (self.task_id, self.when, state)


class EventLoop:
    """Priority-queue discrete-event loop over a virtual clock.

    Tasks scheduled for the same instant run in scheduling order (FIFO),
    which matches how a single-threaded browser event loop drains its
    queue and keeps runs deterministic.
    """

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else VirtualClock()
        self._queue = []
        self._counter = itertools.count()

    def call_later(self, delay_ms, callback):
        """Schedule ``callback`` to run ``delay_ms`` ms from now."""
        if delay_ms < 0:
            raise ValueError("delay must be non-negative, got %r" % delay_ms)
        task_id = next(self._counter)
        task = ScheduledTask(self.clock.now() + delay_ms, callback, task_id)
        heapq.heappush(self._queue, (task.when, task_id, task))
        return task

    def call_soon(self, callback):
        """Schedule ``callback`` to run at the current instant."""
        return self.call_later(0.0, callback)

    def pending_count(self):
        """Number of not-yet-cancelled tasks in the queue."""
        return sum(1 for _, _, task in self._queue if not task.cancelled)

    def next_deadline(self):
        """Timestamp of the earliest pending task, or None if idle."""
        for when, _, task in sorted(self._queue):
            if not task.cancelled:
                return when
        return None

    def run_until_idle(self, max_tasks=100_000):
        """Run tasks (advancing the clock) until the queue is empty.

        ``max_tasks`` guards against runaway self-rescheduling scripts.
        Returns the number of tasks executed.
        """
        executed = 0
        while self._queue:
            if executed >= max_tasks:
                raise RuntimeError("event loop exceeded %d tasks" % max_tasks)
            when, _, task = heapq.heappop(self._queue)
            if task.cancelled:
                continue
            # Synchronous work (e.g. a navigation fetch) may advance the
            # clock past a pending deadline; overdue tasks run "now".
            self.clock.advance_to(max(when, self.clock.now()))
            task.callback()
            executed += 1
        return executed

    def run_for(self, duration_ms):
        """Run tasks due within the next ``duration_ms`` ms, then advance.

        The clock always ends exactly ``duration_ms`` later, whether or not
        tasks were due — this is what "the user waits" means in replay.
        Returns the number of tasks executed.
        """
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        deadline = self.clock.now() + duration_ms
        executed = 0
        while self._queue:
            when, _, task = self._queue[0]
            if when > deadline:
                break
            heapq.heappop(self._queue)
            if task.cancelled:
                continue
            self.clock.advance_to(max(when, self.clock.now()))
            task.callback()
            executed += 1
        self.clock.advance_to(max(deadline, self.clock.now()))
        return executed

    def __repr__(self):
        return "EventLoop(now=%.3f, pending=%d)" % (
            self.clock.now(),
            self.pending_count(),
        )
