"""Shared utilities: virtual time, discrete-event scheduling, seeded RNG.

Everything in the simulated browser stack that involves time or randomness
goes through this package so that runs are deterministic and testable.
"""

from repro.util.clock import VirtualClock
from repro.util.errors import (
    ReproError,
    DomError,
    XPathError,
    XPathSyntaxError,
    ElementNotFoundError,
    NavigationError,
    NetworkError,
    ScriptError,
    JSReferenceError,
    JSTypeError,
    ReadOnlyPropertyError,
    ReplayError,
    ReplayHaltedError,
    DriverError,
    TraceFormatError,
    GrammarError,
)
from repro.util.event_loop import EventLoop, ScheduledTask
from repro.util.rng import SeededRandom

__all__ = [
    "VirtualClock",
    "EventLoop",
    "ScheduledTask",
    "SeededRandom",
    "ReproError",
    "DomError",
    "XPathError",
    "XPathSyntaxError",
    "ElementNotFoundError",
    "NavigationError",
    "NetworkError",
    "ScriptError",
    "JSReferenceError",
    "JSTypeError",
    "ReadOnlyPropertyError",
    "ReplayError",
    "ReplayHaltedError",
    "DriverError",
    "TraceFormatError",
    "GrammarError",
]
