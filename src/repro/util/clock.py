"""Deterministic virtual time.

The paper's traces timestamp each command with "the time elapsed since the
previous action". Real wall-clock time would make tests flaky, so the whole
simulated browser stack reads time from a :class:`VirtualClock` that only
advances when told to (directly or by the event loop).

Times are measured in milliseconds, matching the granularity of the WaRR
Command format in Figure 4 of the paper.
"""


class VirtualClock:
    """A manually advanced millisecond clock.

    >>> clock = VirtualClock()
    >>> clock.now()
    0.0
    >>> clock.advance(12.5)
    >>> clock.now()
    12.5
    """

    def __init__(self, start=0.0):
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    def now(self):
        """Return the current virtual time in milliseconds."""
        return self._now

    def advance(self, delta_ms):
        """Move the clock forward by ``delta_ms`` milliseconds."""
        if delta_ms < 0:
            raise ValueError("time cannot move backwards (delta=%r)" % delta_ms)
        self._now += float(delta_ms)

    def advance_to(self, timestamp_ms):
        """Move the clock forward to an absolute timestamp."""
        if timestamp_ms < self._now:
            raise ValueError(
                "cannot rewind clock from %.3f to %.3f" % (self._now, timestamp_ms)
            )
        self._now = float(timestamp_ms)

    def __repr__(self):
        return "VirtualClock(now=%.3fms)" % self._now
