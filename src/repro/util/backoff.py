"""Capped exponential backoff with deterministic jitter.

Both retry layers — the session engine's
:class:`~repro.session.policies.RetryPolicy` and the network's request
retry — wait a growing, jittered delay between attempts. Real systems
jitter to de-synchronize clients; here jitter must also be
*reproducible*, so it draws from a :class:`~repro.util.rng.SeededRandom`
and the whole delay sequence is a pure function of ``(schedule, seed)``.
Delays are virtual milliseconds: "sleeping" them advances the virtual
clock, never the wall clock.
"""

from repro.util.rng import SeededRandom


class BackoffSchedule:
    """``base * 2^attempt`` capped at ``cap``, with proportional jitter.

    ``jitter`` is the fraction of the delay drawn uniformly at random
    and added on top (0.25 means up to +25%). A schedule object holds
    only configuration; call :meth:`sequence` for a per-consumer stream
    so concurrent consumers cannot perturb each other's draws.
    """

    def __init__(self, base_ms=25.0, cap_ms=1000.0, jitter=0.25):
        if base_ms < 0 or cap_ms < 0:
            raise ValueError("backoff delays cannot be negative")
        if jitter < 0:
            raise ValueError("jitter fraction cannot be negative")
        self.base_ms = float(base_ms)
        self.cap_ms = float(cap_ms)
        self.jitter = float(jitter)

    def raw_delay_ms(self, attempt):
        """The un-jittered delay before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are numbered from 1")
        return min(self.cap_ms, self.base_ms * (2.0 ** (attempt - 1)))

    def delay_ms(self, attempt, rng=None):
        """Jittered delay for ``attempt``; deterministic given ``rng``."""
        delay = self.raw_delay_ms(attempt)
        if self.jitter and rng is not None:
            delay += delay * self.jitter * rng.random()
        return delay

    def sequence(self, seed=0):
        """An independent, seeded delay stream for one consumer."""
        return BackoffSequence(self, SeededRandom(seed))

    def __repr__(self):
        return "BackoffSchedule(base=%gms, cap=%gms, jitter=%g)" % (
            self.base_ms, self.cap_ms, self.jitter)


class BackoffSequence:
    """A schedule bound to one seeded jitter stream."""

    def __init__(self, schedule, rng):
        self.schedule = schedule
        self._rng = rng

    def delay_ms(self, attempt):
        return self.schedule.delay_ms(attempt, rng=self._rng)

    def __repr__(self):
        return "BackoffSequence(%r)" % (self.schedule,)
