"""Simplified layout engine.

WaRR click commands carry the click position "as backup element
identification information" (paper, Section IV-B). That only works if
elements have geometry, so this package computes a deterministic box
layout for a DOM tree: block elements stack vertically, inline elements
flow horizontally, text size is a fixed character grid. It also provides
hit testing (point → deepest element) for the coordinate-fallback
replay heuristic.
"""

from repro.layout.box import Rect, LayoutBox
from repro.layout.engine import LayoutEngine, layout_document

__all__ = ["Rect", "LayoutBox", "LayoutEngine", "layout_document"]
