"""Geometry primitives for the layout engine."""


class Rect:
    """Axis-aligned rectangle in page coordinates (pixels)."""

    __slots__ = ("x", "y", "width", "height")

    def __init__(self, x=0, y=0, width=0, height=0):
        self.x = x
        self.y = y
        self.width = width
        self.height = height

    @property
    def right(self):
        return self.x + self.width

    @property
    def bottom(self):
        return self.y + self.height

    @property
    def center(self):
        """(x, y) of the rectangle's center, rounded to integers."""
        return (int(self.x + self.width / 2), int(self.y + self.height / 2))

    def contains(self, x, y):
        """True if the point lies inside (inclusive of top/left edges)."""
        return self.x <= x < self.right and self.y <= y < self.bottom

    def translated(self, dx, dy):
        """A copy moved by (dx, dy)."""
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def __eq__(self, other):
        return (
            isinstance(other, Rect)
            and (self.x, self.y, self.width, self.height)
            == (other.x, other.y, other.width, other.height)
        )

    def __repr__(self):
        return "Rect(x=%g, y=%g, w=%g, h=%g)" % (
            self.x, self.y, self.width, self.height,
        )


class LayoutBox:
    """The computed box of one element."""

    __slots__ = ("element", "rect")

    def __init__(self, element, rect):
        self.element = element
        self.rect = rect

    def __repr__(self):
        return "LayoutBox(<%s>, %r)" % (self.element.tag, self.rect)
