"""Flow layout over the DOM.

The model is a character grid: text advances ``CHAR_WIDTH`` px per
character on ``LINE_HEIGHT`` px lines. Block-level elements stack
vertically and span the available width; inline elements advance a
horizontal cursor. Tables lay rows vertically and distribute cells
horizontally. This is nowhere near CSS, but it is deterministic,
monotonic, and gives every element a non-degenerate rectangle — all
that coordinate-based replay needs.

Elements moved by drags carry ``data-offset-x/y`` attributes which the
engine applies as a final translation, so dragging changes geometry the
way the paper's drag command expects.
"""

from repro import chaos, perf, telemetry
from repro.dom.node import Document, Element, Text
from repro.layout.box import Rect, LayoutBox

CHAR_WIDTH = 8
LINE_HEIGHT = 18
PADDING = 4
DEFAULT_VIEWPORT_WIDTH = 1024
INPUT_WIDTH = 160
INPUT_HEIGHT = 22
BUTTON_PAD = 16
IFRAME_WIDTH = 400
IFRAME_HEIGHT = 150

#: Elements that flow horizontally instead of stacking.
INLINE_ELEMENTS = frozenset(
    ["span", "a", "b", "i", "em", "strong", "u", "small", "big", "label",
     "input", "button", "select", "img", "code", "sub", "sup"]
)

#: Elements that are not rendered at all.
INVISIBLE_ELEMENTS = frozenset(
    ["head", "script", "style", "meta", "link", "title", "template-holder"]
)


class LayoutEngine:
    """Computes and caches boxes for one document."""

    def __init__(self, document, viewport_width=DEFAULT_VIEWPORT_WIDTH):
        if not isinstance(document, Document):
            raise TypeError("LayoutEngine requires a Document")
        self.document = document
        self.viewport_width = viewport_width
        self._boxes = {}
        self._order = []
        self._dirty = True
        #: Telemetry track anchor (the owning WebKitEngine sets itself).
        self.trace_track = None

    # -- public API -------------------------------------------------------

    def relayout(self):
        """Recompute all boxes; call after the DOM changes."""
        tracer = telemetry.current()
        if tracer is None or not tracer.wants("layout"):
            return self._relayout()
        with tracer.span("layout.reflow", track=self.trace_track,
                         cat="layout") as args:
            result = self._relayout()
            args["boxes"] = len(self._order)
        return result

    def _relayout(self):
        self._boxes = {}
        self._order = []
        body = self.document.body
        if body is not None:
            self._layout_block(body, 0, 0, self.viewport_width)
            self._apply_drag_offsets()
            self._apply_chaos_jitter()
        self._dirty = False
        return self

    def _apply_chaos_jitter(self):
        """Chaos injection point: shift the whole page by a few pixels.

        Models late-landing layout (ads, fonts, async content pushing
        the page around): recorded click coordinates stop matching the
        element they targeted, which is exactly what the locator
        relaxation ladder has to absorb.
        """
        injector = chaos.current()
        if injector is None or not injector.layout_active:
            return
        px = injector.fault("layout", "jitter", "layout_jitter_rate",
                            "layout_jitter_px")
        if px is None:
            return
        rng = injector.stream("layout")
        dx = int(round(px)) * rng.choice((-1, 1))
        dy = int(round(px * rng.random()))
        for box in self._boxes.values():
            box.rect = box.rect.translated(dx, dy)

    def invalidate(self):
        """Mark the layout stale after a DOM change.

        With the fast path on this only sets a dirty flag — bursts of
        mutations between events coalesce into one relayout, performed
        lazily by the next hit test or box query. With the fast path
        off it recomputes eagerly (the original behaviour).
        """
        if not perf.fast_path_enabled():
            self.relayout()
            return
        self._dirty = True

    def _ensure_layout(self):
        """Recompute boxes if a mutation invalidated them."""
        if perf.fast_path_enabled():
            if self._dirty:
                perf.record("layout", hit=False)
                self.relayout()
            else:
                perf.record("layout", hit=True)
        elif not self._boxes:
            self.relayout()

    def box_for(self, element):
        """The element's :class:`LayoutBox`, or None if not rendered."""
        self._ensure_layout()
        return self._boxes.get(id(element))

    def hit_test(self, x, y):
        """Deepest element containing the point, or None.

        Ties at equal depth go to the later sibling (painted on top).
        """
        self._ensure_layout()
        hit = None
        hit_depth = -1
        for index, element in enumerate(self._order):
            box = self._boxes[id(element)]
            if not box.rect.contains(x, y):
                continue
            depth = sum(1 for _ in element.ancestors())
            if depth >= hit_depth:
                hit = element
                hit_depth = depth
        return hit

    def click_point(self, element):
        """Coordinates the recorder logs for a click on ``element``."""
        box = self.box_for(element)
        if box is None:
            return (0, 0)
        return box.rect.center

    # -- layout algorithms --------------------------------------------------

    def _register(self, element, rect):
        self._boxes[id(element)] = LayoutBox(element, rect)
        self._order.append(element)

    def _is_inline(self, element):
        return element.tag in INLINE_ELEMENTS

    def _layout_block(self, element, x, y, width):
        """Lay out a block element; returns its height."""
        if element.tag in INVISIBLE_ELEMENTS:
            return 0
        if element.tag == "table":
            return self._layout_table(element, x, y, width)
        if element.tag == "iframe":
            return self._layout_iframe(element, x, y, width)

        inner_x = x + PADDING
        inner_width = max(width - 2 * PADDING, CHAR_WIDTH)
        cursor_y = y + PADDING
        inline_run = []

        def flush_inline():
            nonlocal cursor_y
            if not inline_run:
                return
            run_height = self._layout_inline_run(inline_run, inner_x, cursor_y)
            cursor_y += run_height
            inline_run.clear()

        for child in element.children:
            if isinstance(child, Text):
                if child.data.strip():
                    inline_run.append(child)
            elif isinstance(child, Element):
                if child.tag in INVISIBLE_ELEMENTS:
                    continue
                if self._is_inline(child):
                    inline_run.append(child)
                else:
                    flush_inline()
                    cursor_y += self._layout_block(child, inner_x, cursor_y, inner_width)
        flush_inline()

        height = max(cursor_y + PADDING - y, LINE_HEIGHT)
        self._register(element, Rect(x, y, width, height))
        return height

    def _layout_inline_run(self, nodes, x, y):
        """Lay out consecutive inline nodes horizontally; returns height."""
        cursor_x = x
        max_height = LINE_HEIGHT
        for node in nodes:
            if isinstance(node, Text):
                cursor_x += len(node.data.strip()) * CHAR_WIDTH
                continue
            width, height = self._inline_size(node)
            self._register(node, Rect(cursor_x, y, width, height))
            self._layout_inline_children(node, cursor_x, y)
            cursor_x += width + PADDING
            max_height = max(max_height, height)
        return max_height

    def _layout_inline_children(self, element, x, y):
        """Give inline descendants boxes nested inside the parent's box."""
        cursor_x = x + 1
        for child in element.children:
            if isinstance(child, Element) and child.tag not in INVISIBLE_ELEMENTS:
                width, height = self._inline_size(child)
                self._register(child, Rect(cursor_x, y + 1, width, max(height - 2, 1)))
                self._layout_inline_children(child, cursor_x, y + 1)
                cursor_x += width + 1

    def _inline_size(self, element):
        if element.tag == "input":
            input_type = (element.get_attribute("type") or "text").lower()
            if input_type in ("checkbox", "radio"):
                return (14, 14)
            if input_type in ("submit", "button"):
                label = element.get_attribute("value") or "Submit"
                return (len(label) * CHAR_WIDTH + BUTTON_PAD, INPUT_HEIGHT)
            return (INPUT_WIDTH, INPUT_HEIGHT)
        if element.tag == "select":
            return (INPUT_WIDTH, INPUT_HEIGHT)
        if element.tag == "img":
            width = int(element.get_attribute("width") or 32)
            height = int(element.get_attribute("height") or 32)
            return (width, height)
        text_length = len(element.text_content.strip())
        if element.tag == "button":
            return (text_length * CHAR_WIDTH + BUTTON_PAD, INPUT_HEIGHT)
        return (max(text_length, 1) * CHAR_WIDTH, LINE_HEIGHT)

    def _layout_iframe(self, iframe, x, y, width):
        """Iframes have intrinsic dimensions (browsers default 300x150).

        A src iframe's content lives in a child engine with its own
        layout; a src-less iframe's inline children belong to this
        document and are laid out inside the iframe's box.
        """
        frame_width = int(iframe.get_attribute("width")
                          or min(width, IFRAME_WIDTH))
        frame_height = int(iframe.get_attribute("height") or IFRAME_HEIGHT)
        self._register(iframe, Rect(x, y, frame_width, frame_height))
        cursor_y = y + PADDING
        for child in iframe.child_elements():
            if child.tag in INVISIBLE_ELEMENTS:
                continue
            cursor_y += self._layout_block(child, x + PADDING, cursor_y,
                                           frame_width - 2 * PADDING)
        return frame_height

    def _layout_table(self, table, x, y, width):
        cursor_y = y + PADDING
        rows = [
            node for node in table.descendants()
            if isinstance(node, Element) and node.tag == "tr"
        ]
        for row in rows:
            cells = [
                child for child in row.child_elements()
                if child.tag in ("td", "th")
            ]
            if not cells:
                self._register(row, Rect(x, cursor_y, width, LINE_HEIGHT))
                cursor_y += LINE_HEIGHT
                continue
            cell_width = max(width // len(cells), CHAR_WIDTH * 2)
            row_height = 0
            for index, cell in enumerate(cells):
                cell_x = x + index * cell_width
                height = self._layout_block(cell, cell_x, cursor_y, cell_width)
                row_height = max(row_height, height)
            self._register(row, Rect(x, cursor_y, width, row_height))
            cursor_y += row_height
        height = max(cursor_y + PADDING - y, LINE_HEIGHT)
        self._register(table, Rect(x, y, width, height))
        return height

    def _apply_drag_offsets(self):
        """Translate boxes of elements that carry drag offsets."""
        for element in self._order:
            dx = element.get_attribute("data-offset-x")
            dy = element.get_attribute("data-offset-y")
            if not dx and not dy:
                continue
            offset_x = int(dx or 0)
            offset_y = int(dy or 0)
            box = self._boxes[id(element)]
            box.rect = box.rect.translated(offset_x, offset_y)
            for descendant in element.descendants():
                child_box = self._boxes.get(id(descendant))
                if child_box is not None:
                    child_box.rect = child_box.rect.translated(offset_x, offset_y)


def layout_document(document, viewport_width=DEFAULT_VIEWPORT_WIDTH):
    """Convenience: build and run a :class:`LayoutEngine`."""
    return LayoutEngine(document, viewport_width).relayout()
