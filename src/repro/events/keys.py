"""Virtual key codes.

The WaRR ``type`` command logs "a string representation of a typed key
and its ASCII code" (paper, Figure 4): letters carry the code of the
*unshifted key*, so ``H`` logs 72 ('H') and ``!`` logs 49 (the '1' key).
These tables reproduce the Windows/WebKit virtual-key-code convention
that yields exactly those numbers.
"""

KEY_BACKSPACE = 8
KEY_TAB = 9
KEY_ENTER = 13
KEY_SHIFT = 16
KEY_CONTROL = 17
KEY_ALT = 18
KEY_ESCAPE = 27
KEY_SPACE = 32
KEY_DELETE = 46

#: Shifted symbol → the unshifted character on the same key (US layout).
SHIFTED_TO_BASE = {
    "!": "1", "@": "2", "#": "3", "$": "4", "%": "5",
    "^": "6", "&": "7", "*": "8", "(": "9", ")": "0",
    ":": ";", "+": "=", "<": ",", "_": "-", ">": ".",
    "?": "/", "~": "`", "{": "[", "|": "\\", "}": "]",
    '"': "'",
}

#: Unshifted punctuation → virtual key code (VK_OEM_* values).
_PUNCTUATION_CODES = {
    ";": 186, "=": 187, ",": 188, "-": 189, ".": 190,
    "/": 191, "`": 192, "[": 219, "\\": 220, "]": 221, "'": 222,
}

_NAMED_CODES = {
    "Backspace": KEY_BACKSPACE,
    "Tab": KEY_TAB,
    "Enter": KEY_ENTER,
    "Shift": KEY_SHIFT,
    "Control": KEY_CONTROL,
    "Alt": KEY_ALT,
    "Escape": KEY_ESCAPE,
    "Delete": KEY_DELETE,
}

_CODE_TO_NAME = {code: name for name, code in _NAMED_CODES.items()}


def virtual_key_code(key):
    """Virtual key code for a printable character or named control key.

    >>> virtual_key_code('H'), virtual_key_code('h')
    (72, 72)
    >>> virtual_key_code('!')  # shift+1 logs the '1' key
    49
    >>> virtual_key_code('Enter')
    13
    """
    if key in _NAMED_CODES:
        return _NAMED_CODES[key]
    if len(key) != 1:
        raise ValueError("unknown key %r" % (key,))
    char = key
    if char in SHIFTED_TO_BASE:
        char = SHIFTED_TO_BASE[char]
    if char == " ":
        return KEY_SPACE
    if char.isalpha():
        return ord(char.upper())
    if char.isdigit():
        return ord(char)
    if char in _PUNCTUATION_CODES:
        return _PUNCTUATION_CODES[char]
    # Fall back to the code point so exotic characters stay loggable.
    return ord(char)


def needs_shift(key):
    """True if typing ``key`` on a US keyboard requires the Shift key."""
    if len(key) != 1:
        return False
    return key.isupper() or key in SHIFTED_TO_BASE


def key_name(code):
    """Human-readable name for a control key code, or None."""
    return _CODE_TO_NAME.get(code)


def is_printable(key):
    """True if the key produces a character (vs a pure control key)."""
    return len(key) == 1
