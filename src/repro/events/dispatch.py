"""DOM event dispatch: capture → target → bubble.

Handler exceptions do not abort dispatch (as in real browsers, where an
uncaught handler exception is reported to the console and the remaining
listeners still run). They are funneled to ``on_error``; the engine
passes its console collector, and tools like WebErr's oracle read the
console to detect page-script failures such as the Google Sites
``JSReferenceError``.

When tracing is enabled (:mod:`repro.telemetry`), each dispatch emits a
span on the dispatching renderer's track with per-phase child spans, so
slow handlers show up attributed to their propagation phase. With
tracing off the only cost is one guard check per dispatch.
"""

from repro import telemetry
from repro.events.event import CAPTURING_PHASE, AT_TARGET, BUBBLING_PHASE
from repro.util.errors import ScriptError


def _propagation_path(target):
    """Nodes from the root down to (excluding) the target."""
    path = []
    node = target.parent
    while node is not None:
        path.append(node)
        node = node.parent
    path.reverse()
    return path


def dispatch_event(target, event, on_error=None, track=None):
    """Dispatch ``event`` to ``target`` through the DOM tree.

    Returns ``True`` if the default action should proceed (i.e. the event
    was not ``prevent_default()``-ed), matching ``dispatchEvent``.
    ``track`` anchors trace spans (the engine passes itself).

    The guard reads ``telemetry._dispatch_tracer`` — pre-resolved at
    tracer install time to None unless the tracer records the
    ``dispatch`` category — so this hottest guard site costs one
    attribute load whether tracing is off or filtered.
    """
    tracer = telemetry._dispatch_tracer
    if tracer is None:
        return _dispatch(target, event, on_error)
    return _dispatch_traced(tracer, target, event, on_error, track)


def _dispatch(target, event, on_error):
    event.target = target
    ancestors = _propagation_path(target)
    _capture_phase(ancestors, event, on_error)
    _target_phase(target, event, on_error)
    _bubble_phase(ancestors, event, on_error)
    event.event_phase = None
    event.current_target = None
    return not event.default_prevented


def _dispatch_traced(tracer, target, event, on_error, track):
    start = tracer.now_us()
    event.target = target
    ancestors = _propagation_path(target)

    phase_start = tracer.now_us()
    _capture_phase(ancestors, event, on_error)
    tracer.complete("dispatch.capture", phase_start, track=track,
                    cat="dispatch")
    phase_start = tracer.now_us()
    _target_phase(target, event, on_error)
    tracer.complete("dispatch.target", phase_start, track=track,
                    cat="dispatch")
    phase_start = tracer.now_us()
    _bubble_phase(ancestors, event, on_error)
    tracer.complete("dispatch.bubble", phase_start, track=track,
                    cat="dispatch")

    event.event_phase = None
    event.current_target = None
    proceed = not event.default_prevented
    tracer.complete("dispatch %s" % event.type, start, track=track,
                    cat="dispatch",
                    args={"type": event.type, "depth": len(ancestors),
                          "default_prevented": not proceed})
    return proceed


# Nodes without any listeners cannot observe the event or stop its
# propagation, so phases skip them outright — most of a deep path is
# silent, and the per-node invoke machinery is the dispatch hot path.

def _capture_phase(ancestors, event, on_error):
    """Capture phase: root → parent of target, capture listeners only."""
    event.event_phase = CAPTURING_PHASE
    for node in ancestors:
        if event.propagation_stopped:
            break
        if node._listeners:
            _invoke(node, event, capture=True, on_error=on_error)


def _target_phase(target, event, on_error):
    """Target phase: capture listeners first, then bubble listeners."""
    if not event.propagation_stopped and target._listeners:
        event.event_phase = AT_TARGET
        _invoke(target, event, capture=True, on_error=on_error)
        if not event.propagation_stopped:
            _invoke(target, event, capture=False, on_error=on_error)


def _bubble_phase(ancestors, event, on_error):
    """Bubble phase: parent of target → root, bubble listeners only."""
    if event.bubbles and not event.propagation_stopped:
        event.event_phase = BUBBLING_PHASE
        for node in reversed(ancestors):
            if event.propagation_stopped:
                break
            if node._listeners:
                _invoke(node, event, capture=False, on_error=on_error)


def _invoke(node, event, capture, on_error):
    for handler in node.listeners_for(event.type, capture):
        event.current_target = node
        try:
            handler(event)
        except ScriptError as error:
            _report(error, on_error)
        except Exception as error:  # page-script bug surfaces as ScriptError
            _report(
                ScriptError("unhandled error in %r handler: %s" % (event.type, error),
                            cause=error),
                on_error,
            )


def _report(error, on_error):
    if on_error is None:
        raise error
    on_error(error)
