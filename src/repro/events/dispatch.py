"""DOM event dispatch: capture → target → bubble.

Handler exceptions do not abort dispatch (as in real browsers, where an
uncaught handler exception is reported to the console and the remaining
listeners still run). They are funneled to ``on_error``; the engine
passes its console collector, and tools like WebErr's oracle read the
console to detect page-script failures such as the Google Sites
``JSReferenceError``.
"""

from repro.events.event import CAPTURING_PHASE, AT_TARGET, BUBBLING_PHASE
from repro.util.errors import ScriptError


def _propagation_path(target):
    """Nodes from the root down to (excluding) the target."""
    path = []
    node = target.parent
    while node is not None:
        path.append(node)
        node = node.parent
    path.reverse()
    return path


def dispatch_event(target, event, on_error=None):
    """Dispatch ``event`` to ``target`` through the DOM tree.

    Returns ``True`` if the default action should proceed (i.e. the event
    was not ``prevent_default()``-ed), matching ``dispatchEvent``.
    """
    event.target = target
    ancestors = _propagation_path(target)

    # Nodes without any listeners cannot observe the event or stop its
    # propagation, so phases skip them outright — most of a deep path is
    # silent, and the per-node invoke machinery is the dispatch hot path.

    # Capture phase: root → parent of target, capture listeners only.
    event.event_phase = CAPTURING_PHASE
    for node in ancestors:
        if event.propagation_stopped:
            break
        if node._listeners:
            _invoke(node, event, capture=True, on_error=on_error)

    # Target phase: capture listeners first, then bubble listeners.
    if not event.propagation_stopped and target._listeners:
        event.event_phase = AT_TARGET
        _invoke(target, event, capture=True, on_error=on_error)
        if not event.propagation_stopped:
            _invoke(target, event, capture=False, on_error=on_error)

    # Bubble phase: parent of target → root, bubble listeners only.
    if event.bubbles and not event.propagation_stopped:
        event.event_phase = BUBBLING_PHASE
        for node in reversed(ancestors):
            if event.propagation_stopped:
                break
            if node._listeners:
                _invoke(node, event, capture=False, on_error=on_error)

    event.event_phase = None
    event.current_target = None
    return not event.default_prevented


def _invoke(node, event, capture, on_error):
    for handler in node.listeners_for(event.type, capture):
        event.current_target = node
        try:
            handler(event)
        except ScriptError as error:
            _report(error, on_error)
        except Exception as error:  # page-script bug surfaces as ScriptError
            _report(
                ScriptError("unhandled error in %r handler: %s" % (event.type, error),
                            cause=error),
                on_error,
            )


def _report(error, on_error):
    if on_error is None:
        raise error
    on_error(error)
