"""Browser event model.

Defines the event classes the engine dispatches (mouse, keyboard, drag,
plus generic events like ``change`` and ``load``), the capture/target/
bubble dispatch algorithm, and the virtual-key-code tables that give WaRR
Commands their ``[H,72]`` payloads.

The distinction the paper exploits in Section IV-C lives here: *trusted*
events (created by the engine from real input) carry their key properties,
while *synthetic* events (created by scripts or a driver) get read-only
defaults unless the browser runs in developer mode.
"""

from repro.events.event import (
    Event,
    MouseEvent,
    KeyboardEvent,
    DragEvent,
    InputEvent,
)
from repro.events.dispatch import dispatch_event
from repro.events.keys import (
    virtual_key_code,
    needs_shift,
    key_name,
    KEY_BACKSPACE,
    KEY_TAB,
    KEY_ENTER,
    KEY_SHIFT,
    KEY_CONTROL,
    KEY_ALT,
    KEY_ESCAPE,
    KEY_SPACE,
    KEY_DELETE,
)

__all__ = [
    "Event",
    "MouseEvent",
    "KeyboardEvent",
    "DragEvent",
    "InputEvent",
    "dispatch_event",
    "virtual_key_code",
    "needs_shift",
    "key_name",
    "KEY_BACKSPACE",
    "KEY_TAB",
    "KEY_ENTER",
    "KEY_SHIFT",
    "KEY_CONTROL",
    "KEY_ALT",
    "KEY_ESCAPE",
    "KEY_SPACE",
    "KEY_DELETE",
]
