"""WaRR: high-fidelity web application record and replay.

A complete Python reproduction of *"WaRR: A Tool for High-Fidelity Web
Application Record and Replay"* (Andrica & Candea, DSN 2011), including
every substrate the paper depends on: a WebKit-style browser engine
(DOM, HTML parser, XPath, events, layout), a Chrome-like multi-process
browser, a simulated network, the WaRR Recorder and Replayer, the
WebDriver/ChromeDriver stack with WaRR's fixes, the WebErr human-error
testing tool, the AUsER user-experience reporter, baseline recorders
(Selenium IDE, Fiddler), and clones of the evaluated web applications.

Quickstart::

    from repro import make_browser, WarrRecorder, WarrReplayer
    from repro.apps.sites import SitesApplication
    from repro.workloads import sites_edit_session

    browser, _ = make_browser([SitesApplication])
    recorder = WarrRecorder().attach(browser)
    recorder.begin("http://sites.example.com/edit/home")
    sites_edit_session(browser, text="Hello world!")

    replay_browser, _ = make_browser([SitesApplication], developer_mode=True)
    report = WarrReplayer(replay_browser).replay(recorder.trace)
    assert report.complete
"""

from repro.apps.framework import AppEnvironment, WebApplication, make_browser
from repro.browser.window import Browser, BrowserWindow
from repro.core.chromedriver import ChromeDriverConfig
from repro.core.commands import (
    ClickCommand,
    DoubleClickCommand,
    DragCommand,
    SwitchFrameCommand,
    TypeCommand,
    WarrCommand,
)
from repro.core.recorder import WarrRecorder
from repro.core.replayer import ReplayReport, TimingMode, WarrReplayer
from repro.core.trace import WarrTrace
from repro.core.webdriver import WebDriver
from repro.session import (
    BatchRunner,
    FailurePolicy,
    LocatorPolicy,
    SessionEngine,
    SessionEvent,
    SessionObserver,
    TimingPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "AppEnvironment",
    "WebApplication",
    "make_browser",
    "Browser",
    "BrowserWindow",
    "ChromeDriverConfig",
    "WarrCommand",
    "ClickCommand",
    "DoubleClickCommand",
    "DragCommand",
    "TypeCommand",
    "SwitchFrameCommand",
    "WarrRecorder",
    "WarrReplayer",
    "ReplayReport",
    "TimingMode",
    "WarrTrace",
    "WebDriver",
    "SessionEngine",
    "SessionEvent",
    "SessionObserver",
    "TimingPolicy",
    "LocatorPolicy",
    "FailurePolicy",
    "BatchRunner",
    "__version__",
]
