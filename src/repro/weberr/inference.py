"""Task-tree and grammar inference from WaRR traces.

"Since user interaction grammars do not readily exist ... we face the
challenge of having to infer such grammars given only a sequence of WaRR
Commands. We aim to cluster WaRR Commands in a way that reconstructs, as
much as possible, the task tree followed by the user." (paper, V-A)

The algorithm replays the trace, snapshots the page after each command,
and clusters commands by web-page similarity:

- the root node is the task;
- a second level of *phase* nodes corresponds to distinct web pages: a
  command is attached to the phase whose page is most similar to the
  page the command ran on, and a new phase is spawned when the URL
  changes or no existing phase is similar enough (this reproduces the
  paper's "three levels: one for the initial WaRR Command, one for
  commands that change the URL, and one for the rest");
- a third level of *step* nodes deepens the tree "whenever the
  interaction changes from one HTML element to another one".
"""

from repro.core.commands import SwitchFrameCommand
from repro.session.engine import SessionEngine
from repro.session.policies import TimingPolicy
from repro.util.errors import ReplayError
from repro.weberr.grammar import Grammar, Rule, Terminal
from repro.weberr.similarity import page_signature, signature_similarity

#: A command joins an existing phase only above this page similarity.
PHASE_SIMILARITY_THRESHOLD = 0.80


class TaskNode:
    """One node of the inferred task tree."""

    TASK = "task"
    PHASE = "phase"
    STEP = "step"

    def __init__(self, name, kind, url="", xpath=""):
        self.name = name
        self.kind = kind
        self.url = url
        self.xpath = xpath
        self.children = []
        self.commands = []

    def add_child(self, node):
        self.children.append(node)
        return node

    def leaf_commands(self):
        """All commands in this subtree, left to right."""
        commands = list(self.commands)
        for child in self.children:
            commands.extend(child.leaf_commands())
        return commands

    def pretty(self, indent=0):
        """Indented rendering (the Figure 6 visualization)."""
        pad = "  " * indent
        detail = ""
        if self.kind == self.PHASE and self.url:
            detail = "  [%s]" % self.url
        elif self.kind == self.STEP and self.xpath:
            detail = "  [%s]" % self.xpath
        lines = ["%s%s%s" % (pad, self.name, detail)]
        for command in self.commands:
            lines.append("%s  - %s" % (pad, command.to_line()))
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self):
        return "TaskNode(%s, %s, %d children, %d commands)" % (
            self.name, self.kind, len(self.children), len(self.commands),
        )


class TaskTreeBuilder:
    """Builds a task tree by replaying a trace and clustering commands."""

    def __init__(self, browser_factory, timing=None):
        self.browser_factory = browser_factory
        self.timing = timing if timing is not None else TimingPolicy.recorded()

    def build(self, trace, label="Task"):
        """Replay ``trace`` and return the root :class:`TaskNode`.

        The trace runs through the session engine's stepping interface:
        the builder observes the page between steps (URL, DOM signature)
        and clusters commands by what it saw.
        """
        browser = self.browser_factory()
        engine = SessionEngine(browser, timing=self.timing)
        run = engine.start(trace)
        if run.halted:
            run.finish()
            raise ReplayError("cannot infer grammar: %s"
                              % run.report.halt_reason)
        driver = run.driver

        root = TaskNode(label, TaskNode.TASK, url=trace.start_url)
        phases = []  # (TaskNode, signature)

        initial_signature = page_signature(driver.tab.document)
        current_phase = root.add_child(
            TaskNode(_phase_name(trace.start_url, 1), TaskNode.PHASE,
                     url=trace.start_url)
        )
        phases.append([current_phase, initial_signature])
        current_step = None

        for command in trace:
            url_before = driver.tab.url
            try:
                run.step(command)
            except ReplayError:
                # Unreplayable command: attach to the current phase anyway
                # so the grammar still covers the full trace. Driver
                # halts are absorbed by step() the same way.
                pass
            url_after = driver.tab.url
            signature = page_signature(driver.tab.document)

            if url_after != url_before:
                # This command navigated: it ends its phase, and a new
                # phase begins for the commands that follow.
                target_phase = self._attach_phase(root, phases, url_after,
                                                  signature)
                current_phase, current_step = self._place_command(
                    current_phase, current_step, command)
                current_phase = target_phase
                current_step = None
                phases[-1][1] = signature
                continue

            best_phase, best_similarity = self._most_similar(phases, signature)
            if best_similarity < PHASE_SIMILARITY_THRESHOLD:
                # The page was rewritten in place (AJAX): a new subtask.
                current_phase = self._attach_phase(root, phases, url_after,
                                                   signature)
                current_step = None
            elif best_phase is not current_phase:
                current_phase = best_phase
                current_step = None
            current_phase, current_step = self._place_command(
                current_phase, current_step, command)
            # Keep the owning phase's signature fresh.
            for entry in phases:
                if entry[0] is current_phase:
                    entry[1] = signature

        return root

    def _attach_phase(self, root, phases, url, signature):
        phase = root.add_child(
            TaskNode(_phase_name(url, len(phases) + 1), TaskNode.PHASE, url=url)
        )
        phases.append([phase, signature])
        return phase

    @staticmethod
    def _most_similar(phases, signature):
        best = None
        best_similarity = -1.0
        for phase, phase_signature in phases:
            similarity = signature_similarity(signature, phase_signature)
            if similarity > best_similarity:
                best = phase
                best_similarity = similarity
        return best, best_similarity

    @staticmethod
    def _place_command(phase, step, command):
        """Attach a command, splitting steps on element change."""
        if isinstance(command, SwitchFrameCommand):
            # Frame switches are bookkeeping, not user subtasks: keep
            # them in the current step.
            if step is None:
                step = phase.add_child(
                    TaskNode("Step%d" % (len(phase.children) + 1),
                             TaskNode.STEP, xpath=command.xpath))
            step.commands.append(command)
            return phase, step
        if step is None or step.xpath != command.xpath:
            step = phase.add_child(
                TaskNode("Step%d" % (len(phase.children) + 1),
                         TaskNode.STEP, xpath=command.xpath))
        step.commands.append(command)
        return phase, step


def _phase_name(url, index):
    path = url.split("://", 1)[-1]
    path = path.split("/", 1)[1] if "/" in path else ""
    segment = path.split("/")[0] or "home"
    segment = "".join(ch if ch.isalnum() else "_" for ch in segment)
    return "Phase%d_%s" % (index, segment.capitalize())


def infer_grammar(tree, start_url):
    """Turn a task tree into a user-interaction grammar."""
    grammar = Grammar(tree.name, start_url=start_url)
    _add_rules(grammar, tree)
    return grammar


def _add_rules(grammar, node):
    symbols = []
    for command in node.commands:
        symbols.append(Terminal(command))
    for child in node.children:
        unique = _unique_name(grammar, child.name)
        child.name = unique
        symbols.append(unique)
        _add_rules(grammar, child)
    grammar.add_rule(Rule(node.name, symbols))


def _unique_name(grammar, name):
    if name not in grammar.rules and name != grammar.start:
        return name
    suffix = 2
    while "%s_%d" % (name, suffix) in grammar.rules:
        suffix += 1
    return "%s_%d" % (name, suffix)
