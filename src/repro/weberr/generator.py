"""Erroneous-trace generation with the paper's pruning heuristics.

"Since a deep task tree can still generate an impractically large number
of interaction traces, we propose two heuristics to reduce this number.
First, if a trace cannot be successfully replayed, we remove all traces
that have as prefix the WaRR Commands replayed so far ... Second, we
focus error injection toward only some of the grammar rules."
(paper, Section V-A)

The focus heuristic lives in
:class:`~repro.weberr.navigation.NavigationErrorInjector`; this module
implements trace expansion plus the failed-prefix cache.
"""


class PrefixFailureCache:
    """Remembers command prefixes that already failed to replay.

    Stored as a trie over serialized command lines; a candidate trace is
    skipped when some recorded failing prefix is a prefix of it.
    """

    def __init__(self):
        self._root = {}
        self.recorded = 0
        self.hits = 0

    def record_failure(self, commands_replayed):
        """Record that replay failed right after this command prefix."""
        node = self._root
        for command in commands_replayed:
            node = node.setdefault(command.to_line(), {})
        node["__failed__"] = True
        self.recorded += 1

    def is_doomed(self, commands):
        """True if the trace starts with a known-failing prefix."""
        node = self._root
        if node.get("__failed__"):
            self.hits += 1
            return True
        for command in commands:
            node = node.get(command.to_line())
            if node is None:
                return False
            if node.get("__failed__"):
                self.hits += 1
                return True
        return False

    def __repr__(self):
        return "PrefixFailureCache(recorded=%d, hits=%d)" % (
            self.recorded, self.hits,
        )


class TraceGenerator:
    """Expands erroneous grammars into replayable traces."""

    def __init__(self, prune_failed_prefixes=True, max_traces=None):
        self.prefix_cache = PrefixFailureCache() if prune_failed_prefixes else None
        self.max_traces = max_traces
        self.generated = 0
        self.pruned = 0

    def traces(self, grammar_variants):
        """Yield (description, trace) from (description, grammar) pairs.

        Applies the failed-prefix pruning heuristic and the optional
        overall cap.
        """
        for description, grammar in grammar_variants:
            if self.max_traces is not None and self.generated >= self.max_traces:
                return
            trace = grammar.to_trace(label=description)
            if self.prefix_cache is not None and self.prefix_cache.is_doomed(trace.commands):
                self.pruned += 1
                continue
            self.generated += 1
            yield description, trace

    def report_failure(self, trace, failed_at_index):
        """Feed back a replay failure for prefix pruning.

        ``failed_at_index`` is the index of the first command that could
        not be replayed; the commands before it form the doomed prefix
        extended by the failing command.
        """
        if self.prefix_cache is None:
            return
        prefix = trace.commands[:failed_at_index + 1]
        self.prefix_cache.record_failure(prefix)
