"""WebErr: testing web applications against realistic human errors.

The paper's first WaRR-based tool (Section V). The pipeline matches
Figure 5: record an interaction trace (1), infer a user-interaction
grammar from it, inject navigation and timing errors (2, 3), and replay
the erroneous traces against the application under an oracle (4).
"""

from repro.weberr.similarity import dom_shape_similarity, page_signature
from repro.weberr.grammar import Grammar, Rule, Terminal
from repro.weberr.inference import TaskTreeBuilder, TaskNode, infer_grammar
from repro.weberr.navigation import (
    NavigationErrorInjector,
    forget_step,
    reorder_steps,
    substitute_step,
)
from repro.weberr.timing import TimingErrorInjector
from repro.weberr.generator import TraceGenerator, PrefixFailureCache
from repro.weberr.oracle import (
    Oracle,
    ConsoleErrorOracle,
    ReplayCompletionOracle,
    PredicateOracle,
    CompositeOracle,
    Verdict,
)
from repro.weberr.runner import WebErr, WebErrReport, TestOutcome
from repro.weberr.dodom import (
    DomInvariantMiner,
    DomInvariantOracle,
    DomInvariants,
)

__all__ = [
    "dom_shape_similarity",
    "page_signature",
    "Grammar",
    "Rule",
    "Terminal",
    "TaskTreeBuilder",
    "TaskNode",
    "infer_grammar",
    "NavigationErrorInjector",
    "forget_step",
    "reorder_steps",
    "substitute_step",
    "TimingErrorInjector",
    "TraceGenerator",
    "PrefixFailureCache",
    "Oracle",
    "ConsoleErrorOracle",
    "ReplayCompletionOracle",
    "PredicateOracle",
    "CompositeOracle",
    "Verdict",
    "WebErr",
    "WebErrReport",
    "TestOutcome",
    "DomInvariantMiner",
    "DomInvariantOracle",
    "DomInvariants",
]
