"""Navigation-error injection.

"Navigation errors manifest as deviations from a correct pattern of
interaction ... the errors we are interested in are: forgetting,
reordering, and substitution of steps" (paper, Section V-A). Errors are
injected into *grammar rules*, never across rules — that is WebErr's
answer to the combinatorial blowup of mutating raw traces (the
``permutations(100)`` example in the paper).

The three operators:

- :func:`forget_step` — a rule loses its productions (empty RHS);
- :func:`reorder_steps` — a rule's right-hand side is permuted;
- :func:`substitute_step` — one symbol of a rule is replaced by a
  symbol drawn from another rule (e.g. a typo: the right keystroke
  replaced by a wrong one).

:class:`NavigationErrorInjector` enumerates erroneous grammars, rule by
rule, optionally confined to a focus set of rules (the paper's second
trace-count-reduction heuristic).
"""

from repro.core.commands import TypeCommand
from repro.events.keys import virtual_key_code
from repro.weberr.grammar import Terminal


def forget_step(rule):
    """The user forgot this whole step: rule with no productions."""
    return rule.copy(symbols=[])


def reorder_steps(rule, first_index=0):
    """The user swapped two adjacent sub-steps of this step.

    Adjacent transposition is the minimal, most human reordering (doing
    B before A); ``first_index`` selects which adjacent pair swaps.
    """
    symbols = list(rule.symbols)
    if first_index < 0 or first_index + 1 >= len(symbols):
        raise IndexError("no adjacent pair at %d in %r" % (first_index, rule))
    symbols[first_index], symbols[first_index + 1] = (
        symbols[first_index + 1], symbols[first_index])
    return rule.copy(symbols=symbols)


def substitute_step(rule, index, replacement):
    """The user performed the wrong sub-step: replace one symbol."""
    symbols = list(rule.symbols)
    if index < 0 or index >= len(symbols):
        raise IndexError("no symbol at %d in %r" % (index, rule))
    symbols[index] = replacement
    return rule.copy(symbols=symbols)


def substitute_typo(rule, index, typo_key):
    """Specialize substitution for keystrokes: inject a typo.

    Replaces the :class:`TypeCommand` terminal at ``index`` with one
    typing ``typo_key`` instead — the error class the Table I search
    study injects.
    """
    symbols = list(rule.symbols)
    symbol = symbols[index]
    if not isinstance(symbol, Terminal) or not isinstance(symbol.command, TypeCommand):
        raise TypeError("symbol at %d is not a keystroke terminal" % index)
    original = symbol.command
    replacement = TypeCommand(original.xpath, key=typo_key,
                              code=virtual_key_code(typo_key),
                              elapsed_ms=original.elapsed_ms)
    symbols[index] = Terminal(replacement)
    return rule.copy(symbols=symbols)


class NavigationErrorInjector:
    """Enumerates single-error grammar variants."""

    def __init__(self, grammar, focus_rules=None):
        """``focus_rules``: restrict injection to these rule names
        (the paper's error-focus heuristic); None means every rule."""
        self.grammar = grammar
        if focus_rules is None:
            self.focus_rules = list(grammar.rule_names())
        else:
            self.focus_rules = [name for name in grammar.rule_names()
                                if name in set(focus_rules)]

    def _rules(self):
        for name in self.focus_rules:
            yield self.grammar.rule(name)

    def forget_variants(self):
        """Yield (description, grammar) for every forget error."""
        for rule in self._rules():
            if rule.is_empty():
                continue
            yield ("forget %s" % rule.name,
                   self.grammar.with_rule(forget_step(rule)))

    def reorder_variants(self):
        """Yield (description, grammar) for every adjacent-swap error."""
        for rule in self._rules():
            for index in range(len(rule.symbols) - 1):
                yield ("reorder %s@%d" % (rule.name, index),
                       self.grammar.with_rule(reorder_steps(rule, index)))

    def substitution_variants(self):
        """Yield (description, grammar) for cross-production mix-ups.

        Each symbol of a focused rule is replaced, in turn, by each
        *other* symbol of the same rule — modeling clicking the wrong
        button or picking the wrong item, while honoring the paper's
        "never perform cross-rule error injection".
        """
        for rule in self._rules():
            for index, _ in enumerate(rule.symbols):
                for other_index, replacement in enumerate(rule.symbols):
                    if other_index == index:
                        continue
                    yield ("substitute %s@%d<-@%d"
                           % (rule.name, index, other_index),
                           self.grammar.with_rule(
                               substitute_step(rule, index, replacement)))

    def typo_variants(self, keyboard_neighbors=None):
        """Yield (description, grammar) replacing keystrokes with typos."""
        from repro.workloads.typos import QWERTY_NEIGHBORS

        neighbors = keyboard_neighbors or QWERTY_NEIGHBORS
        for rule in self._rules():
            for index, symbol in enumerate(rule.symbols):
                if not isinstance(symbol, Terminal):
                    continue
                if not isinstance(symbol.command, TypeCommand):
                    continue
                key = symbol.command.key.lower()
                for wrong in neighbors.get(key, "")[:1]:
                    yield ("typo %s@%d %r->%r" % (rule.name, index, key, wrong),
                           self.grammar.with_rule(
                               substitute_typo(rule, index, wrong)))

    def all_variants(self):
        """Every single-error grammar, forget → reorder → substitute."""
        yield from self.forget_variants()
        yield from self.reorder_variants()
        yield from self.substitution_variants()
