"""The WebErr tool: the Figure-5 pipeline end to end.

Given a recorded trace and a factory for fresh application environments,
WebErr (1) infers the user-interaction grammar, (2) generates erroneous
traces via navigation- and timing-error injection, (3) replays each one
against a fresh instance of the application, and (4) asks the oracle for
a verdict. Every replay gets a pristine environment so injected errors
cannot contaminate each other — the simulation's equivalent of resetting
the application between tests.
"""

from repro.session.engine import SessionEngine
from repro.session.policies import TimingPolicy
from repro.weberr.generator import TraceGenerator
from repro.weberr.inference import TaskTreeBuilder, infer_grammar
from repro.weberr.navigation import NavigationErrorInjector
from repro.weberr.oracle import CompositeOracle, ConsoleErrorOracle, OracleObserver
from repro.weberr.timing import TimingErrorInjector


class TestOutcome:
    """One erroneous trace's result."""

    def __init__(self, description, trace, report, verdict):
        self.description = description
        self.trace = trace
        self.report = report
        self.verdict = verdict

    @property
    def found_bug(self):
        return not self.verdict.passed

    def __repr__(self):
        return "TestOutcome(%r, %s)" % (
            self.description,
            "BUG" if self.found_bug else "pass",
        )


class WebErrReport:
    """Aggregate results of a WebErr campaign."""

    def __init__(self):
        self.outcomes = []
        self.traces_pruned = 0

    def add(self, outcome):
        self.outcomes.append(outcome)

    @property
    def tests_run(self):
        return len(self.outcomes)

    @property
    def bugs(self):
        return [outcome for outcome in self.outcomes if outcome.found_bug]

    def summary(self):
        return "WebErr: %d tests run, %d pruned, %d bug(s) found" % (
            self.tests_run, self.traces_pruned, len(self.bugs),
        )

    def __repr__(self):
        return "WebErrReport(%s)" % self.summary()


class WebErr:
    """Orchestrates grammar inference, error injection, and replay."""

    def __init__(self, browser_factory, oracle=None, focus_rules=None,
                 max_tests=None, prune_failed_prefixes=True):
        """``browser_factory()`` must return a fresh developer-mode
        browser wired to a fresh application instance."""
        self.browser_factory = browser_factory
        self.oracle = oracle if oracle is not None else CompositeOracle(
            [ConsoleErrorOracle()])
        self.focus_rules = focus_rules
        self.max_tests = max_tests
        self.prune_failed_prefixes = prune_failed_prefixes

    # -- pipeline steps --------------------------------------------------------

    def infer(self, trace, label="Task"):
        """Step 2a: infer the interaction grammar from the trace."""
        builder = TaskTreeBuilder(self.browser_factory)
        tree = builder.build(trace, label=label)
        return tree, infer_grammar(tree, trace.start_url)

    def navigation_tests(self, grammar):
        """Step 2b: single-error grammar variants (lazy)."""
        injector = NavigationErrorInjector(grammar, focus_rules=self.focus_rules)
        return injector.all_variants()

    def timing_tests(self, trace):
        """Step 3: impatient-user trace variants."""
        return TimingErrorInjector(trace).stress_variants()

    def replay_and_judge(self, description, trace):
        """Step 4: one test — fresh environment, engine replay, oracle.

        The oracle rides the session's event stream as an observer and
        renders its verdict on ``session-finished``.
        """
        browser = self.browser_factory()
        engine = SessionEngine(browser, timing=TimingPolicy.recorded())
        watcher = OracleObserver(self.oracle)
        report = engine.run(trace, observers=[watcher])
        return TestOutcome(description, trace, report, watcher.verdict)

    # -- campaigns ---------------------------------------------------------------

    def run_navigation_campaign(self, trace, label="Task"):
        """Full navigation-error campaign for one recorded trace."""
        _, grammar = self.infer(trace, label=label)
        generator = TraceGenerator(
            prune_failed_prefixes=self.prune_failed_prefixes,
            max_traces=self.max_tests,
        )
        report = WebErrReport()
        for description, erroneous_trace in generator.traces(
                self.navigation_tests(grammar)):
            outcome = self.replay_and_judge(description, erroneous_trace)
            report.add(outcome)
            self._feed_pruning(generator, outcome)
        report.traces_pruned = generator.pruned
        return report

    def run_timing_campaign(self, trace):
        """Full timing-error campaign for one recorded trace."""
        report = WebErrReport()
        for description, erroneous_trace in self.timing_tests(trace):
            if self.max_tests is not None and report.tests_run >= self.max_tests:
                break
            report.add(self.replay_and_judge(description, erroneous_trace))
        return report

    def run(self, trace, label="Task"):
        """Both campaigns; returns (navigation_report, timing_report)."""
        return (self.run_navigation_campaign(trace, label=label),
                self.run_timing_campaign(trace))

    @staticmethod
    def _feed_pruning(generator, outcome):
        """Record failing prefixes so doomed traces are skipped."""
        for index, result in enumerate(outcome.report.results):
            if not result.succeeded:
                generator.report_failure(outcome.trace, index)
                break
