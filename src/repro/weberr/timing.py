"""Timing-error injection.

"Timing errors are caused by users who interact with web applications
while the latter are not yet ready to handle user interaction ... To
simulate timing errors, we modify the delay between replaying
consecutive WaRR Commands. We stress test web applications by replaying
commands with no wait time." (paper, Section V-B)

The injector produces trace variants with modified delays; the WaRR
Replayer's :class:`~repro.core.replayer.TimingMode` executes them.
"""

from repro.core.replayer import TimingMode


class TimingErrorInjector:
    """Generates impatient-user variants of a trace."""

    def __init__(self, trace):
        self.trace = trace

    def no_wait(self):
        """The fully impatient user: every delay becomes zero."""
        return ("no-wait", self.trace.with_delays_scaled(0.0))

    def scaled(self, factor):
        """A uniformly faster (or slower) user."""
        return ("scaled x%g" % factor, self.trace.with_delays_scaled(factor))

    def rush_command(self, index):
        """One impatient moment: only command ``index`` loses its wait.

        Pinpoints *which* wait protects the application — the variant
        that fails identifies the action racing the initialization.
        """
        commands = [c.copy() for c in self.trace.commands]
        if index < 0 or index >= len(commands):
            raise IndexError("trace has no command %d" % index)
        commands[index] = commands[index].copy(elapsed_ms=0)
        return ("rush command %d" % index, self.trace.copy(commands=commands))

    def stress_variants(self, factors=(0.0, 0.1, 0.5)):
        """The standard stress suite: no-wait plus scaled variants."""
        variants = [self.no_wait()]
        for factor in factors:
            if factor == 0.0:
                continue
            variants.append(self.scaled(factor))
        return variants

    def rush_each_command(self):
        """One variant per command, each rushing only that command."""
        return [self.rush_command(index) for index in range(len(self.trace))]

    @staticmethod
    def timing_mode_for(variant_name):
        """Replays of injected traces use the traces' own (modified)
        delays — i.e. recorded timing."""
        return TimingMode.recorded()
