"""DoDOM-style DOM invariants as a WebErr oracle.

The paper positions WaRR as extending DoDOM's relevance: "DoDOM infers
DOM (Document Object Model) invariants and uses them in tests to detect
errors, but is limited to web applications that use HTTP. WaRR can aid
DoDOM test also HTTPS applications, because WaRR can replay the
interaction between a user and any type of web application" (Section
II). This module is that combination:

- :class:`DomInvariantMiner` replays a recorded trace several times
  against fresh application instances and intersects the DOM structure
  of the final page — what survives every clean run is invariant;
- :class:`DomInvariants` checks a page against the mined set;
- :class:`DomInvariantOracle` plugs the check into WebErr, so injected
  human errors that silently corrupt the page (no console error, wrong
  DOM) are still detected.
"""

from repro.core.replayer import WarrReplayer
from repro.weberr.oracle import Oracle, Verdict


def _structure_sets(document):
    """(nodes, edges) sets describing a page's invariant-checkable shape."""
    nodes = set()
    edges = set()

    def walk(element, depth):
        key = (depth, element.tag, element.id or "")
        nodes.add(key)
        for child in element.child_elements():
            edges.add((element.tag, element.id or "",
                       child.tag, child.id or ""))
            walk(child, depth + 1)

    root = document.document_element
    if root is not None:
        walk(root, 0)
    return nodes, edges


class DomInvariants:
    """Structure present in every observed correct execution."""

    def __init__(self, nodes, edges, runs):
        self.nodes = frozenset(nodes)
        self.edges = frozenset(edges)
        self.runs = runs

    def check(self, document):
        """Return a list of human-readable violations (empty = pass)."""
        nodes, edges = _structure_sets(document)
        violations = []
        for depth, tag, element_id in sorted(self.nodes - nodes):
            label = "<%s%s>" % (tag, ' id="%s"' % element_id if element_id else "")
            violations.append(
                "invariant node missing: %s at depth %d" % (label, depth))
        for parent_tag, parent_id, child_tag, child_id in sorted(
                self.edges - edges):
            violations.append(
                "invariant edge missing: <%s%s> -> <%s%s>" % (
                    parent_tag, " #%s" % parent_id if parent_id else "",
                    child_tag, " #%s" % child_id if child_id else ""))
        return violations

    def __repr__(self):
        return "DomInvariants(%d nodes, %d edges, mined from %d runs)" % (
            len(self.nodes), len(self.edges), self.runs)


class DomInvariantMiner:
    """Mines invariants by replaying a trace against fresh instances."""

    def __init__(self, browser_factory, runs=3):
        if runs < 1:
            raise ValueError("need at least one mining run")
        self.browser_factory = browser_factory
        self.runs = runs

    def mine(self, trace):
        """Replay ``runs`` times; intersect the final pages' structure."""
        nodes = None
        edges = None
        for _ in range(self.runs):
            browser = self.browser_factory()
            report = WarrReplayer(browser).replay(trace)
            if not report.complete:
                raise RuntimeError(
                    "cannot mine invariants from a failing replay: %s"
                    % report.summary())
            document = browser.active_tab.document
            run_nodes, run_edges = _structure_sets(document)
            nodes = run_nodes if nodes is None else nodes & run_nodes
            edges = run_edges if edges is None else edges & run_edges
        return DomInvariants(nodes, edges, self.runs)


class DomInvariantOracle(Oracle):
    """Fails a replay whose final page violates mined invariants."""

    def __init__(self, invariants):
        self.invariants = invariants

    def judge(self, report, browser):
        tab = browser.active_tab if browser is not None else None
        if tab is None or tab.renderer is None:
            return Verdict.bug("no page to check invariants against")
        violations = self.invariants.check(tab.document)
        if violations:
            return Verdict.bug("%d DOM invariant violation(s), first: %s"
                               % (len(violations), violations[0]))
        return Verdict.ok()
