"""Test oracles.

"Our approach requires an oracle to conclude whether the application
behaved correctly, a common practice in automated testing" (paper,
Section V-A). Oracles judge a replay's outcome: the report (which
commands replayed, what page-script errors surfaced) plus the browser's
final state. :class:`OracleObserver` adapts an oracle onto the session
engine's event stream, so the verdict is rendered the moment the
session finishes instead of by post-hoc scraping.
"""

from repro.session.events import SessionObserver


class Verdict:
    """Outcome of one oracle judgement."""

    PASS = "pass"
    FAIL = "fail"

    def __init__(self, status, reason=""):
        self.status = status
        self.reason = reason

    @property
    def passed(self):
        return self.status == self.PASS

    @classmethod
    def ok(cls):
        return cls(cls.PASS)

    @classmethod
    def bug(cls, reason):
        return cls(cls.FAIL, reason)

    def __repr__(self):
        if self.passed:
            return "Verdict(pass)"
        return "Verdict(FAIL: %s)" % self.reason


class Oracle:
    """Interface: judge a replay."""

    def judge(self, report, browser):
        """Return a :class:`Verdict` for one replayed trace."""
        raise NotImplementedError


class ConsoleErrorOracle(Oracle):
    """Fails when page scripts raised uncaught errors.

    This is the oracle that catches the Google Sites bug: the injected
    timing error makes the editor script read an uninitialized variable,
    which surfaces as a ``JSReferenceError`` on the console.
    """

    def judge(self, report, browser):
        if report.page_errors:
            first = report.page_errors[0]
            return Verdict.bug(
                "%d uncaught page error(s), first: %s"
                % (len(report.page_errors), first)
            )
        return Verdict.ok()


class ReplayCompletionOracle(Oracle):
    """Fails when replay halted (the application wedged the driver)."""

    def judge(self, report, browser):
        if report.halted:
            return Verdict.bug("replay halted: %s" % report.halt_reason)
        return Verdict.ok()


class PredicateOracle(Oracle):
    """Wraps an application-specific check.

    ``predicate(report, browser)`` returns True for correct behaviour,
    or a string describing the bug (falsy/True = pass, str = fail).
    """

    def __init__(self, predicate, description=""):
        self.predicate = predicate
        self.description = description

    def judge(self, report, browser):
        outcome = self.predicate(report, browser)
        if isinstance(outcome, str):
            return Verdict.bug(outcome)
        if outcome is False:
            return Verdict.bug(self.description or "predicate failed")
        return Verdict.ok()


class CompositeOracle(Oracle):
    """All sub-oracles must pass; reports the first failure."""

    def __init__(self, oracles):
        self.oracles = list(oracles)

    def judge(self, report, browser):
        for oracle in self.oracles:
            verdict = oracle.judge(report, browser)
            if not verdict.passed:
                return verdict
        return Verdict.ok()


class OracleObserver(SessionObserver):
    """Subscribes an oracle to a session's event stream.

    The engine emits ``session-finished`` with the assembled report and
    the browser; the observer renders the verdict right there.
    """

    def __init__(self, oracle):
        self.oracle = oracle
        self.verdict = None

    def on_session_finished(self, event):
        self.verdict = self.oracle.judge(event.data["report"],
                                         event.data["browser"])
