"""User-interaction grammars.

WebErr views "an interaction step as a grammar rule and simulate[s]
forgetting a step by making a rule have no productions, step reordering
by reordering a rule's right-hand side productions, and substitution of
steps by substituting a rule's right-hand side productions with others"
(paper, Section V-A).

A :class:`Grammar` maps rule names to right-hand sides; a right-hand
side is a sequence of symbols, each either another rule name (a
non-terminal string) or a :class:`Terminal` wrapping one WaRR Command.
Expanding the start rule recursively regenerates an interaction trace.
"""

from repro.core.commands import WarrCommand
from repro.core.trace import WarrTrace
from repro.util.errors import GrammarError


class Terminal:
    """A leaf symbol: one concrete WaRR Command."""

    def __init__(self, command):
        if not isinstance(command, WarrCommand):
            raise TypeError("Terminal wraps a WarrCommand, got %r" % (command,))
        self.command = command

    def __eq__(self, other):
        return isinstance(other, Terminal) and self.command == other.command

    def __hash__(self):
        return hash(("terminal", self.command))

    def __repr__(self):
        return "Terminal(%r)" % self.command.to_line()


class Rule:
    """One grammar rule: name -> a sequence of symbols."""

    def __init__(self, name, symbols=None):
        self.name = name
        self.symbols = list(symbols or [])

    def copy(self, symbols=None):
        return Rule(self.name, list(self.symbols) if symbols is None else symbols)

    def is_empty(self):
        return not self.symbols

    def __repr__(self):
        rendered = []
        for symbol in self.symbols:
            if isinstance(symbol, Terminal):
                rendered.append("<%s>" % symbol.command.action)
            else:
                rendered.append(symbol)
        return "Rule(%s -> %s)" % (self.name, " ".join(rendered) or "ε")


class Grammar:
    """A user-interaction grammar with a designated start rule."""

    def __init__(self, start, rules=None, start_url=""):
        self.start = start
        self.rules = {}
        self.start_url = start_url
        for rule in rules or []:
            self.add_rule(rule)

    def add_rule(self, rule):
        if rule.name in self.rules:
            raise GrammarError("duplicate rule %r" % rule.name)
        self.rules[rule.name] = rule
        return rule

    def rule(self, name):
        try:
            return self.rules[name]
        except KeyError:
            raise GrammarError("no rule named %r" % name)

    def rule_names(self):
        return sorted(self.rules)

    def copy(self):
        """Deep-enough copy: rules are copied, terminals shared."""
        grammar = Grammar(self.start, start_url=self.start_url)
        for rule in self.rules.values():
            grammar.add_rule(rule.copy())
        return grammar

    def with_rule(self, replacement):
        """A copy in which one rule is replaced (error injection)."""
        grammar = self.copy()
        if replacement.name not in grammar.rules:
            raise GrammarError("cannot replace unknown rule %r" % replacement.name)
        grammar.rules[replacement.name] = replacement
        return grammar

    # -- expansion ------------------------------------------------------------

    def expand(self, max_depth=50):
        """Expand the start rule into a flat list of commands."""
        commands = []
        self._expand_into(self.start, commands, max_depth, set())
        return commands

    def _expand_into(self, name, commands, remaining_depth, active):
        if remaining_depth <= 0:
            raise GrammarError("expansion exceeded maximum depth")
        if name in active:
            raise GrammarError("recursive rule %r" % name)
        rule = self.rule(name)
        active = active | {name}
        for symbol in rule.symbols:
            if isinstance(symbol, Terminal):
                commands.append(symbol.command.copy())
            else:
                self._expand_into(symbol, commands, remaining_depth - 1, active)

    def to_trace(self, label=""):
        """Expand into a replayable :class:`WarrTrace`."""
        return WarrTrace(start_url=self.start_url, commands=self.expand(),
                         label=label)

    # -- introspection -----------------------------------------------------------

    def terminal_count(self):
        return sum(
            1 for rule in self.rules.values()
            for symbol in rule.symbols if isinstance(symbol, Terminal)
        )

    def pretty(self):
        """Human-readable listing (used by the Figure 6 benchmark)."""
        lines = []
        for name in [self.start] + [n for n in self.rule_names() if n != self.start]:
            lines.append(repr(self.rules[name]))
        return "\n".join(lines)

    def __repr__(self):
        return "Grammar(start=%r, %d rules)" % (self.start, len(self.rules))
