"""AUsER: automatic user experience reports.

The paper's second WaRR-based tool (Section VI): "If a user experiences
a bug while using a web application, she presses a button in AUsER, and
the developers of that application receive the sequence of WaRR
Commands she performed", together with a textual description and a
(possibly partial) snapshot of the final page. Traces can be scrubbed
of sensitive keystrokes and encrypted with the developers' public key
(Section IV-D).
"""

from repro.auser.snapshot import PageSnapshot
from repro.auser.privacy import scrub_trace, sensitive_xpaths, REDACTED_KEY
from repro.auser.crypto import ToyRSA, KeyPair
from repro.auser.report import AUsER, UserExperienceReport, PERCEPTION_THRESHOLD_MS

__all__ = [
    "PageSnapshot",
    "scrub_trace",
    "sensitive_xpaths",
    "REDACTED_KEY",
    "ToyRSA",
    "KeyPair",
    "AUsER",
    "UserExperienceReport",
    "PERCEPTION_THRESHOLD_MS",
]
