"""Trace scrubbing.

"WaRR records all keystrokes, therefore also potentially sensitive
information, such as passwords and usernames ... we envision a solution
in which users share recorded traces with a web application's developers
after they removed sensitive information." (paper, Section IV-D)

Scrubbing replaces the key payload of ``type`` commands aimed at
sensitive fields with a redaction marker, preserving trace *structure*
(the keystroke count and timing survive, so replay still exercises the
same code path with dummy input).
"""

from repro.core.commands import TypeCommand

#: What a scrubbed keystroke types instead of the real key.
REDACTED_KEY = "*"

#: Substrings of locators that indicate a sensitive field.
SENSITIVE_MARKERS = ("password", "passwd", "pwd", "secret", "ssn",
                     "creditcard", "card-number", "cvv")


def sensitive_xpaths(trace, extra_markers=()):
    """Locators in the trace that look like sensitive fields."""
    markers = tuple(SENSITIVE_MARKERS) + tuple(extra_markers)
    found = []
    for command in trace:
        lowered = command.xpath.lower()
        if any(marker in lowered for marker in markers):
            if command.xpath not in found:
                found.append(command.xpath)
    return found


def scrub_trace(trace, xpaths=None, extra_markers=()):
    """Redact keystrokes into sensitive fields.

    ``xpaths``: explicit locators to scrub; defaults to everything
    :func:`sensitive_xpaths` detects. Returns a new trace.
    """
    targets = set(xpaths if xpaths is not None
                  else sensitive_xpaths(trace, extra_markers))
    scrubbed = []
    redacted_count = 0
    for command in trace:
        if isinstance(command, TypeCommand) and command.xpath in targets:
            scrubbed.append(command.copy(key=REDACTED_KEY, code=0))
            redacted_count += 1
        else:
            scrubbed.append(command.copy())
    result = trace.copy(commands=scrubbed,
                        label=(trace.label + " [scrubbed]").strip())
    result.redacted_count = redacted_count
    return result
