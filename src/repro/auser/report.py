"""User-experience report assembly: the AUsER tool.

AUsER pairs an always-on WaRR Recorder with a "report a problem" button:
pressing it bundles the recorded WaRR Commands, the user's textual
description, and a (full, partial, or redacted) snapshot of the final
page. The bundle can be scrubbed of sensitive keystrokes and encrypted
for the developers.

"In order to be practical, AUsER must not hinder a user's interaction
with web applications. The runtime overhead introduced by the WaRR
Recorder must be below the 100 ms human perception threshold." —
:data:`PERCEPTION_THRESHOLD_MS`; the Section-VI overhead benchmark
checks the recorder against it.
"""

from repro.auser.crypto import ToyRSA
from repro.auser.privacy import scrub_trace
from repro.auser.snapshot import PageSnapshot, SnapshotObserver
from repro.session.engine import SessionEngine

#: The human perception threshold the paper cites (100 ms).
PERCEPTION_THRESHOLD_MS = 100.0


class UserExperienceReport:
    """What the developers receive."""

    def __init__(self, trace, description="", snapshot=None, scrubbed=False):
        self.trace = trace
        self.description = description
        self.snapshot = snapshot
        self.scrubbed = scrubbed

    def to_text(self):
        """Serialize the report to a single shippable document."""
        sections = ["=== AUsER user experience report ==="]
        if self.description:
            sections.append("--- description ---")
            sections.append(self.description)
        sections.append("--- trace (%d commands%s) ---" % (
            len(self.trace), ", scrubbed" if self.scrubbed else ""))
        sections.append(self.trace.to_text().rstrip("\n"))
        if self.snapshot is not None:
            scope = (self.snapshot.region_xpath
                     if self.snapshot.is_partial else "full page")
            sections.append("--- snapshot (%s) of %s ---" % (
                scope, self.snapshot.url))
            sections.append(self.snapshot.html)
        return "\n".join(sections) + "\n"

    def encrypt(self, public_key):
        """Encrypt the serialized report with the developers' key."""
        return ToyRSA.encrypt(self.to_text(), public_key)

    def __repr__(self):
        return "UserExperienceReport(%d commands, snapshot=%r)" % (
            len(self.trace), self.snapshot,
        )


class AUsER:
    """The button the user presses when something looks wrong."""

    def __init__(self, recorder, browser):
        self.recorder = recorder
        self.browser = browser
        #: Page state is read through the session engine — the one
        #: sanctioned observer of the browser — never via tab internals.
        self.engine = SessionEngine(browser)
        self.reports = []

    def report_problem(self, description="", region_xpath=None,
                       hidden_xpaths=None, scrub=True):
        """Build a report from the current recording session.

        - ``region_xpath``: share only that part of the final page;
        - ``hidden_xpaths``: share the page but blank these subtrees;
        - ``scrub``: redact keystrokes into sensitive fields.
        """
        trace = self.recorder.trace
        if scrub:
            trace = scrub_trace(trace)
        snapshot = None
        document = self.engine.current_document()
        if document is not None:
            snapshot = PageSnapshot.capture(document,
                                            region_xpath=region_xpath,
                                            hidden_xpaths=hidden_xpaths)
        report = UserExperienceReport(trace, description=description,
                                      snapshot=snapshot, scrubbed=scrub)
        self.reports.append(report)
        return report

    @staticmethod
    def reproduce(report, browser_factory, timing=None,
                  region_xpath=None, hidden_xpaths=None):
        """Developer side: replay a user's report on a fresh environment.

        Runs the bundled trace through the session engine with a
        :class:`~repro.auser.snapshot.SnapshotObserver` attached and
        returns ``(replay_report, final_snapshot)`` — the developer sees
        both what replayed and the page the user ended on.
        """
        engine = SessionEngine(browser_factory(), timing=timing)
        snapshotter = SnapshotObserver(region_xpath=region_xpath,
                                       hidden_xpaths=hidden_xpaths)
        replay_report = engine.run(report.trace, observers=[snapshotter])
        return replay_report, snapshotter.snapshot

    def recorder_overhead_acceptable(self):
        """Is the recorder's per-action cost below human perception?"""
        return (self.recorder.mean_overhead_us() / 1000.0
                < PERCEPTION_THRESHOLD_MS)
