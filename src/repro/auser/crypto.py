"""Toy public-key encryption for traces.

"To prevent traces from being used to exploit an application's
vulnerabilities, one can encrypt them with the developers' public key,
so that only developers can access the traces." (paper, Section IV-D)

This is a *schoolbook RSA* implementation over small fixed primes. It
demonstrates the encrypt-for-developers workflow and nothing more:
**IT IS NOT SECURE** (no padding, tiny keys, deterministic). A real
deployment would use a vetted cryptographic library.
"""

from repro.util.rng import SeededRandom


def _is_prime(candidate):
    if candidate < 2:
        return False
    if candidate % 2 == 0:
        return candidate == 2
    divisor = 3
    while divisor * divisor <= candidate:
        if candidate % divisor == 0:
            return False
        divisor += 2
    return True


def _next_prime(start):
    candidate = start if start % 2 else start + 1
    while not _is_prime(candidate):
        candidate += 2
    return candidate


def _egcd(a, b):
    if b == 0:
        return a, 1, 0
    gcd, x, y = _egcd(b, a % b)
    return gcd, y, x - (a // b) * y


def _modinv(a, modulus):
    gcd, x, _ = _egcd(a, modulus)
    if gcd != 1:
        raise ValueError("no modular inverse")
    return x % modulus


class KeyPair:
    """An RSA key pair: (n, e) public, (n, d) private."""

    def __init__(self, modulus, public_exponent, private_exponent):
        self.modulus = modulus
        self.public_exponent = public_exponent
        self.private_exponent = private_exponent

    @property
    def public(self):
        return (self.modulus, self.public_exponent)

    @property
    def private(self):
        return (self.modulus, self.private_exponent)

    def __repr__(self):
        return "KeyPair(n=%d)" % self.modulus


class ToyRSA:
    """Schoolbook RSA over byte values. Demonstration only."""

    @staticmethod
    def generate(seed=0):
        """Deterministically derive a small key pair from a seed."""
        rng = SeededRandom(seed)
        p = _next_prime(rng.randint(1_000, 5_000))
        q = _next_prime(rng.randint(5_001, 9_000))
        while q == p:
            q = _next_prime(q + 2)
        modulus = p * q
        phi = (p - 1) * (q - 1)
        public_exponent = 65537 if phi > 65537 else 257
        while _egcd(public_exponent, phi)[0] != 1:
            public_exponent += 2
        private_exponent = _modinv(public_exponent, phi)
        return KeyPair(modulus, public_exponent, private_exponent)

    @staticmethod
    def encrypt(text, public_key):
        """Encrypt UTF-8 text byte-by-byte; returns a list of ints."""
        modulus, exponent = public_key
        return [pow(byte, exponent, modulus) for byte in text.encode("utf-8")]

    @staticmethod
    def decrypt(ciphertext, private_key):
        """Inverse of :meth:`encrypt`."""
        modulus, exponent = private_key
        data = bytes(pow(block, exponent, modulus) for block in ciphertext)
        return data.decode("utf-8")
