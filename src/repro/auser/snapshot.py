"""Page snapshots for user-experience reports.

"AUsER allows users to provide ... a snapshot of the final web page in
which the bug manifests. AUsER allows users to send developers only a
part of the snapshot, such as the button that has the wrong name,
leaving out private details displayed on the web page." (paper, VI)

:class:`SnapshotObserver` rides the session engine's event stream and
captures the final page when a session finishes — that is how a
developer-side replay of a user's trace reproduces the snapshot without
reaching into driver internals.
"""

from repro.dom.serialize import serialize
from repro.session.events import SessionObserver
from repro.util.errors import ElementNotFoundError
from repro.xpath.evaluator import evaluate


class PageSnapshot:
    """A serialized view of (part of) a page at report time."""

    def __init__(self, html, url="", region_xpath=None):
        self.html = html
        self.url = url
        self.region_xpath = region_xpath

    @classmethod
    def full(cls, document):
        """Snapshot the whole page."""
        return cls(serialize(document), url=document.url)

    @classmethod
    def region(cls, document, xpath):
        """Snapshot only the subtree the user chose to share."""
        matches = evaluate(xpath, document)
        if not matches:
            raise ElementNotFoundError(
                "cannot snapshot %r: no matching element" % xpath)
        return cls(serialize(matches[0]), url=document.url,
                   region_xpath=str(xpath))

    @classmethod
    def redacted(cls, document, hidden_xpaths):
        """Full snapshot with chosen subtrees blanked out.

        The complement of :meth:`region`: share everything *except* the
        private parts.
        """
        clone = _clone_document(document)
        for xpath in hidden_xpaths:
            for element in evaluate(xpath, clone):
                for child in list(element.children):
                    element.remove_child(child)
                element.attributes = {
                    key: value for key, value in element.attributes.items()
                    if key in ("id", "class", "name")
                }
                element.set_attribute("data-redacted", "true")
        return cls(serialize(clone), url=document.url)

    @classmethod
    def capture(cls, document, region_xpath=None, hidden_xpaths=None):
        """One entry point for the three sharing modes.

        - ``region_xpath``: share only that part of the page;
        - ``hidden_xpaths``: share the page but blank these subtrees;
        - neither: share the whole page.
        """
        if region_xpath is not None:
            return cls.region(document, region_xpath)
        if hidden_xpaths:
            return cls.redacted(document, hidden_xpaths)
        return cls.full(document)

    @property
    def is_partial(self):
        return self.region_xpath is not None

    def __repr__(self):
        scope = self.region_xpath if self.is_partial else "full page"
        return "PageSnapshot(%s, %d bytes)" % (scope, len(self.html))


def _clone_document(document):
    from repro.dom.parser import parse_html

    return parse_html(serialize(document), url=document.url)


class SnapshotObserver(SessionObserver):
    """Captures the final page of a session as a :class:`PageSnapshot`.

    Subscribe one to a :class:`~repro.session.engine.SessionEngine` run;
    after ``session-finished`` the snapshot (scoped or redacted the same
    way a user's report would be) is available on ``.snapshot``.
    """

    def __init__(self, region_xpath=None, hidden_xpaths=None):
        self.region_xpath = region_xpath
        self.hidden_xpaths = hidden_xpaths
        self.snapshot = None

    def on_session_finished(self, event):
        browser = event.data["browser"]
        tab = browser.active_tab
        if tab is None or tab.renderer is None:
            return
        self.snapshot = PageSnapshot.capture(
            tab.document, region_xpath=self.region_xpath,
            hidden_xpaths=self.hidden_xpaths)
