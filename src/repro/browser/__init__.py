"""Simulated Chrome browser.

Reproduces the architecture of Figure 2 in the paper: a
:class:`BrowserWindow` contains :class:`Tab` s; each tab owns a
:class:`Renderer` that proxies input messages over an IPC channel to a
:class:`WebKitEngine`; the engine's :class:`EventHandler` is where user
input becomes DOM events — and where the WaRR Recorder hooks in, exactly
as the paper instruments ``WebCore::EventHandler``.
"""

from repro.browser.ipc import IpcChannel, InputMessage
from repro.browser.event_handler import EventHandler, InputObserver
from repro.browser.webkit import WebKitEngine
from repro.browser.renderer import Renderer
from repro.browser.tab import Tab
from repro.browser.window import Browser, BrowserWindow
from repro.browser.popup import PopupWidget

__all__ = [
    "IpcChannel",
    "InputMessage",
    "EventHandler",
    "InputObserver",
    "WebKitEngine",
    "Renderer",
    "Tab",
    "Browser",
    "BrowserWindow",
    "PopupWidget",
]
