"""The WebKit engine simulation.

One :class:`WebKitEngine` renders one document: it owns the DOM, the
layout, the page's script :class:`~repro.scripting.context.Window`, the
:class:`~repro.browser.event_handler.EventHandler`, and the child
engines of any ``<iframe src=...>`` elements. Iframes *without* a
``src`` get no child engine — the Chrome behaviour behind one of the
ChromeDriver problems the paper fixes (Section IV-C).
"""

from repro import chaos
from repro.dom.parser import parse_html
from repro.events.dispatch import dispatch_event
from repro.layout.engine import LayoutEngine
from repro.net.http import resolve_url
from repro.scripting.context import Window
from repro.util.errors import InjectedScriptError, NetworkError, ScriptError


class WebKitEngine:
    """Rendering engine for one frame (main frame or iframe)."""

    def __init__(self, browser, tab, parent=None):
        self.browser = browser
        self.tab = tab
        self.parent = parent
        self.document = None
        self.window = None
        self.layout = None
        self.event_handler = None
        self.focused_element = None
        #: iframe Element -> child WebKitEngine
        self.frames = {}
        #: Callbacks run when this engine's page is torn down. The
        #: ChromeDriver simulation registers its per-frame clients here.
        self.unload_listeners = []
        self.loaded = False

    # -- lifecycle ----------------------------------------------------------

    def load(self, html, url):
        """Parse HTML, lay it out, load iframes, run page scripts."""
        from repro.browser.event_handler import EventHandler

        self.document = parse_html(html, url=url)
        self.window = Window(
            self.document,
            self.browser.event_loop,
            network=self.browser.network,
            navigate=self.request_navigation,
            error_sink=self.browser.page_errors.append,
            focus_element=self.set_focus,
            random_source=self.browser.script_random,
            time_source=self.browser.script_now,
        )
        self.layout = LayoutEngine(self.document, self.browser.viewport_width)
        self.layout.trace_track = self  # reflow spans on this renderer lane
        self.layout.relayout()
        self.event_handler = EventHandler(self)
        self._load_iframes()
        self._run_scripts()
        self.loaded = True
        self.browser.notify_frame_loaded(self)
        return self

    def unload(self):
        """Tear the page down: cancel timers, notify unload listeners."""
        if self.window is not None:
            self.window.cancel_all_timers()
        for child in list(self.frames.values()):
            child.unload()
        self.frames = {}
        for listener in list(self.unload_listeners):
            listener(self)
        self.unload_listeners = []
        self.loaded = False

    def _load_iframes(self):
        for element in self.document.all_elements():
            if element.tag != "iframe":
                continue
            src = element.get_attribute("src")
            if not src:
                # No src: Chrome loads no renderer client for it; its
                # inline content stays part of this document.
                continue
            url = resolve_url(self.document.url, src)
            try:
                response = self.browser.network.fetch(url)
            except NetworkError:
                continue
            child = WebKitEngine(self.browser, self.tab, parent=self)
            child.load(response.body, url)
            self.frames[element] = child

    def _run_scripts(self):
        """Execute ``<script data-script=...>`` references via the registry."""
        injector = chaos.current()
        if injector is not None and not injector.script_active:
            injector = None
        for element in self.document.get_elements_by_tag("script"):
            name = element.get_attribute("data-script")
            if not name:
                continue
            if (injector is not None
                    and injector.fault("script", "load_error",
                                       "script_error_rate",
                                       detail=name) is not None):
                # The script dies before running: its side effects (event
                # handlers, initialization) never happen on this page.
                self.window.console.error(InjectedScriptError(
                    "injected load-time exception in script %r" % name))
                continue
            try:
                script = self.browser.script_registry.get(name)
                script(self.window)
            except ScriptError as error:
                self.window.console.error(error)
            except Exception as error:
                self.window.console.error(ScriptError(str(error), cause=error))

    # -- frame helpers ------------------------------------------------------

    def frame_for(self, element):
        """Child engine rendered inside ``element`` (an iframe), or None."""
        return self.frames.get(element)

    def all_engines(self):
        """This engine plus every descendant frame engine, preorder."""
        engines = [self]
        for child in self.frames.values():
            engines.extend(child.all_engines())
        return engines

    # -- layout / hit testing -------------------------------------------------

    def invalidate_layout(self):
        """Mark layout stale; recomputed lazily on the next box query."""
        if self.layout is not None:
            self.layout.invalidate()

    def hit_test(self, x, y):
        return self.layout.hit_test(x, y)

    # -- focus ------------------------------------------------------------

    def set_focus(self, element):
        """Move keyboard focus; fires blur/focus events."""
        from repro.events.event import Event

        if element is self.focused_element:
            return
        if self.focused_element is not None:
            blur = Event("blur", bubbles=False, cancelable=False)
            self.dispatch(self.focused_element, blur)
        self.focused_element = element
        if element is not None:
            focus = Event("focus", bubbles=False, cancelable=False)
            self.dispatch(element, focus)

    # -- event dispatch ------------------------------------------------------

    def dispatch(self, target, event):
        """Dispatch into the DOM; script errors land on the console."""
        return dispatch_event(target, event,
                              on_error=self.window.console.error, track=self)

    @property
    def console(self):
        return self.window.console

    # -- navigation -----------------------------------------------------------

    def request_navigation(self, url, method="GET", body=""):
        """Route a navigation request to the owning tab."""
        self.tab.navigate(url, method=method, body=body)

    # -- observers ------------------------------------------------------------

    def input_observers(self):
        """Recorders attached at browser level observe every engine."""
        return self.browser.input_observers

    def __repr__(self):
        url = self.document.url if self.document is not None else "<unloaded>"
        return "WebKitEngine(url=%r, frames=%d)" % (url, len(self.frames))
