"""Tabs: navigation, history, and the user-input surface.

A tab's input methods (:meth:`click`, :meth:`type_key`, :meth:`drag`,
...) are what a *human* does: they build trusted events, push them
through the IPC channel into the renderer, and let the WebKit event
handler take over — which is where the recorder sees them. Between
actions, real time passes; simulated users call :meth:`wait` which runs
the event loop (AJAX responses and timers fire during the wait).
"""

from repro.browser.ipc import InputMessage
from repro.browser.renderer import Renderer
from repro.events.event import MouseEvent, DragEvent, KeyboardEvent
from repro.events.keys import virtual_key_code, needs_shift, KEY_SHIFT
from repro.util.errors import NavigationError, NetworkError, classify


class Tab:
    """One browser tab."""

    def __init__(self, browser, tab_id):
        self.browser = browser
        self.tab_id = tab_id
        self.renderer = None
        self.history = []
        self.history_index = -1

    # -- navigation -----------------------------------------------------------

    @property
    def url(self):
        if self.history_index < 0:
            return None
        return self.history[self.history_index]

    @property
    def engine(self):
        """The main-frame engine of the current page."""
        if self.renderer is None:
            raise NavigationError("tab %d has no page loaded" % self.tab_id)
        return self.renderer.engine

    @property
    def document(self):
        return self.engine.document

    def navigate(self, url, method="GET", body="", record_history=True):
        """Load ``url``, replacing the current page."""
        try:
            response = self.browser.network.fetch(url, method=method, body=body)
        except NetworkError as error:
            failure = NavigationError(str(error))
            # The navigation is only as permanent as its cause: a
            # transient network fault stays retryable through the wrap.
            failure.severity = classify(error)
            raise failure
        if not response.ok and response.status != 404:
            raise NavigationError(
                "server returned %d for %s" % (response.status, url)
            )
        # Chrome commits the new page before tearing the old one down —
        # new renderer clients load first, then the old ones unload. The
        # paper's ChromeDriver active-client bug depends on this order
        # (Section IV-C, last challenge).
        old_renderer = self.renderer
        self.renderer = Renderer(self.browser, self)
        self.renderer.load(response.body, url)
        if old_renderer is not None:
            old_renderer.shutdown()
        if record_history:
            del self.history[self.history_index + 1:]
            self.history.append(url)
            self.history_index = len(self.history) - 1
        return self

    def back(self):
        """History back (re-fetches, like a non-cached browser)."""
        if self.history_index <= 0:
            raise NavigationError("no earlier history entry")
        self.history_index -= 1
        self.navigate(self.history[self.history_index], record_history=False)

    def forward(self):
        """History forward."""
        if self.history_index >= len(self.history) - 1:
            raise NavigationError("no later history entry")
        self.history_index += 1
        self.navigate(self.history[self.history_index], record_history=False)

    # -- waiting --------------------------------------------------------------

    def wait(self, duration_ms):
        """Let ``duration_ms`` of simulated time pass (timers/AJAX fire)."""
        self.browser.event_loop.run_for(duration_ms)

    def wait_until_idle(self):
        """Run the event loop dry — everything pending completes."""
        self.browser.event_loop.run_until_idle()

    # -- raw user input ------------------------------------------------------

    def _now(self):
        return self.browser.clock.now()

    def click(self, x, y, button=0):
        """User clicks at page coordinates (x, y)."""
        event = MouseEvent("mousepress", client_x=x, client_y=y,
                           button=button, detail=1, timestamp=self._now())
        event.is_trusted = True
        self.renderer.send_input(InputMessage(InputMessage.MOUSE, event))

    def double_click(self, x, y, button=0):
        """User double-clicks at page coordinates (x, y)."""
        event = MouseEvent("mousepress", client_x=x, client_y=y,
                           button=button, detail=2, timestamp=self._now())
        event.is_trusted = True
        self.renderer.send_input(InputMessage(InputMessage.MOUSE, event))

    def type_key(self, key, ctrl=False, alt=False):
        """User presses one key (a character or a named control key).

        Typing a shifted character first delivers the Shift keystroke,
        as Chrome does (the paper's recorder combines the two).
        """
        if needs_shift(key):
            shift = KeyboardEvent.trusted("rawkey", "Shift", KEY_SHIFT,
                                          timestamp=self._now())
            self.renderer.send_input(InputMessage(InputMessage.KEY, shift))
        event = KeyboardEvent.trusted(
            "rawkey", key, virtual_key_code(key),
            shift_key=needs_shift(key), ctrl_key=ctrl, alt_key=alt,
            timestamp=self._now(),
        )
        self.renderer.send_input(InputMessage(InputMessage.KEY, event))

    def type_text(self, text, think_time_ms=0.0):
        """Type a string one keystroke at a time."""
        for char in text:
            self.type_key(char)
            if think_time_ms:
                self.wait(think_time_ms)

    def drag(self, x, y, dx, dy):
        """User drags the element under (x, y) by (dx, dy)."""
        event = DragEvent("rawdrag", dx=dx, dy=dy, client_x=x, client_y=y,
                          timestamp=self._now())
        event.is_trusted = True
        self.renderer.send_input(InputMessage(InputMessage.DRAG, event))

    # -- element-targeted conveniences ---------------------------------------

    def click_element(self, element):
        """Click the center of an element's box."""
        x, y = self.engine.layout.click_point(element)
        self.click(x, y)

    def double_click_element(self, element):
        x, y = self.engine.layout.click_point(element)
        self.double_click(x, y)

    def drag_element(self, element, dx, dy):
        x, y = self.engine.layout.click_point(element)
        self.drag(x, y, dx, dy)

    def find(self, xpath):
        """Find the first element matching ``xpath`` in the main frame."""
        from repro.xpath.evaluator import find_first

        return find_first(xpath, self.document)

    def __repr__(self):
        return "Tab(id=%d, url=%r)" % (self.tab_id, self.url)
