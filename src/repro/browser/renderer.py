"""The renderer process simulation.

In Chrome, input events cross from the browser process into the renderer
over IPC and are dispatched to WebKit (``RenderView::OnMessageReceived``
→ ``WebViewImpl::handleInputEvent`` → ``WebCore::EventHandler`` — the
stack in the paper's Figure 3). The :class:`Renderer` reproduces that
path: it connects an :class:`~repro.browser.ipc.IpcChannel` receiver
that forwards messages to the engine's EventHandler.
"""

from repro import chaos
from repro.browser.ipc import IpcChannel, InputMessage
from repro.browser.webkit import WebKitEngine
from repro.util.errors import RendererCrashError, RendererHangError


class Renderer:
    """Hosts one WebKitEngine behind an IPC channel."""

    def __init__(self, browser, tab):
        self.browser = browser
        self.tab = tab
        self.engine = WebKitEngine(browser, tab)
        #: True once the renderer process has died (Chrome's "sad tab").
        #: A crashed renderer rejects all further input until the tab is
        #: reloaded (which builds a fresh Renderer).
        self.crashed = False
        # The virtual clock makes enqueue→deliver latency deterministic;
        # track binding puts send-side events on the browser process
        # lane and deliveries on this renderer's lane.
        self.channel = IpcChannel(clock=browser.clock)
        self.channel.bind_tracks(browser, self)
        self.channel.connect(self._on_message_received)

    def load(self, html, url):
        self.engine.load(html, url)
        return self

    def shutdown(self):
        self.engine.unload()

    # -- RenderView::OnMessageReceived ------------------------------------

    def _on_message_received(self, message):
        self._handle_input_event(message)

    # -- WebViewImpl::handleInputEvent ------------------------------------

    def _handle_input_event(self, message):
        engine = (message.target_engine if message.target_engine is not None
                  else self.engine)
        handler = engine.event_handler
        if handler is None:
            return
        if message.kind == InputMessage.MOUSE:
            handler.handle_mouse_press_event(message.payload)
        elif message.kind == InputMessage.KEY:
            handler.key_event(message.payload)
        elif message.kind == InputMessage.DRAG:
            handler.handle_drag(message.payload)

    def crash(self):
        """Kill the renderer process (the injected "sad tab").

        The engine unloads — detaching its frame clients exactly like a
        navigation teardown would — and the tab shows the crash page
        until something reloads it.
        """
        if not self.crashed:
            self.crashed = True
            self.engine.unload()

    def send_input(self, message):
        """Browser-process side: queue and deliver an input event."""
        if self.crashed:
            raise RendererCrashError(
                "renderer for tab %d has crashed; reload required"
                % self.tab.tab_id)
        injector = chaos.current()
        if injector is not None and injector.renderer_active:
            if injector.fault("renderer", "crash", "renderer_crash_rate",
                              detail=message.kind) is not None:
                self.crash()
                raise RendererCrashError(
                    "renderer for tab %d crashed handling %s input (injected)"
                    % (self.tab.tab_id, message.kind))
            hang_ms = injector.fault("renderer", "hang", "renderer_hang_rate",
                                     "renderer_hang_ms", detail=message.kind)
            if hang_ms is not None:
                # The renderer stops pumping for a while; the input event
                # is lost (real browsers time the dispatch out).
                self.browser.clock.advance(hang_ms)
                raise RendererHangError(
                    "renderer for tab %d hung for %.1fms handling %s input"
                    % (self.tab.tab_id, hang_ms, message.kind))
        self.channel.send_and_pump(message)

    def __repr__(self):
        return "Renderer(%r)" % (self.engine,)
