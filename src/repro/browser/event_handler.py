"""WebKit-layer input handling.

This is the class the paper instruments: ``WebCore::EventHandler`` with
its ``handleMousePressEvent``, ``handleDrag``, and ``keyEvent`` methods
(Section IV-A). User input arrives here *after* crossing the IPC
boundary, is reported to any attached :class:`InputObserver` (the WaRR
Recorder), and is then dispatched into the DOM with default actions —
link activation, form submission, text insertion, element dragging.
"""

from repro import telemetry
from repro.dom.node import Element
from repro.events.event import MouseEvent, KeyboardEvent, DragEvent, InputEvent
from repro.events.keys import (
    KEY_BACKSPACE,
    KEY_ENTER,
    KEY_SHIFT,
    is_printable,
)
from repro.net.http import build_url, parse_url, resolve_url


class InputObserver:
    """Interface for recorders hooked into the EventHandler.

    The default implementations do nothing so observers can override
    only the actions they care about.
    """

    def on_mouse_press(self, engine, event, target):
        """Called for every mouse press, before DOM dispatch."""

    def on_key(self, engine, event, target):
        """Called for every keystroke, before DOM dispatch."""

    def on_drag(self, engine, event, target):
        """Called for every drag, before DOM dispatch."""


class EventHandler:
    """Turns raw input events into DOM events and default actions."""

    def __init__(self, engine):
        self.engine = engine

    # -- the three instrumented entry points (paper, Section IV-A) -------

    def handle_mouse_press_event(self, event):
        """Entry point for mouse input (click and double click)."""
        tracer = telemetry.current()
        if tracer is None or not tracer.wants("input"):
            return self._handle_mouse_press(event)
        with tracer.span("input.mouse", track=self.engine, cat="input",
                         args={"x": event.client_x, "y": event.client_y,
                               "detail": event.detail}):
            return self._handle_mouse_press(event)

    def _handle_mouse_press(self, event):
        engine = self.engine
        target = engine.hit_test(event.client_x, event.client_y)
        if target is None:
            target = engine.document.body
        if target is None:
            return

        # Clicks landing on a loaded iframe are forwarded to its child
        # engine with translated coordinates.
        child = engine.frame_for(target)
        if child is not None:
            box = engine.layout.box_for(target)
            inner = MouseEvent(
                event.type,
                client_x=event.client_x - int(box.rect.x),
                client_y=event.client_y - int(box.rect.y),
                button=event.button,
                detail=event.detail,
                timestamp=event.timestamp,
            )
            inner.is_trusted = event.is_trusted
            child.event_handler.handle_mouse_press_event(inner)
            return

        self._notify("on_mouse_press", event, target)

        engine.set_focus(target if target.is_focusable() else None)

        down = MouseEvent("mousedown", event.client_x, event.client_y,
                          event.button, event.detail, event.timestamp)
        down.is_trusted = event.is_trusted
        engine.dispatch(target, down)

        up = MouseEvent("mouseup", event.client_x, event.client_y,
                        event.button, event.detail, event.timestamp)
        up.is_trusted = event.is_trusted
        engine.dispatch(target, up)

        click_type = "dblclick" if event.detail >= 2 else "click"
        click = MouseEvent(click_type, event.client_x, event.client_y,
                           event.button, event.detail, event.timestamp)
        click.is_trusted = event.is_trusted
        proceed = engine.dispatch(target, click)
        if proceed and click_type == "click":
            self._activate(target)
        engine.invalidate_layout()

    def key_event(self, event):
        """Entry point for keyboard input."""
        tracer = telemetry.current()
        if tracer is None or not tracer.wants("input"):
            return self._key_event(event)
        with tracer.span("input.key", track=self.engine, cat="input",
                         args={"key": event.key, "code": event.key_code}):
            return self._key_event(event)

    def _key_event(self, event):
        engine = self.engine
        target = engine.focused_element
        if target is None:
            target = engine.document.body
        if target is None:
            return

        self._notify("on_key", event, target)

        if event.key_code == KEY_SHIFT:
            # Shift by itself changes no state; it only modifies the next
            # printable key (which carries shift_key=True).
            return

        down = KeyboardEvent.trusted("keydown", event.key, event.key_code,
                                     event.shift_key, event.ctrl_key,
                                     event.alt_key, event.timestamp)
        proceed = engine.dispatch(target, down)
        if proceed and is_printable(event.key) and not event.ctrl_key:
            press = KeyboardEvent.trusted("keypress", event.key,
                                          event.key_code, event.shift_key,
                                          event.ctrl_key, event.alt_key,
                                          event.timestamp)
            proceed = engine.dispatch(target, press)
        if proceed:
            self._default_key_action(target, event)

        keyup = KeyboardEvent.trusted("keyup", event.key, event.key_code,
                                      event.shift_key, event.ctrl_key,
                                      event.alt_key, event.timestamp)
        engine.dispatch(target, keyup)
        engine.invalidate_layout()

    def handle_drag(self, event):
        """Entry point for UI-element drags."""
        tracer = telemetry.current()
        if tracer is None or not tracer.wants("input"):
            return self._handle_drag(event)
        with tracer.span("input.drag", track=self.engine, cat="input",
                         args={"dx": event.dx, "dy": event.dy}):
            return self._handle_drag(event)

    def _handle_drag(self, event):
        engine = self.engine
        target = engine.hit_test(event.client_x, event.client_y)
        if target is None:
            return

        self._notify("on_drag", event, target)

        drag = DragEvent("drag", event.dx, event.dy, event.client_x,
                         event.client_y, event.timestamp)
        drag.is_trusted = event.is_trusted
        proceed = engine.dispatch(target, drag)
        if proceed:
            self._apply_drag(target, event.dx, event.dy)
        engine.invalidate_layout()

    # -- default actions ----------------------------------------------------

    def _activate(self, element):
        """Post-click activation behaviour."""
        tag = element.tag
        if tag == "a" and element.has_attribute("href"):
            self._navigate_to(element.get_attribute("href"))
            return
        if tag == "input":
            input_type = (element.get_attribute("type") or "text").lower()
            if input_type == "checkbox":
                if element.has_attribute("checked"):
                    element.remove_attribute("checked")
                else:
                    element.set_attribute("checked", "")
                self.engine.dispatch(element, InputEvent())
                return
            if input_type in ("submit", "image"):
                self.submit_enclosing_form(element)
                return
        if tag == "button":
            button_type = (element.get_attribute("type") or "submit").lower()
            if button_type == "submit":
                self.submit_enclosing_form(element)

    def _default_key_action(self, target, event):
        """Text insertion / deletion / Enter-submits."""
        engine = self.engine
        if event.key_code == KEY_ENTER:
            if target.tag == "input":
                self.submit_enclosing_form(target)
            elif target.is_content_editable:
                target.append_child(engine.document.create_element("br"))
            return
        if event.key_code == KEY_BACKSPACE:
            self._delete_backwards(target)
            engine.dispatch(target, InputEvent())
            return
        if not is_printable(event.key) or event.ctrl_key or event.alt_key:
            return
        self._insert_text(target, event.key)
        engine.dispatch(target, InputEvent(data=event.key))

    def _insert_text(self, target, text):
        if target.tag in ("input", "textarea"):
            target.value = target.value + text
        elif target.is_content_editable:
            editable = self._editable_root(target)
            editable.text_content = editable.text_content + text
        # Keys sent to non-editable targets have no default effect.

    def _delete_backwards(self, target):
        if target.tag in ("input", "textarea"):
            target.value = target.value[:-1]
        elif target.is_content_editable:
            editable = self._editable_root(target)
            editable.text_content = editable.text_content[:-1]

    @staticmethod
    def _editable_root(target):
        """Innermost element that itself declares contenteditable."""
        node = target
        while isinstance(node, Element):
            if node.has_attribute("contenteditable"):
                return node
            node = node.parent
        return target

    def _apply_drag(self, target, dx, dy):
        """Default drag action: translate the element."""
        offset_x = int(target.get_attribute("data-offset-x") or 0) + dx
        offset_y = int(target.get_attribute("data-offset-y") or 0) + dy
        target.set_attribute("data-offset-x", str(offset_x))
        target.set_attribute("data-offset-y", str(offset_y))

    def submit_enclosing_form(self, element):
        form = None
        for ancestor in element.ancestors():
            if isinstance(ancestor, Element) and ancestor.tag == "form":
                form = ancestor
                break
        if form is None:
            return
        proceed = self.engine.dispatch(form, _submit_event())
        if not proceed:
            return
        action = form.get_attribute("action") or self.engine.document.url
        method = (form.get_attribute("method") or "GET").upper()
        fields = {}
        for node in form.descendants():
            if not isinstance(node, Element):
                continue
            if node.tag in ("input", "textarea", "select") and node.name:
                input_type = (node.get_attribute("type") or "text").lower()
                if input_type == "checkbox" and not node.has_attribute("checked"):
                    continue
                fields[node.name] = node.value
        target_url = resolve_url(self.engine.document.url, action)
        if method == "GET":
            scheme, host, path, query = parse_url(target_url)
            query.update(fields)
            self._navigate_to(build_url(scheme, host, path, query))
        else:
            body = "&".join("%s=%s" % (k, v) for k, v in fields.items())
            self._navigate_to(target_url, method="POST", body=body)

    def _navigate_to(self, href, method="GET", body=""):
        engine = self.engine
        url = resolve_url(engine.document.url, href)
        engine.request_navigation(url, method=method, body=body)

    # -- observer plumbing ------------------------------------------------

    def _notify(self, method_name, event, target):
        for observer in self.engine.input_observers():
            getattr(observer, method_name)(self.engine, event, target)


def _submit_event():
    from repro.events.event import Event

    return Event("submit", bubbles=True, cancelable=True)
