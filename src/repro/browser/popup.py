"""Native popup widgets.

The paper (Section IV-D): "WaRR cannot handle pop-ups because user
interaction events that happen on such widgets are not routed through to
WebKit." We reproduce that: a :class:`PopupWidget` takes clicks directly
from the (simulated) OS widget toolkit, bypassing the IPC channel and the
WebKit event handler entirely, so an attached recorder misses them.
"""


class PopupWidget:
    """A modal OS-level dialog (e.g. a JavaScript alert/confirm)."""

    def __init__(self, title, buttons, clock=None):
        self.title = title
        self.buttons = list(buttons)
        self.clock = clock
        self.clicked = []
        self.dismissed = False
        self._handlers = {}

    def on_button(self, label, handler):
        """Register a callback for a button."""
        if label not in self.buttons:
            raise ValueError("popup has no button %r" % label)
        self._handlers[label] = handler

    def click_button(self, label):
        """The user clicks a popup button.

        Note: this path never touches the browser's EventHandler — the
        recorder cannot observe it.
        """
        if label not in self.buttons:
            raise ValueError("popup has no button %r" % label)
        timestamp = self.clock.now() if self.clock is not None else 0.0
        self.clicked.append((label, timestamp))
        handler = self._handlers.get(label)
        if handler is not None:
            handler()
        self.dismissed = True

    def __repr__(self):
        return "PopupWidget(%r, buttons=%r)" % (self.title, self.buttons)
