"""The browser process: windows, tabs, and global services.

:class:`Browser` is the composition root of the simulation — it wires the
virtual clock, event loop, network, and script registry together, owns
the tabs, and is the attachment point for input observers (the WaRR
Recorder and the Selenium IDE baseline both attach here, at different
depths).

``developer_mode`` is the paper's replayer-browser switch: it lets
synthetic keyboard events carry real key properties (Section IV-C).
"""

from repro.browser.popup import PopupWidget
from repro.browser.tab import Tab
from repro.net.server import Network
from repro.scripting.registry import ScriptRegistry
from repro.util.clock import VirtualClock
from repro.util.event_loop import EventLoop


class Browser:
    """A running browser instance (one window, many tabs)."""

    def __init__(self, network=None, script_registry=None, developer_mode=False,
                 viewport_width=1024, event_loop=None, script_random_seed=1234):
        if event_loop is None:
            # Inherit the network's loop so clock and timers agree.
            event_loop = network.event_loop if network is not None else EventLoop(VirtualClock())
        self.event_loop = event_loop
        self.network = network if network is not None else Network(self.event_loop)
        if self.network.event_loop is not self.event_loop:
            raise ValueError("network and browser must share one event loop")
        self.script_registry = script_registry if script_registry is not None else ScriptRegistry()
        self.developer_mode = developer_mode
        self.viewport_width = viewport_width
        self.tabs = []
        #: InputObserver instances notified from the WebKit layer.
        self.input_observers = []
        #: Callbacks fired when any frame engine finishes loading. The
        #: ChromeDriver simulation uses this to attach per-frame clients.
        self.frame_load_listeners = []
        self.popups = []
        #: Session-wide uncaught page-script errors (outlives navigations).
        self.page_errors = []
        # Nondeterminism plumbing (paper, Section I: the recorder "can
        # easily be extended to record various sources of nondeterminism").
        from repro.util.rng import SeededRandom

        #: Live source of page-script randomness (seeded: runs reproduce).
        self._script_rng = SeededRandom(script_random_seed)
        #: Observers logging every nondeterministic value handed out.
        self.nondeterminism_taps = []
        #: Replay override: callable(kind, live_value) -> value.
        self.nondeterminism_source = None

    @property
    def clock(self):
        return self.event_loop.clock

    # -- tabs -----------------------------------------------------------------

    def new_tab(self, url=None):
        """Open a tab; optionally navigate it immediately."""
        tab = Tab(self, tab_id=len(self.tabs))
        self.tabs.append(tab)
        if url is not None:
            tab.navigate(url)
        return tab

    @property
    def active_tab(self):
        if not self.tabs:
            return None
        return self.tabs[-1]

    # -- observers ------------------------------------------------------------

    def attach_observer(self, observer):
        """Hook an :class:`InputObserver` into the WebKit layer."""
        self.input_observers.append(observer)
        return observer

    def detach_observer(self, observer):
        if observer in self.input_observers:
            self.input_observers.remove(observer)

    def notify_frame_loaded(self, engine):
        for listener in list(self.frame_load_listeners):
            listener(engine)

    # -- nondeterminism sources for page scripts --------------------------

    def draw_nondeterminism(self, kind, live_value):
        """Serve one nondeterministic value to a page script.

        During recording: the live value is handed out and every tap
        (the NondeterminismRecorder) logs it. During replay: an
        installed source substitutes the recorded value first.
        """
        if self.nondeterminism_source is not None:
            value = self.nondeterminism_source(kind, live_value)
        else:
            value = live_value
        for tap in self.nondeterminism_taps:
            tap(kind, value)
        return value

    def script_random(self):
        """``Math.random()`` for page scripts."""
        from repro.core.nondeterminism import KIND_RANDOM

        return self.draw_nondeterminism(KIND_RANDOM, self._script_rng.random())

    def script_now(self):
        """``Date.now()`` for page scripts (virtual ms)."""
        from repro.core.nondeterminism import KIND_TIME

        return self.draw_nondeterminism(KIND_TIME, self.clock.now())

    # -- popups (the recorder's blind spot, Section IV-D) ----------------------

    def show_popup(self, title, buttons):
        """Open a native popup widget.

        Popup interaction is routed by the OS widget toolkit, NOT through
        WebKit's EventHandler — so recorders embedded at the WebKit layer
        never see it. This models the limitation the paper acknowledges.
        """
        popup = PopupWidget(title, buttons, clock=self.clock)
        self.popups.append(popup)
        return popup

    def __repr__(self):
        return "Browser(tabs=%d, developer_mode=%r)" % (
            len(self.tabs), self.developer_mode,
        )


class BrowserWindow(Browser):
    """Alias matching the paper's Figure 2 terminology."""
