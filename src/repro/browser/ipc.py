"""Inter-process communication simulation.

Chrome routes input from the browser process to the renderer process over
IPC (the ``IPC::ChannelProxy`` frames in the paper's Figure 3 stack
trace). We model the channel explicitly — messages are enqueued by the
browser side and drained by the renderer — so the recorder demonstrably
sits *below* this boundary, at the WebKit layer, and so the per-message
path can be measured by the overhead benchmark and rendered on the
telemetry timeline (queue-latency spans, per-delivery spans, and a
queue-depth counter).
"""

import time
from collections import deque

from repro import chaos, telemetry


class InputMessage:
    """One input event crossing the browser → renderer boundary.

    ``target_engine`` addresses a specific frame engine inside the
    renderer (how automation input reaches an iframe's client); None
    delivers to the renderer's main-frame engine.
    """

    __slots__ = ("kind", "payload", "enqueued_at", "trace_enqueued_us",
                 "trace_id", "target_engine", "chaos_deferred")

    MOUSE = "mouse"
    KEY = "key"
    DRAG = "drag"

    def __init__(self, kind, payload, target_engine=None):
        if kind not in (self.MOUSE, self.KEY, self.DRAG):
            raise ValueError("unknown input message kind %r" % kind)
        self.kind = kind
        self.payload = payload
        self.enqueued_at = None
        self.trace_enqueued_us = None
        self.trace_id = None
        self.target_engine = target_engine
        # True once chaos has reordered this message to the back of the
        # queue; a message is deferred at most once so the pump always
        # terminates.
        self.chaos_deferred = False

    def __repr__(self):
        return "InputMessage(%s, %r)" % (self.kind, self.payload)


class IpcChannel:
    """FIFO message channel between browser and renderer.

    ``send`` enqueues; ``pump`` delivers everything queued to the
    receiver callback, in order. Enqueue times are kept so
    instrumentation can measure dispatch latency; by default they come
    from the wall clock (``time.perf_counter``, seconds), but passing a
    ``clock`` (anything with a ``now()`` method, e.g. a
    :class:`~repro.util.clock.VirtualClock` in milliseconds) makes
    enqueue→deliver latency deterministic under virtual time.
    """

    def __init__(self, clock=None):
        self._queue = deque()
        self._receiver = None
        self.delivered_count = 0
        self._clock = clock
        self._now = clock.now if clock is not None else time.perf_counter
        #: True when enqueue times are wall seconds (no clock given).
        self._wall = clock is None
        # Telemetry track anchors: the send side runs in the browser
        # process, delivery in the renderer. Set by bind_tracks().
        self._send_track = None
        self._recv_track = None

    def bind_tracks(self, sender, receiver):
        """Anchor trace events: ``sender`` browser-side, ``receiver``
        renderer-side (any objects the track registry can resolve)."""
        self._send_track = sender
        self._recv_track = receiver
        return self

    def connect(self, receiver):
        """Attach the renderer-side message handler."""
        self._receiver = receiver

    def send(self, message):
        """Queue a message for delivery."""
        message.enqueued_at = self._now()
        self._queue.append(message)
        tracer = telemetry.current()
        if tracer is not None and tracer.wants("ipc"):
            message.trace_enqueued_us = tracer.now_us()
            # Queue residency crosses threads (enqueued browser-side,
            # picked up renderer-side), so it is an async span, paired
            # by id with the matching async-end in the pump.
            message.trace_id = tracer.buffer.total
            tracer.async_begin("ipc.queue", message.trace_id,
                               track=self._send_track, cat="ipc",
                               args={"kind": message.kind})
            tracer.counter("ipc.queue_depth", {"depth": len(self._queue)},
                           track=self._send_track, cat="ipc")

    def pump(self):
        """Deliver all queued messages; returns how many were delivered."""
        if self._receiver is None:
            raise RuntimeError("IPC channel has no connected receiver")
        injector = chaos.current()
        if injector is not None and injector.ipc_active:
            return self._pump_chaotic(injector)
        tracer = telemetry.current()
        if tracer is not None and tracer.wants("ipc"):
            return self._pump_traced(tracer)
        delivered = 0
        queue = self._queue
        receiver = self._receiver
        while queue:
            receiver(queue.popleft())
            delivered += 1
        self.delivered_count += delivered
        return delivered

    def _pump_traced(self, tracer):
        """The pump loop with queue-latency and delivery spans."""
        delivered = 0
        pump_start = tracer.now_us()
        while self._queue:
            message = self._queue.popleft()
            if message.trace_id is not None:
                tracer.async_end("ipc.queue", message.trace_id,
                                 track=self._recv_track, cat="ipc")
            deliver_start = tracer.now_us()
            self._receiver(message)
            tracer.complete("ipc.deliver", deliver_start,
                            track=self._recv_track, cat="ipc",
                            args={"kind": message.kind,
                                  "queue_ms": self.latency_ms(message)})
            delivered += 1
        tracer.complete("ipc.pump", pump_start, track=self._send_track,
                        cat="ipc", args={"delivered": delivered})
        self.delivered_count += delivered
        return delivered

    def _pump_chaotic(self, injector):
        """The pump loop with fault injection (and tracing if on).

        Per message, in order: *reorder* defers it once to the back of
        the queue, *drop* discards it, *delay* advances the virtual
        clock before delivery (queue latency a congested channel would
        add). All draws come from the injector's ``ipc`` stream, so the
        perturbation schedule is a pure function of (profile, seed).
        """
        tracer = telemetry.current()
        if tracer is not None and not tracer.wants("ipc"):
            tracer = None
        pump_start = tracer.now_us() if tracer is not None else None
        delivered = 0
        dropped = 0
        queue = self._queue
        while queue:
            message = queue.popleft()
            if (queue and not message.chaos_deferred
                    and injector.fault("ipc", "reorder", "ipc_reorder_rate",
                                       detail=message.kind) is not None):
                message.chaos_deferred = True
                queue.append(message)
                continue
            if injector.fault("ipc", "drop", "ipc_drop_rate",
                              detail=message.kind) is not None:
                dropped += 1
                if tracer is not None and message.trace_id is not None:
                    tracer.async_end("ipc.queue", message.trace_id,
                                     track=self._recv_track, cat="ipc")
                continue
            delay_ms = injector.fault("ipc", "delay", "ipc_delay_rate",
                                      "ipc_delay_ms", detail=message.kind)
            if delay_ms is not None and self._clock is not None:
                self._clock.advance(delay_ms)
            if tracer is not None:
                if message.trace_id is not None:
                    tracer.async_end("ipc.queue", message.trace_id,
                                     track=self._recv_track, cat="ipc")
                deliver_start = tracer.now_us()
                self._receiver(message)
                tracer.complete("ipc.deliver", deliver_start,
                                track=self._recv_track, cat="ipc",
                                args={"kind": message.kind,
                                      "queue_ms": self.latency_ms(message)})
            else:
                self._receiver(message)
            delivered += 1
        if tracer is not None:
            tracer.complete("ipc.pump", pump_start, track=self._send_track,
                            cat="ipc", args={"delivered": delivered,
                                             "dropped": dropped})
        self.delivered_count += delivered
        return delivered

    def latency_ms(self, message):
        """Milliseconds since ``message`` was enqueued (channel clock)."""
        if message.enqueued_at is None:
            return None
        elapsed = self._now() - message.enqueued_at
        return elapsed * 1000.0 if self._wall else elapsed

    def send_and_pump(self, message):
        """Convenience: synchronous round trip for one message."""
        self.send(message)
        self.pump()
