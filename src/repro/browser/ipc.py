"""Inter-process communication simulation.

Chrome routes input from the browser process to the renderer process over
IPC (the ``IPC::ChannelProxy`` frames in the paper's Figure 3 stack
trace). We model the channel explicitly — messages are enqueued by the
browser side and drained by the renderer — so the recorder demonstrably
sits *below* this boundary, at the WebKit layer, and so the per-message
path can be measured by the overhead benchmark.
"""

import time


class InputMessage:
    """One input event crossing the browser → renderer boundary."""

    __slots__ = ("kind", "payload", "enqueued_at")

    MOUSE = "mouse"
    KEY = "key"
    DRAG = "drag"

    def __init__(self, kind, payload):
        if kind not in (self.MOUSE, self.KEY, self.DRAG):
            raise ValueError("unknown input message kind %r" % kind)
        self.kind = kind
        self.payload = payload
        self.enqueued_at = None

    def __repr__(self):
        return "InputMessage(%s, %r)" % (self.kind, self.payload)


class IpcChannel:
    """FIFO message channel between browser and renderer.

    ``send`` enqueues; ``pump`` delivers everything queued to the
    receiver callback, in order. Wall-clock enqueue times are kept so
    instrumentation can measure real dispatch cost.
    """

    def __init__(self):
        self._queue = []
        self._receiver = None
        self.delivered_count = 0

    def connect(self, receiver):
        """Attach the renderer-side message handler."""
        self._receiver = receiver

    def send(self, message):
        """Queue a message for delivery."""
        message.enqueued_at = time.perf_counter()
        self._queue.append(message)

    def pump(self):
        """Deliver all queued messages; returns how many were delivered."""
        if self._receiver is None:
            raise RuntimeError("IPC channel has no connected receiver")
        delivered = 0
        while self._queue:
            message = self._queue.pop(0)
            self._receiver(message)
            delivered += 1
        self.delivered_count += delivered
        return delivered

    def send_and_pump(self, message):
        """Convenience: synchronous round trip for one message."""
        self.send(message)
        self.pump()
