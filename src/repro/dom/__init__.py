"""Document Object Model substrate.

This package stands in for WebKit's DOM: a tree of nodes, an HTML parser
producing it, and a serializer turning it back into markup. The WaRR
Recorder identifies action targets by XPath over this tree, and WebErr's
grammar inference compares the "DOM shape" of successive pages.
"""

from repro.dom.node import (
    Node,
    Document,
    Element,
    Text,
    Comment,
    VOID_ELEMENTS,
)
from repro.dom.parser import parse_html, parse_fragment
from repro.dom.serialize import serialize, serialize_pretty

__all__ = [
    "Node",
    "Document",
    "Element",
    "Text",
    "Comment",
    "VOID_ELEMENTS",
    "parse_html",
    "parse_fragment",
    "serialize",
    "serialize_pretty",
]
