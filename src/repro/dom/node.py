"""DOM node classes.

A deliberately small but faithful subset of the DOM: ``Document``,
``Element``, ``Text``, and ``Comment`` nodes with the tree-manipulation,
attribute, and event-listener APIs the rest of the stack needs.

Event *dispatch* lives in :mod:`repro.events.dispatch`; nodes only store
their listeners so the DOM stays independent of the event model.
"""

from repro import perf
from repro.util.errors import DomError

#: HTML elements that never have children (and serialize without end tag).
VOID_ELEMENTS = frozenset(
    ["area", "base", "br", "col", "embed", "hr", "img", "input",
     "link", "meta", "param", "source", "track", "wbr"]
)

#: Elements whose ``value`` property is a real input value. ChromeDriver's
#: text-input bug (paper, Section IV-C) is that it sets ``value`` even on
#: elements outside this set.
VALUE_ELEMENTS = frozenset(["input", "textarea", "select", "option"])


class Node:
    """Base class of all DOM nodes."""

    def __init__(self):
        self.parent = None
        self.children = []
        self.owner_document = None
        self._listeners = {}

    # -- tree structure -------------------------------------------------

    def append_child(self, child):
        """Attach ``child`` as the last child of this node."""
        return self.insert_before(child, None)

    def insert_before(self, child, reference):
        """Insert ``child`` before ``reference`` (or append if None)."""
        if child is self:
            raise DomError("a node cannot be its own child")
        if child.contains(self):
            raise DomError("cannot insert an ancestor as a child")
        if child.parent is not None:
            child.parent.remove_child(child)
        if reference is None:
            index = len(self.children)
        else:
            try:
                index = self.children.index(reference)
            except ValueError:
                raise DomError("reference node is not a child of this node")
        self.children.insert(index, child)
        child.parent = self
        child._adopt(self.owner_document or (self if isinstance(self, Document) else None))
        self._note_mutation("element" if isinstance(child, Element) else "text")
        return child

    def remove_child(self, child):
        """Detach ``child`` from this node."""
        try:
            self.children.remove(child)
        except ValueError:
            raise DomError("node to remove is not a child of this node")
        child.parent = None
        self._note_mutation("element" if isinstance(child, Element) else "text")
        return child

    def replace_child(self, new_child, old_child):
        """Replace ``old_child`` with ``new_child``."""
        if old_child not in self.children:
            raise DomError("node to replace is not a child of this node")
        self.insert_before(new_child, old_child)
        return self.remove_child(old_child)

    def remove(self):
        """Detach this node from its parent (no-op if already detached)."""
        if self.parent is not None:
            self.parent.remove_child(self)

    def contains(self, other):
        """True if ``other`` is this node or a descendant of it."""
        node = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def _adopt(self, document):
        self.owner_document = document
        for child in self.children:
            child._adopt(document)

    def _note_mutation(self, kind):
        """Bump the owning document's generation counters.

        ``kind`` classifies the mutation: ``"element"`` (an Element
        entering or leaving the tree — invalidates the element indexes),
        ``"attribute"``, or ``"text"`` (character data or Text/Comment
        nodes). Result caches use the split counters to stay valid
        across mutations their expressions cannot observe.
        """
        document = self.owner_document
        if document is not None:
            document._bump_generation(kind)

    # -- traversal ------------------------------------------------------

    def descendants(self):
        """Yield all descendants in document (pre-)order."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def ancestors(self):
        """Yield parent, grandparent, ... up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self):
        """Topmost node of the tree this node belongs to."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def child_elements(self):
        """Element children only."""
        return [child for child in self.children if isinstance(child, Element)]

    def index_in_parent(self):
        """Zero-based position among the parent's children (-1 if root)."""
        if self.parent is None:
            return -1
        return self.parent.children.index(self)

    # -- text -----------------------------------------------------------

    @property
    def text_content(self):
        """Concatenated text of all descendant text nodes."""
        parts = []
        for node in self.descendants():
            if isinstance(node, Text):
                parts.append(node.data)
        return "".join(parts)

    @text_content.setter
    def text_content(self, value):
        """Replace all children with a single text node."""
        for child in list(self.children):
            self.remove_child(child)
        if value:
            self.append_child(Text(value))

    # -- event listeners (storage only; dispatch in repro.events) --------

    def add_event_listener(self, event_type, handler, capture=False):
        """Register ``handler`` for ``event_type`` on this node."""
        self._listeners.setdefault((event_type, bool(capture)), []).append(handler)

    def remove_event_listener(self, event_type, handler, capture=False):
        """Unregister a previously added handler (no-op if absent)."""
        handlers = self._listeners.get((event_type, bool(capture)), [])
        if handler in handlers:
            handlers.remove(handler)

    def listeners_for(self, event_type, capture):
        """Handlers registered for a given type and phase (a copy)."""
        handlers = self._listeners.get((event_type, bool(capture)))
        return list(handlers) if handlers else []

    def has_listener(self, event_type):
        """True if any handler (either phase) is registered for the type."""
        return bool(
            self._listeners.get((event_type, False))
            or self._listeners.get((event_type, True))
        )


class _CharacterData(Node):
    """Shared ``data`` storage for Text and Comment nodes.

    ``data`` is a property so rewrites count as content mutations and
    invalidate generation-keyed caches (text predicates, resolved
    locators, layout).
    """

    def __init__(self, data=""):
        super().__init__()
        self._data = data

    @property
    def data(self):
        return self._data

    @data.setter
    def data(self, value):
        self._data = value
        self._note_mutation("text")


class Text(_CharacterData):
    """A run of character data."""

    def append_child(self, child):
        raise DomError("text nodes cannot have children")

    def insert_before(self, child, reference):
        raise DomError("text nodes cannot have children")

    def __repr__(self):
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return "Text(%r)" % preview


class Comment(_CharacterData):
    """An HTML comment; inert but preserved through parse/serialize."""

    def append_child(self, child):
        raise DomError("comment nodes cannot have children")

    def insert_before(self, child, reference):
        raise DomError("comment nodes cannot have children")

    def __repr__(self):
        return "Comment(%r)" % (self.data,)


class Element(Node):
    """An HTML element: tag name, attributes, children."""

    def __init__(self, tag, attributes=None):
        super().__init__()
        self.tag = tag.lower()
        self.attributes = dict(attributes or {})
        # The DOM 'value' *property* of form controls diverges from the
        # 'value' attribute once the user types; model them separately.
        self._value = None

    # -- attributes -------------------------------------------------------

    def get_attribute(self, name):
        """Attribute value or None."""
        return self.attributes.get(name)

    def set_attribute(self, name, value):
        """Set an attribute (stringified)."""
        self.attributes[name] = str(value)
        self._note_mutation("attribute")

    def remove_attribute(self, name):
        """Delete an attribute (no-op if absent)."""
        if self.attributes.pop(name, None) is not None:
            self._note_mutation("attribute")

    def has_attribute(self, name):
        """True if the attribute is present (even if empty)."""
        return name in self.attributes

    @property
    def id(self):
        """The ``id`` attribute, or None."""
        return self.attributes.get("id")

    @id.setter
    def id(self, value):
        self.set_attribute("id", value)

    @property
    def name(self):
        """The ``name`` attribute, or None."""
        return self.attributes.get("name")

    @property
    def classes(self):
        """The ``class`` attribute split on whitespace."""
        return (self.attributes.get("class") or "").split()

    # -- form-control value -----------------------------------------------

    @property
    def value(self):
        """Current value of a form control.

        Reflects the ``value`` attribute until the property is written
        (by the user typing or by a script), as in real browsers.
        """
        if self._value is not None:
            return self._value
        return self.attributes.get("value", "")

    @value.setter
    def value(self, text):
        self._value = str(text)

    def supports_value(self):
        """True if this element kind has a meaningful ``value`` property."""
        return self.tag in VALUE_ELEMENTS

    # -- content model ------------------------------------------------------

    def append_child(self, child):
        if self.tag in VOID_ELEMENTS:
            raise DomError("<%s> is a void element and cannot have children" % self.tag)
        return super().append_child(child)

    def insert_before(self, child, reference):
        if self.tag in VOID_ELEMENTS:
            raise DomError("<%s> is a void element and cannot have children" % self.tag)
        return super().insert_before(child, reference)

    @property
    def is_content_editable(self):
        """True if this element or an ancestor sets contenteditable."""
        node = self
        while isinstance(node, Element):
            flag = node.attributes.get("contenteditable")
            if flag is not None:
                return flag.lower() not in ("false",)
            node = node.parent
        return False

    def is_focusable(self):
        """True if the element can receive keyboard focus."""
        return (
            self.tag in ("input", "textarea", "select", "button", "a")
            or self.is_content_editable
            or self.has_attribute("tabindex")
        )

    # -- queries ------------------------------------------------------------

    def get_elements_by_tag(self, tag):
        """All descendant elements with the given tag (lowercase match)."""
        tag = tag.lower()
        return [
            node for node in self.descendants()
            if isinstance(node, Element) and node.tag == tag
        ]

    def find_first(self, predicate):
        """First descendant element satisfying ``predicate``, or None."""
        for node in self.descendants():
            if isinstance(node, Element) and predicate(node):
                return node
        return None

    def __repr__(self):
        ident = ""
        if self.id:
            ident = " id=%r" % self.id
        return "Element(<%s>%s, %d children)" % (self.tag, ident, len(self.children))


class _DocumentIndexes:
    """Element indexes for one structure generation of a document."""

    __slots__ = ("generation", "order", "by_tag", "elements")

    def __init__(self, generation, order, by_tag, elements):
        self.generation = generation
        #: id(element) -> document-order position
        self.order = order
        #: tag -> [elements in document order]
        self.by_tag = by_tag
        #: every element, in document order
        self.elements = elements


class Document(Node):
    """The root of a DOM tree; also the element factory.

    The document tracks mutation generations by kind: ``generation``
    bumps on *every* mutation; ``structure_generation`` only when an
    Element enters or leaves the tree (invalidating the lazily built
    element indexes — document order and tag map — that the XPath fast
    path queries instead of re-walking the tree);
    ``attribute_generation`` and ``text_generation`` on attribute and
    character-data changes. Result caches key on the counters their
    expressions can actually observe, so e.g. a memoized id-locator
    survives a burst of keystrokes that only touches text.
    """

    def __init__(self, url=""):
        super().__init__()
        self.url = url
        self.owner_document = self
        self._generation = 0
        self._structure_generation = 0
        self._attribute_generation = 0
        self._text_generation = 0
        self._indexes = None

    # -- mutation tracking ----------------------------------------------

    @property
    def generation(self):
        """Counter bumped by every mutation anywhere in the tree."""
        return self._generation

    @property
    def structure_generation(self):
        """Counter bumped only by element insertion/removal."""
        return self._structure_generation

    @property
    def attribute_generation(self):
        """Counter bumped only by attribute changes."""
        return self._attribute_generation

    @property
    def text_generation(self):
        """Counter bumped only by character-data (text/comment) changes."""
        return self._text_generation

    def _bump_generation(self, kind):
        self._generation += 1
        if kind == "element":
            self._structure_generation += 1
        elif kind == "attribute":
            self._attribute_generation += 1
        else:
            self._text_generation += 1

    def query_indexes(self):
        """Generation-valid element indexes, or None when the fast path
        is disabled (callers then fall back to tree traversal)."""
        if not perf.fast_path_enabled():
            return None
        cached = self._indexes
        if cached is not None and cached.generation == self._structure_generation:
            perf.record("dom.index", hit=True)
            return cached
        perf.record("dom.index", hit=False)
        order = {}
        by_tag = {}
        elements = []
        for node in self.descendants():
            if not isinstance(node, Element):
                continue
            order[id(node)] = len(elements)
            elements.append(node)
            by_tag.setdefault(node.tag, []).append(node)
        self._indexes = _DocumentIndexes(
            self._structure_generation, order, by_tag, elements
        )
        return self._indexes

    # -- factory ------------------------------------------------------------

    def create_element(self, tag, attributes=None):
        """Create a detached element owned by this document."""
        element = Element(tag, attributes)
        element.owner_document = self
        return element

    def create_text_node(self, data):
        """Create a detached text node owned by this document."""
        text = Text(data)
        text.owner_document = self
        return text

    # -- well-known elements --------------------------------------------

    @property
    def document_element(self):
        """The <html> element, or the first element child."""
        for child in self.child_elements():
            if child.tag == "html":
                return child
        elements = self.child_elements()
        return elements[0] if elements else None

    @property
    def body(self):
        """The <body> element, or None."""
        html = self.document_element
        if html is None:
            return None
        if html.tag == "body":
            return html
        for child in html.child_elements():
            if child.tag == "body":
                return child
        return None

    @property
    def head(self):
        """The <head> element, or None."""
        html = self.document_element
        if html is None:
            return None
        for child in html.child_elements():
            if child.tag == "head":
                return child
        return None

    @property
    def title(self):
        """Text of the <title> element, or empty string."""
        head = self.head
        if head is None:
            return ""
        for node in head.descendants():
            if isinstance(node, Element) and node.tag == "title":
                return node.text_content
        return ""

    # -- queries ------------------------------------------------------------

    def get_element_by_id(self, element_id):
        """First element with the given id, or None."""
        for node in self.descendants():
            if isinstance(node, Element) and node.id == element_id:
                return node
        return None

    def get_elements_by_tag(self, tag):
        """All elements with the given tag, in document order."""
        tag = tag.lower()
        indexes = self.query_indexes()
        if indexes is not None:
            return list(indexes.by_tag.get(tag, ()))
        return [
            node for node in self.descendants()
            if isinstance(node, Element) and node.tag == tag
        ]

    def all_elements(self):
        """Every element in the document, in document order."""
        indexes = self.query_indexes()
        if indexes is not None:
            return list(indexes.elements)
        return [node for node in self.descendants() if isinstance(node, Element)]

    def __repr__(self):
        return "Document(url=%r, title=%r)" % (self.url, self.title)
