"""Hand-written HTML parser.

Tokenizes markup into tags/text/comments and builds a DOM tree. Supports
the HTML subset the simulated web applications use: nested elements,
quoted/unquoted/bare attributes, void elements, raw-text elements
(``script``, ``style``, ``textarea``, ``title``), comments, doctype, and
the common character entities. Mis-nested end tags are recovered from by
popping to the nearest matching open element, as browsers do.
"""

from repro.dom.node import Document, Element, Text, Comment, VOID_ELEMENTS

#: Content of these elements is raw text: markup inside is not parsed.
RAW_TEXT_ELEMENTS = frozenset(["script", "style", "textarea", "title"])

#: An opening tag in the key set implicitly closes an open tag in the
#: value set (a small practical subset of the HTML5 rules).
_IMPLIED_END = {
    "li": frozenset(["li"]),
    "tr": frozenset(["tr", "td", "th"]),
    "td": frozenset(["td", "th"]),
    "th": frozenset(["td", "th"]),
    "option": frozenset(["option"]),
    "p": frozenset(["p"]),
}

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
}


def decode_entities(text):
    """Decode the supported character entities in ``text``."""
    if "&" not in text:
        return text
    out = []
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char != "&":
            out.append(char)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1 or end - i > 10:
            out.append(char)
            i += 1
            continue
        body = text[i + 1:end]
        if body.startswith("#x") or body.startswith("#X"):
            try:
                out.append(chr(int(body[2:], 16)))
                i = end + 1
                continue
            except ValueError:
                pass
        elif body.startswith("#"):
            try:
                out.append(chr(int(body[1:])))
                i = end + 1
                continue
            except ValueError:
                pass
        elif body in _ENTITIES:
            out.append(_ENTITIES[body])
            i = end + 1
            continue
        out.append(char)
        i += 1
    return "".join(out)


class _Tokenizer:
    """Streams (kind, payload) tokens out of an HTML string."""

    def __init__(self, markup):
        self.markup = markup
        self.pos = 0
        self.length = len(markup)

    def tokens(self):
        """Yield ('text', str) | ('comment', str) | ('doctype', str) |
        ('start', (name, attrs, self_closing)) | ('end', name)."""
        while self.pos < self.length:
            lt = self.markup.find("<", self.pos)
            if lt == -1:
                yield ("text", self.markup[self.pos:])
                self.pos = self.length
                return
            if lt > self.pos:
                yield ("text", self.markup[self.pos:lt])
                self.pos = lt
            token = self._read_tag()
            if token is not None:
                yield token

    def _read_tag(self):
        markup = self.markup
        pos = self.pos
        if markup.startswith("<!--", pos):
            end = markup.find("-->", pos + 4)
            if end == -1:
                end = self.length
                self.pos = end
                return ("comment", markup[pos + 4:end])
            self.pos = end + 3
            return ("comment", markup[pos + 4:end])
        if markup.startswith("<!", pos):
            end = markup.find(">", pos)
            end = self.length if end == -1 else end
            self.pos = min(end + 1, self.length)
            return ("doctype", markup[pos + 2:end])
        if markup.startswith("</", pos):
            end = markup.find(">", pos)
            if end == -1:
                self.pos = self.length
                return None
            name = markup[pos + 2:end].strip().lower()
            self.pos = end + 1
            return ("end", name)
        # Start tag. A lone '<' not followed by a letter is literal text.
        if pos + 1 >= self.length or not markup[pos + 1].isalpha():
            self.pos = pos + 1
            return ("text", "<")
        end = markup.find(">", pos)
        if end == -1:
            self.pos = self.length
            return None
        body = markup[pos + 1:end]
        self.pos = end + 1
        self_closing = body.endswith("/")
        if self_closing:
            body = body[:-1]
        name, attrs = self._parse_tag_body(body)
        return ("start", (name, attrs, self_closing))

    @staticmethod
    def _parse_tag_body(body):
        """Split ``div id="x" disabled`` into (name, attrs)."""
        i = 0
        length = len(body)
        while i < length and not body[i].isspace():
            i += 1
        name = body[:i].lower()
        attrs = {}
        while i < length:
            while i < length and body[i].isspace():
                i += 1
            if i >= length:
                break
            start = i
            while i < length and body[i] not in "=" and not body[i].isspace():
                i += 1
            attr_name = body[start:i].lower()
            if not attr_name:
                i += 1
                continue
            while i < length and body[i].isspace():
                i += 1
            if i < length and body[i] == "=":
                i += 1
                while i < length and body[i].isspace():
                    i += 1
                if i < length and body[i] in "\"'":
                    quote = body[i]
                    i += 1
                    start = i
                    while i < length and body[i] != quote:
                        i += 1
                    value = body[start:i]
                    i += 1
                else:
                    start = i
                    while i < length and not body[i].isspace():
                        i += 1
                    value = body[start:i]
                attrs[attr_name] = decode_entities(value)
            else:
                attrs[attr_name] = ""
        return name, attrs


def _raw_text_end(markup, pos, tag):
    """Find the closing ``</tag>`` for a raw-text element."""
    needle = "</" + tag
    lower = markup.lower()
    search = pos
    while True:
        idx = lower.find(needle, search)
        if idx == -1:
            return len(markup), len(markup)
        after = idx + len(needle)
        # must be followed by whitespace or '>'
        if after < len(markup) and markup[after] not in "> \t\n":
            search = after
            continue
        close = markup.find(">", after)
        close = len(markup) if close == -1 else close
        return idx, close + 1


def parse_html(markup, url=""):
    """Parse a complete HTML document and return a :class:`Document`.

    Ensures an <html>/<body> skeleton exists so callers can always rely
    on ``document.body``.
    """
    document = Document(url=url)
    _build_tree(markup, document)
    _ensure_skeleton(document)
    return document


def parse_fragment(markup, document=None):
    """Parse a fragment; returns a list of detached top-level nodes."""
    owner = document if document is not None else Document()
    holder = owner.create_element("template-holder")
    _build_tree(markup, holder)
    nodes = list(holder.children)
    for node in nodes:
        holder.remove_child(node)
    return nodes


def _build_tree(markup, root):
    tokenizer = _Tokenizer(markup)
    stack = [root]

    tokens = tokenizer.tokens()
    for kind, payload in tokens:
        top = stack[-1]
        if kind == "text":
            text = decode_entities(payload)
            if text.strip() or (text and isinstance(top, Element)
                                and top.tag in ("pre", "textarea")):
                top.append_child(Text(text))
            continue
        if kind == "comment":
            top.append_child(Comment(payload))
            continue
        if kind == "doctype":
            continue
        if kind == "start":
            name, attrs, self_closing = payload
            implied = _IMPLIED_END.get(name)
            if implied:
                while (
                    isinstance(stack[-1], Element)
                    and stack[-1].tag in implied
                    and len(stack) > 1
                ):
                    stack.pop()
            element = Element(name, attrs)
            stack[-1].append_child(element)
            if name in RAW_TEXT_ELEMENTS and not self_closing:
                raw_start = tokenizer.pos
                raw_end, resume = _raw_text_end(markup, raw_start, name)
                raw = markup[raw_start:raw_end]
                if raw:
                    element.append_child(Text(raw))
                tokenizer.pos = resume
                continue
            if not self_closing and name not in VOID_ELEMENTS:
                stack.append(element)
            continue
        if kind == "end":
            name = payload
            if name in VOID_ELEMENTS:
                continue
            # Pop to the nearest matching open element (recovery).
            for depth in range(len(stack) - 1, 0, -1):
                node = stack[depth]
                if isinstance(node, Element) and node.tag == name:
                    del stack[depth:]
                    break


def _ensure_skeleton(document):
    html = None
    for child in document.child_elements():
        if child.tag == "html":
            html = child
            break
    if html is None:
        html = document.create_element("html")
        strays = list(document.children)
        for stray in strays:
            document.remove_child(stray)
        document.append_child(html)
        for stray in strays:
            html.append_child(stray)
    body = None
    head = None
    for child in html.child_elements():
        if child.tag == "body":
            body = child
        elif child.tag == "head":
            head = child
    if head is None:
        head = document.create_element("head")
        html.insert_before(head, html.children[0] if html.children else None)
    if body is None:
        body = document.create_element("body")
        strays = [
            child for child in list(html.children)
            if child is not head and not (isinstance(child, Element) and child.tag == "body")
        ]
        html.append_child(body)
        for stray in strays:
            html.remove_child(stray)
            body.append_child(stray)
