"""DOM → HTML serialization.

Used by AUsER snapshots (the "snapshot of the final web page" attached to
a user-experience report) and by tests that round-trip documents.
"""

from repro.dom.node import Document, Element, Text, Comment, VOID_ELEMENTS
from repro.dom.parser import RAW_TEXT_ELEMENTS


def _escape_text(text):
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(text):
    return _escape_text(text).replace('"', "&quot;")


def serialize(node):
    """Serialize a node (and subtree) to compact HTML."""
    parts = []
    _serialize_into(node, parts)
    return "".join(parts)


def _serialize_into(node, parts):
    if isinstance(node, Document):
        for child in node.children:
            _serialize_into(child, parts)
        return
    if isinstance(node, Text):
        parent = node.parent
        if isinstance(parent, Element) and parent.tag in RAW_TEXT_ELEMENTS:
            parts.append(node.data)
        else:
            parts.append(_escape_text(node.data))
        return
    if isinstance(node, Comment):
        parts.append("<!--%s-->" % node.data)
        return
    if isinstance(node, Element):
        parts.append("<%s" % node.tag)
        for name, value in node.attributes.items():
            if value == "":
                parts.append(" %s" % name)
            else:
                parts.append(' %s="%s"' % (name, _escape_attr(value)))
        parts.append(">")
        if node.tag in VOID_ELEMENTS:
            return
        for child in node.children:
            _serialize_into(child, parts)
        parts.append("</%s>" % node.tag)
        return
    raise TypeError("cannot serialize %r" % (node,))


def serialize_pretty(node, indent="  "):
    """Serialize with one element per line, indented — for human reading."""
    lines = []
    _pretty_into(node, lines, 0, indent)
    return "\n".join(lines)


def _pretty_into(node, lines, depth, indent):
    pad = indent * depth
    if isinstance(node, Document):
        for child in node.children:
            _pretty_into(child, lines, depth, indent)
        return
    if isinstance(node, Text):
        stripped = node.data.strip()
        if stripped:
            lines.append(pad + _escape_text(stripped))
        return
    if isinstance(node, Comment):
        lines.append(pad + "<!--%s-->" % node.data)
        return
    if isinstance(node, Element):
        attrs = []
        for name, value in node.attributes.items():
            if value == "":
                attrs.append(" %s" % name)
            else:
                attrs.append(' %s="%s"' % (name, _escape_attr(value)))
        open_tag = "<%s%s>" % (node.tag, "".join(attrs))
        if node.tag in VOID_ELEMENTS or not node.children:
            if node.tag in VOID_ELEMENTS:
                lines.append(pad + open_tag)
            else:
                lines.append(pad + open_tag + "</%s>" % node.tag)
            return
        only_text = all(isinstance(child, Text) for child in node.children)
        if only_text:
            text = "".join(_escape_text(child.data) for child in node.children)
            lines.append(pad + open_tag + text.strip() + "</%s>" % node.tag)
            return
        lines.append(pad + open_tag)
        for child in node.children:
            _pretty_into(child, lines, depth + 1, indent)
        lines.append(pad + "</%s>" % node.tag)
