"""Registry mapping script names to callables.

An application registers its client-side code under dotted names
(``sites.editor``); its HTML references them with
``<script data-script="sites.editor"></script>``. The browser resolves
the reference at load time and runs the callable with the page's
:class:`~repro.scripting.context.Window`.
"""

from repro.util.errors import ScriptError


class ScriptRegistry:
    """Name → script-callable table, shared browser-wide."""

    def __init__(self):
        self._scripts = {}

    def register(self, name, script=None):
        """Register a script; usable directly or as a decorator.

        >>> registry = ScriptRegistry()
        >>> @registry.register("app.main")
        ... def main(window): pass
        """
        if script is None:
            def decorator(fn):
                self._scripts[name] = fn
                return fn
            return decorator
        self._scripts[name] = script
        return script

    def get(self, name):
        """Look up a script; raises ScriptError for unknown names."""
        try:
            return self._scripts[name]
        except KeyError:
            raise ScriptError("no script registered under %r" % name)

    def has(self, name):
        return name in self._scripts

    def names(self):
        return sorted(self._scripts)

    def merge(self, other):
        """Fold another registry's scripts into this one."""
        self._scripts.update(other._scripts)
        return self
