"""The ``window`` object handed to page scripts.

Bundles everything client-side code touches: the document, the global
variable environment, timers (``set_timeout``), XHR construction,
navigation, and a console. Script errors raised inside timer callbacks
and event handlers are captured on the console rather than crashing the
browser — the WebErr oracle inspects ``console.errors`` to decide
whether an injected human error exposed a bug.
"""

from repro import chaos
from repro.net.ajax import XmlHttpRequest
from repro.scripting.environment import JSEnvironment
from repro.util.errors import (
    InjectedScriptError,
    NavigationError,
    ScriptError,
)


class Console:
    """Collects log lines and uncaught script errors for one page.

    ``sink`` is an optional browser-level collector: consoles die with
    their page, so the browser keeps a session-wide error log that
    outlives navigations (the WebErr oracle reads it).
    """

    def __init__(self, sink=None):
        self.messages = []
        self.errors = []
        self._sink = sink

    def log(self, message):
        self.messages.append(str(message))

    def error(self, error):
        """Record an uncaught ScriptError (or wrap a message)."""
        if not isinstance(error, ScriptError):
            error = ScriptError(str(error))
        self.errors.append(error)
        if self._sink is not None:
            self._sink(error)

    @property
    def has_errors(self):
        return bool(self.errors)

    def __repr__(self):
        return "Console(%d messages, %d errors)" % (
            len(self.messages), len(self.errors),
        )


class Window:
    """Per-page script context."""

    def __init__(self, document, event_loop, network=None, navigate=None,
                 error_sink=None, focus_element=None, random_source=None,
                 time_source=None):
        self.document = document
        self.event_loop = event_loop
        self.network = network
        self.env = JSEnvironment()
        self.console = Console(sink=error_sink)
        self._navigate = navigate
        self._focus_element = focus_element
        self._random_source = random_source
        self._time_source = time_source
        self._timers = []

    # -- timers -------------------------------------------------------------

    def set_timeout(self, delay_ms, callback):
        """Run ``callback`` after ``delay_ms`` simulated milliseconds.

        Errors raised by the callback land on the console, as uncaught
        asynchronous JS errors do.
        """
        def guarded():
            injector = chaos.current()
            if (injector is not None and injector.script_active
                    and injector.fault("script", "timer_error",
                                       "script_error_rate") is not None):
                self.console.error(InjectedScriptError(
                    "injected timer-callback exception"))
                return
            try:
                callback()
            except ScriptError as error:
                self.console.error(error)
            except Exception as error:
                self.console.error(ScriptError(str(error), cause=error))

        task = self.event_loop.call_later(delay_ms, guarded)
        self._timers.append(task)
        return task

    def clear_timeout(self, task):
        task.cancel()

    def cancel_all_timers(self):
        """Called on page unload so stale callbacks never fire."""
        for task in self._timers:
            task.cancel()
        self._timers = []

    # -- network ------------------------------------------------------------

    def xhr(self):
        """Create an XMLHttpRequest bound to the page's network."""
        if self.network is None:
            raise ScriptError("this page has no network access")
        return XmlHttpRequest(self.network)

    # -- navigation -----------------------------------------------------------

    @property
    def location(self):
        return self.document.url

    def navigate(self, url):
        """Ask the browser to load a new page in this tab.

        A navigation that fails to fetch (e.g. under injected network
        faults) leaves the current page in place and lands on the
        console — script-initiated navigation failures are page-level
        errors, not browser crashes.
        """
        if self._navigate is None:
            raise ScriptError("navigation is not available in this context")
        try:
            self._navigate(url)
        except NavigationError as error:
            self.console.error(ScriptError(str(error), cause=error))

    # -- DOM sugar ------------------------------------------------------------

    # -- nondeterminism (``Math.random()`` / ``Date.now()``) ---------------

    def random(self):
        """Page-script randomness; recordable and replayable."""
        if self._random_source is not None:
            return self._random_source()
        raise ScriptError("this page has no randomness source")

    def now(self):
        """Page-script clock; recordable and replayable."""
        if self._time_source is not None:
            return self._time_source()
        return self.event_loop.clock.now()

    def focus(self, element):
        """Move keyboard focus (``element.focus()`` in JS)."""
        if self._focus_element is not None:
            self._focus_element(element)

    def get_element_by_id(self, element_id):
        return self.document.get_element_by_id(element_id)

    def create_element(self, tag, attributes=None):
        return self.document.create_element(tag, attributes)

    def __repr__(self):
        return "Window(url=%r)" % self.document.url
