"""Page-script runtime.

Simulated web applications ship "client-side JavaScript" as Python
callables registered in a :class:`ScriptRegistry` and referenced from
HTML via ``<script data-script="name">``. Each page gets a
:class:`Window` (globals, timers, XHR, console) whose variable namespace
has JavaScript semantics: reading an unassigned name raises
``JSReferenceError`` — the bug class WebErr exposed in Google Sites.
"""

from repro.scripting.environment import JSEnvironment
from repro.scripting.context import Window, Console
from repro.scripting.registry import ScriptRegistry

__all__ = ["JSEnvironment", "Window", "Console", "ScriptRegistry"]
