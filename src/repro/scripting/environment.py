"""JavaScript-like variable namespace.

``JSEnvironment`` is the globals object of a page. Attribute reads of
names that were never assigned raise :class:`JSReferenceError`, exactly
like ``ReferenceError`` in JavaScript. This is the semantic hook for the
paper's Google Sites bug: a handler that runs before asynchronous
initialization assigned ``editorState`` blows up with a reference error.
"""

from repro.util.errors import JSReferenceError


class JSEnvironment:
    """Attribute-style namespace with ReferenceError-on-undefined."""

    def __init__(self, **initial):
        object.__setattr__(self, "_vars", dict(initial))

    def __getattr__(self, name):
        variables = object.__getattribute__(self, "_vars")
        if name in variables:
            return variables[name]
        raise JSReferenceError("ReferenceError: %s is not defined" % name)

    def __setattr__(self, name, value):
        self._vars[name] = value

    def __delattr__(self, name):
        variables = self._vars
        if name not in variables:
            raise JSReferenceError("ReferenceError: %s is not defined" % name)
        del variables[name]

    def __contains__(self, name):
        return name in self._vars

    def get(self, name, default=None):
        """Non-throwing read (like ``typeof x !== 'undefined' ? x : d``)."""
        return self._vars.get(name, default)

    def defined(self, name):
        """True if the variable has been assigned."""
        return name in self._vars

    def names(self):
        """All defined variable names."""
        return sorted(self._vars)

    def __repr__(self):
        return "JSEnvironment(%s)" % ", ".join(self.names())
