"""Yahoo!-style portal: classic form authentication.

The one Table II scenario where Selenium IDE is also Complete: the whole
interaction is typing into regular form controls and clicking a submit
button — exactly the surface DOM-level recorders were built for.
"""

from repro.apps.framework import WebApplication
from repro.net.http import HttpResponse

_HEADLINES = [
    "Markets rally on cloud computing optimism",
    "Local team wins championship",
    "New browser engine promises faster pages",
]


class PortalApplication(WebApplication):
    """Login form + personalized portal home."""

    host = "portal.example.com"

    def configure(self):
        self.accounts = {"jane": "s3cret", "bob": "hunter2"}
        self.login_attempts = []
        server = self.server
        server.add_route("/", self._login_view)
        server.add_route("/auth", self._auth, method="POST")
        server.add_route("/home/*", self._home_view)

    # -- server side ------------------------------------------------------

    def _login_view(self, request, error=""):
        banner = '<div class="error">%s</div>' % error if error else ""
        return """<html><head><title>Portal - Sign in</title></head><body>
            <h1>Portal</h1>%s
            <form action="/auth" method="POST">
              <div>Username <input type="text" name="login"></div>
              <div>Password <input type="password" name="passwd"></div>
              <input type="submit" value="Sign In">
            </form>
            </body></html>""" % banner

    def _auth(self, request):
        fields = {}
        for pair in request.body.split("&"):
            if "=" in pair:
                key, value = pair.split("=", 1)
                fields[key] = value
        user = fields.get("login", "")
        self.login_attempts.append(user)
        if self.accounts.get(user) == fields.get("passwd"):
            return self._render_home(user)
        return self._login_view(request, error="Invalid id or password.")

    def _home_view(self, request):
        user = request.path.rsplit("/", 1)[-1]
        return self._render_home(user)

    def _render_home(self, user):
        items = "".join("<li>%s</li>" % headline for headline in _HEADLINES)
        return HttpResponse.html(
            """<html><head><title>Portal - Home</title></head><body>
            <div id="greeting">Welcome, %s</div>
            <ul class="news">%s</ul>
            </body></html>""" % (user, items)
        )
