"""Dashboard application: widgets in iframes.

Exercises the paper's third replay challenge (Section IV-C, iframes) on
a realistic application rather than a synthetic page:

- the **news widget** is a ``src`` iframe (own document, own
  ChromeDriver client) with a Refresh button that reloads headlines
  over XHR;
- the **notes widget** is a ``src``-less iframe — Chrome loads no
  client for it, so replay needs WaRR's parent-client fix — containing
  a contenteditable pad;
- the **chart widget** is draggable in the main document.

A session touching all three widgets produces ``switchframe`` commands
into a child frame, back to ``default``, and a drag — the full frame
choreography of Section IV-C.
"""

from repro.apps.framework import WebApplication
from repro.net.http import HttpResponse


class DashboardApplication(WebApplication):
    """A portal dashboard with three embedded widgets."""

    host = "dashboard.example.com"

    def configure(self):
        self.headlines = ["Markets open higher", "Rain expected"]
        self.refresh_count = 0
        self.saved_notes = []
        server = self.server
        server.add_route("/", self._main_view)
        server.add_route("/widget/news", self._news_widget)
        server.add_route("/headlines", self._headlines_json)
        server.add_route("/notes", self._save_notes, method="POST")
        self.scripts.register("dashboard.news", _news_script)
        self.scripts.register("dashboard.main", _main_script)

    # -- server side ------------------------------------------------------

    def _main_view(self, request):
        return """<html><head><title>Dashboard</title></head><body>
            <h1>My Dashboard</h1>
            <iframe id="news" src="/widget/news"></iframe>
            <iframe id="notes">
              <div class="notepad">
                <div id="pad" contenteditable></div>
                <div class="savenote">Save note</div>
              </div>
            </iframe>
            <div id="chart" class="widget">[chart]</div>
            <script data-script="dashboard.main"></script>
            </body></html>"""

    def _news_widget(self, request):
        items = "".join("<li>%s</li>" % headline
                        for headline in self.headlines)
        return """<html><head><title>News</title></head><body>
            <ul id="headlines">%s</ul>
            <button id="refresh">Refresh</button>
            <script data-script="dashboard.news"></script>
            </body></html>""" % items

    def _headlines_json(self, request):
        self.refresh_count += 1
        fresh = "Update %d: all widgets nominal" % self.refresh_count
        return HttpResponse.json(fresh)

    def _save_notes(self, request):
        self.saved_notes.append(request.body)
        return HttpResponse.json('{"saved": true}')


def _news_script(window):
    """The news widget's client code (runs inside the iframe)."""
    document = window.document
    window.env.refreshes = 0
    button = document.get_element_by_id("refresh")
    headlines = document.get_element_by_id("headlines")

    def on_refresh(event):
        window.env.refreshes = window.env.refreshes + 1
        request = window.xhr()
        request.open("GET", "http://%s/headlines" % DashboardApplication.host)

        def loaded(response):
            item = document.create_element("li")
            item.text_content = response.response_text.strip('"')
            headlines.append_child(item)

        request.onload = loaded
        request.send()

    button.add_event_listener("click", on_refresh)


def _main_script(window):
    """The main document's client code (notes live here: the iframe has
    no src, so its content is part of the parent DOM)."""
    document = window.document
    pad = document.get_element_by_id("pad")
    save = document.body.find_first(
        lambda el: el.tag == "div" and "savenote" in el.classes)

    def on_save(event):
        request = window.xhr()
        request.open("POST", "http://%s/notes" % DashboardApplication.host)
        request.send("note=%s" % pad.text_content)

    if save is not None:
        save.add_event_listener("click", on_save)
