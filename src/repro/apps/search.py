"""Three web search engines with different typo-correction power.

Table I of the paper measures how many injected query typos Google, Bing
and Yahoo! detect *and fix* (100% / 59.1% / 84.4%). The engines differ
in the sophistication of their spell-correction models, and these clones
reproduce the mechanisms behind that ordering:

- **Google** corrects against a *query-log language model*: it knows
  what whole queries people actually issue and snaps a near-miss query
  to the closest frequent one — catching real-word errors too.
- **Yahoo!** runs a word-unigram checker: any word outside its
  dictionary is replaced by the closest dictionary word (frequency-
  weighted). It misses typos that happen to form another real word.
- **Bing** (as of 2011) is the most conservative: non-words only, single
  edit distance, a unique candidate required, and no correction for
  short words — ambiguity or brevity means no fix.

When a correction fires, the results page carries a
``<div id="corrected">`` banner with the corrected query, which is what
the Table I harness reads back.
"""

from repro.apps.framework import WebApplication
from repro.util.text import edit_distance
from repro.workloads.queries import FREQUENT_QUERIES, query_vocabulary, word_frequencies


class WordSpellChecker:
    """Dictionary-based, word-at-a-time spell checker.

    ``transpositions`` selects Damerau-Levenshtein distance (adjacent
    swaps count as one edit) — the difference between a checker that
    catches "youtueb" and one that does not.
    """

    def __init__(self, dictionary, frequencies, max_distance=1,
                 min_word_length=0, require_unique=False,
                 transpositions=True):
        self.dictionary = set(dictionary)
        self.frequencies = dict(frequencies)
        self.max_distance = max_distance
        self.min_word_length = min_word_length
        self.require_unique = require_unique
        self.transpositions = transpositions

    def correct(self, query):
        """Return the corrected query (possibly unchanged)."""
        corrected_words = [self._correct_word(word) for word in query.split()]
        return " ".join(corrected_words)

    def _correct_word(self, word):
        lowered = word.lower()
        if lowered in self.dictionary:
            # A real word: a unigram checker cannot see anything wrong.
            return word
        if len(lowered) < self.min_word_length:
            return word
        candidates = self._candidates(lowered)
        if not candidates:
            return word
        if self.require_unique and len(candidates) > 1:
            best = candidates[0][0]
            runner_up = candidates[1][0]
            if best == runner_up:
                # Tied distance: ambiguous, refuse to guess.
                return word
        return candidates[0][1]

    def _candidates(self, word):
        found = []
        for distance in range(1, self.max_distance + 1):
            for entry in self.dictionary:
                if edit_distance(word, entry, maximum=distance,
                                 transpositions=self.transpositions) <= distance:
                    found.append((distance, entry))
            if found:
                break
        # Rank by distance, then by corpus frequency (descending).
        found.sort(key=lambda item: (item[0], -self.frequencies.get(item[1], 0),
                                     item[1]))
        return found


class QueryLogSpellChecker:
    """Whole-query language model: snap to the nearest known query.

    This is the Google-style checker: it corrects real-word errors and
    cross-word slips because it compares against complete queries users
    actually issue, not isolated words.
    """

    def __init__(self, query_log, max_distance=2):
        self.query_log = list(query_log)
        self.max_distance = max_distance
        self._word_checker = WordSpellChecker(
            query_vocabulary(), word_frequencies(), max_distance=2)

    def correct(self, query):
        if query in self.query_log:
            return query
        best = None
        best_distance = self.max_distance + 1
        for known in self.query_log:
            distance = edit_distance(query, known, maximum=self.max_distance,
                                     transpositions=True)
            if distance < best_distance:
                best = known
                best_distance = distance
        if best is not None:
            return best
        # Fall back to per-word correction for out-of-log queries.
        return self._word_checker.correct(query)


class SearchEngineApplication(WebApplication):
    """Shared search UI: query form + results page with correction banner."""

    engine_name = None

    def configure(self):
        self.queries_received = []
        self.checker = self.make_checker()
        server = self.server
        server.add_route("/", self._home)
        server.add_route("/search", self._search)

    def make_checker(self):
        raise NotImplementedError

    def _home(self, request):
        return """<html><head><title>%s</title></head><body>
            <div class="logo">%s</div>
            <form action="/search" method="GET">
              <input type="text" name="q">
              <input type="submit" value="Search">
            </form>
            </body></html>""" % (self.engine_name, self.engine_name)

    def _search(self, request):
        query = request.query.get("q", "")
        self.queries_received.append(query)
        corrected = self.checker.correct(query)
        banner = ""
        if corrected != query:
            banner = ('<div id="corrected">Showing results for '
                      "<b>%s</b></div>" % corrected)
        results = "".join(
            "<li>Result %d for %s</li>" % (index + 1, corrected)
            for index in range(3)
        )
        return """<html><head><title>%s - %s</title></head><body>
            <div class="logo">%s</div>%s
            <ol id="results">%s</ol>
            </body></html>""" % (query, self.engine_name, self.engine_name,
                                 banner, results)

    def correction_shown(self, document):
        """Read the correction banner off a results page (or None)."""
        banner = document.get_element_by_id("corrected")
        if banner is None:
            return None
        return banner.text_content.replace("Showing results for ", "").strip()


class GoogleSearchApplication(SearchEngineApplication):
    host = "www.google.example"
    engine_name = "Google"

    def make_checker(self):
        return QueryLogSpellChecker(FREQUENT_QUERIES, max_distance=2)


class YahooSearchApplication(SearchEngineApplication):
    host = "search.yahoo.example"
    engine_name = "Yahoo!"

    def make_checker(self):
        # Damerau distance 1, unique candidate required, words >= 4
        # chars: calibrated to the paper's 84.4% detection rate.
        return WordSpellChecker(query_vocabulary(), word_frequencies(),
                                max_distance=1, min_word_length=4,
                                require_unique=True, transpositions=True)


class BingSearchApplication(SearchEngineApplication):
    host = "www.bing.example"
    engine_name = "Bing"

    def make_checker(self):
        # Plain Levenshtein (no transposition support), unique candidate
        # required, words >= 5 chars: calibrated to the paper's 59.1%.
        return WordSpellChecker(query_vocabulary(), word_frequencies(),
                                max_distance=1, min_word_length=5,
                                require_unique=True, transpositions=False)
