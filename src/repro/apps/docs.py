"""Google Docs clone: a spreadsheet editor.

The paper singles out Google Docs for needing *double clicks* (a feature
stock ChromeDriver lacked and WaRR added) and rich editing. This clone
implements the spreadsheet interaction model:

- double-click a cell to start editing it (the handler makes the cell
  contenteditable and focuses it);
- type to change its contents;
- single-click elsewhere to commit the edit back to the sheet model;
- drag across cells to select a range, and drag the floating chart
  widget to move it;
- click Save to push the sheet model to the server over XHR.
"""

from repro.apps.framework import WebApplication
from repro.net.http import HttpResponse

ROWS = 4
COLUMNS = 3


class DocsApplication(WebApplication):
    """Spreadsheet grid with double-click editing."""

    host = "docs.example.com"

    def configure(self):
        self.sheets = {
            "budget": {(0, 0): "Item", (0, 1): "Cost", (1, 0): "Laptop",
                       (1, 1): "1200"},
        }
        self.save_count = 0
        server = self.server
        server.add_route("/sheet/*", self._sheet_view)
        server.add_route("/save", self._save, method="POST")
        self.scripts.register("docs.sheet", _sheet_script)

    # -- server side ------------------------------------------------------

    def _sheet_view(self, request):
        name = request.path.rsplit("/", 1)[-1]
        if name not in self.sheets:
            return HttpResponse.not_found("no sheet %r" % name)
        cells = self.sheets[name]
        rows = []
        for row in range(ROWS):
            tds = []
            for column in range(COLUMNS):
                value = cells.get((row, column), "")
                tds.append(
                    '<td><div class="cell" id="cell_%d_%d">%s</div></td>'
                    % (row, column, value)
                )
            rows.append("<tr>%s</tr>" % "".join(tds))
        return """<html><head><title>%s - Docs</title></head><body>
            <div class="toolbar">
              <div class="savebtn">Save</div>
              <span id="sheetstatus">Saved</span>
            </div>
            <table class="grid" data-sheet="%s">%s</table>
            <div id="chart" class="widget">[chart]</div>
            <script data-script="docs.sheet"></script>
            </body></html>""" % (name, name, "".join(rows))

    def _save(self, request):
        fields = {}
        for pair in request.body.split("&"):
            if "=" in pair:
                key, value = pair.split("=", 1)
                fields[key] = value
        name = fields.get("sheet", "")
        if name not in self.sheets:
            return HttpResponse.not_found("no sheet %r" % name)
        for key, value in fields.items():
            if key.startswith("cell_"):
                _, row, column = key.split("_")
                self.sheets[name][(int(row), int(column))] = value
        self.save_count += 1
        return HttpResponse.json('{"saved": true}')


def _sheet_script(window):
    """Client-side spreadsheet behaviour."""
    document = window.document
    env = window.env
    env.model = {}
    env.editing_cell = None
    env.selection = []

    grid = document.body.find_first(lambda el: "grid" in el.classes)
    status = document.get_element_by_id("sheetstatus")
    save_button = document.body.find_first(lambda el: "savebtn" in el.classes)
    sheet_name = grid.get_attribute("data-sheet")

    def cells():
        return [el for el in grid.descendants()
                if getattr(el, "tag", None) == "div"
                and "cell" in getattr(el, "classes", [])]

    for cell in cells():
        env.model[cell.id] = cell.text_content

    def commit_editing():
        cell = env.editing_cell
        if cell is None:
            return
        cell.remove_attribute("contenteditable")
        env.model[cell.id] = cell.text_content
        env.editing_cell = None
        status.text_content = "Edited"

    def on_dblclick(event):
        target = event.target
        if "cell" not in getattr(target, "classes", []):
            return
        commit_editing()
        target.set_attribute("contenteditable", "")
        window.focus(target)
        env.editing_cell = target

    def on_click(event):
        target = event.target
        if env.editing_cell is not None and target is not env.editing_cell:
            commit_editing()

    def on_drag(event):
        target = event.target
        if "cell" in getattr(target, "classes", []):
            # Range selection: mark cells between anchor and drop point.
            event.prevent_default()  # cells themselves must not move
            env.selection = [target.id]
            target.set_attribute("data-selected", "true")
            status.text_content = "Selected"

    grid.add_event_listener("dblclick", on_dblclick)
    grid.add_event_listener("click", on_click)
    grid.add_event_listener("drag", on_drag)
    # The chart widget relies on the engine's default drag action (move).

    def on_save(event):
        commit_editing()
        request = window.xhr()
        request.open("POST", "http://%s/save" % DocsApplication.host)

        def saved(response):
            status.text_content = "Saved"

        request.onload = saved
        payload = ["sheet=%s" % sheet_name]
        payload.extend("%s=%s" % (key, value) for key, value in
                       sorted(env.model.items()))
        request.send("&".join(payload))

    save_button.add_event_listener("click", on_save)
