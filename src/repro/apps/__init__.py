"""Simulated web applications.

Functional clones of the applications the paper evaluates WaRR on, each
built on the in-repo browser substrate:

- :mod:`repro.apps.sites` — a Google Sites-like site editor with an
  asynchronously loading editor module (and the uninitialized-variable
  timing bug WebErr found);
- :mod:`repro.apps.gmail` — a GMail-like composer whose element ids are
  regenerated on every load (the XPath-relaxation workload);
- :mod:`repro.apps.portal` — a Yahoo!-like portal with classic form
  authentication;
- :mod:`repro.apps.docs` — a Google Docs-like spreadsheet using double
  clicks and drags;
- :mod:`repro.apps.search` — three search engines with different
  typo-correction policies (the Table I workload).
"""

from repro.apps.framework import WebApplication, make_browser, AppEnvironment

__all__ = ["WebApplication", "make_browser", "AppEnvironment"]
