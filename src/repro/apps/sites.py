"""Google Sites clone: a rich web-page editor.

Reproduces the behaviours the paper exercises on Google Sites:

- the Figure-4 interaction: click the ``start`` span, type into the
  contenteditable ``//td/div[@id="content"]`` cell, click the
  ``//td/div[text()="Save"]`` button;
- the Section V-C timing bug: the editing functionality loads
  asynchronously (:data:`EDITOR_LOAD_MS` after the page), and every
  editing handler dereferences the ``editorState`` global that only the
  loader assigns. An impatient user who edits before the module loaded
  makes the page script read an uninitialized JavaScript variable — a
  ``JSReferenceError`` on the console, which is exactly what WebErr's
  zero-wait replay detects.
"""

from repro.apps.framework import WebApplication
from repro.net.http import HttpResponse

#: Simulated time for the editor module to initialize after page load.
EDITOR_LOAD_MS = 600.0


class SitesApplication(WebApplication):
    """A small site-hosting application with in-browser page editing."""

    host = "sites.example.com"

    def configure(self):
        #: server-side page store: name -> content
        self.pages = {
            "home": "Welcome to our site",
            "team": "The team page",
        }
        self.save_count = 0
        server = self.server
        server.add_route("/", self._home)
        server.add_route("/page/*", self._view_page)
        server.add_route("/edit/*", self._edit_page)
        server.add_route("/save", self._save, method="POST")
        self.scripts.register("sites.editor", _editor_script)

    # -- server side ------------------------------------------------------

    def _home(self, request):
        links = "".join(
            '<li><a href="/page/%s">%s</a></li>' % (name, name)
            for name in sorted(self.pages)
        )
        return """<html><head><title>Sites</title></head><body>
            <h1>My Sites</h1>
            <ul>%s</ul>
            </body></html>""" % links

    def _page_name(self, request):
        return request.path.rsplit("/", 1)[-1]

    def _view_page(self, request):
        name = self._page_name(request)
        if name not in self.pages:
            return HttpResponse.not_found("no page %r" % name)
        return """<html><head><title>%s - Sites</title></head><body>
            <h1>%s</h1>
            <div id="view">%s</div>
            <div><a href="/edit/%s">Edit page</a></div>
            </body></html>""" % (name, name, self.pages[name], name)

    def _edit_page(self, request):
        name = self._page_name(request)
        if name not in self.pages:
            return HttpResponse.not_found("no page %r" % name)
        return """<html><head><title>Edit %s - Sites</title></head><body>
            <div class="toolbar">
              <span id="start">start</span>
              <span id="status">Loading editor...</span>
            </div>
            <table class="editor"><tr>
              <td><div id="content" contenteditable data-page="%s">%s</div></td>
              <td><div class="savebtn">Save</div></td>
            </tr></table>
            <script data-script="sites.editor"></script>
            </body></html>""" % (name, name, self.pages[name])

    def _save(self, request):
        fields = _parse_form_body(request.body)
        name = fields.get("name", "")
        if name not in self.pages:
            return HttpResponse.not_found("no page %r" % name)
        self.pages[name] = fields.get("content", "")
        self.save_count += 1
        return HttpResponse.json('{"saved": true}')


def _editor_script(window):
    """Client-side editor (the buggy-by-timing Google Sites code).

    Handlers are registered immediately at page load, but ``editorState``
    is only assigned once the editor module finishes loading — the gap
    WebErr's timing errors fall into.
    """
    document = window.document
    env = window.env
    content = document.get_element_by_id("content")
    start = document.get_element_by_id("start")
    status = document.get_element_by_id("status")
    save_button = document.body.find_first(
        lambda el: el.tag == "div" and "savebtn" in el.classes
    )

    def module_loaded():
        # The late assignment every handler below depends on.
        env.editorState = {
            "page": content.get_attribute("data-page"),
            "dirty": False,
            "keystrokes": 0,
            "session": None,
        }
        status.text_content = "Ready"

    window.set_timeout(EDITOR_LOAD_MS, module_loaded)

    def on_start_click(event):
        state = env.editorState  # JSReferenceError if module not loaded
        state["session"] = "editing:%s" % state["page"]
        status.text_content = "Editing"
        # Clicking "start" places the caret in the content cell, which is
        # why the Figure-4 trace types right after the start click.
        window.focus(content)

    def on_keypress(event):
        state = env.editorState  # JSReferenceError if module not loaded
        state["dirty"] = True
        state["keystrokes"] += 1

    def on_save_click(event):
        state = env.editorState  # JSReferenceError if module not loaded
        request = window.xhr()
        request.open("POST", "http://%s/save" % SitesApplication.host)
        page = state["page"]

        def saved(response):
            window.navigate("http://%s/page/%s" % (SitesApplication.host, page))

        request.onload = saved
        request.send("name=%s&content=%s" % (page, content.text_content))
        state["dirty"] = False

    start.add_event_listener("click", on_start_click)
    content.add_event_listener("keypress", on_keypress)
    save_button.add_event_listener("click", on_save_click)


def _parse_form_body(body):
    fields = {}
    for pair in body.split("&"):
        if "=" in pair:
            key, value = pair.split("=", 1)
            fields[key] = value
    return fields
