"""GMail clone: web mail with volatile element ids.

The replay challenge this application reproduces (paper, Section IV-C):
"whenever GMail loaded, it generated new id properties for HTML
elements". Every render of the compose view stamps fresh ids, so a
recorded XPath like ``//td/div[@id="b17_body"]`` is stale on replay and
the WaRR Replayer must relax it (drop the volatile ``id``, keep the
``//td/div`` structure, or fall back to stable ``name`` attributes on
the To/Subject fields).

The compose body is a contenteditable div — the element kind Selenium
IDE cannot record typing into, and the one stock ChromeDriver cannot
type into because it only sets the ``value`` property.
"""

from repro.apps.framework import WebApplication
from repro.net.http import HttpResponse


class GmailApplication(WebApplication):
    """Inbox + compose + sent, with per-load id regeneration."""

    host = "mail.example.com"

    def configure(self):
        self.inbox = [
            {"from": "alice", "subject": "lunch?"},
            {"from": "build-bot", "subject": "nightly results"},
        ]
        self.sent = []
        self.drafts = []
        self._load_counter = 0
        server = self.server
        server.add_route("/", self._inbox_view)
        server.add_route("/compose", self._compose_view)
        server.add_route("/send", self._send, method="POST")
        server.add_route("/draft", self._draft, method="POST")
        server.add_route("/sent", self._sent_view)
        self.scripts.register("gmail.compose", _compose_script)

    def _fresh_id(self, suffix):
        return "w%d_%s" % (self._load_counter, suffix)

    # -- server side ------------------------------------------------------

    def _inbox_view(self, request):
        self._load_counter += 1
        rows = "".join(
            '<tr><td><div id="%s">%s</div></td><td>%s</td></tr>'
            % (self._fresh_id("msg%d" % index), message["from"],
               message["subject"])
            for index, message in enumerate(self.inbox)
        )
        return """<html><head><title>GMail - Inbox</title></head><body>
            <div class="nav"><a href="/compose">Compose</a>
            <a href="/sent">Sent</a></div>
            <table class="inbox">%s</table>
            </body></html>""" % rows

    def _compose_view(self, request):
        self._load_counter += 1
        to_id = self._fresh_id("to")
        subject_id = self._fresh_id("subject")
        body_id = self._fresh_id("body")
        return """<html><head><title>GMail - Compose</title></head><body>
            <div class="nav"><a href="/">Inbox</a></div>
            <table class="compose">
              <tr><td>To</td>
                  <td><input type="text" name="to" id="%s"></td></tr>
              <tr><td>Subject</td>
                  <td><input type="text" name="subject" id="%s"></td></tr>
              <tr><td class="bodycell" colspan="2">
                  <div id="%s" class="editable" contenteditable></div></td></tr>
            </table>
            <div class="send">Send</div>
            <script data-script="gmail.compose"></script>
            </body></html>""" % (to_id, subject_id, body_id)

    def _send(self, request):
        fields = _parse_form_body(request.body)
        message = {
            "to": fields.get("to", ""),
            "subject": fields.get("subject", ""),
            "body": fields.get("body", ""),
        }
        if not message["to"]:
            return HttpResponse('{"error": "missing recipient"}', status=400,
                                content_type="application/json")
        self.sent.append(message)
        return HttpResponse.json('{"sent": true}')

    def _draft(self, request):
        fields = _parse_form_body(request.body)
        self.drafts.append(fields)
        return HttpResponse.json('{"draft": true}')

    def _sent_view(self, request):
        self._load_counter += 1
        rows = "".join(
            "<li>%s: %s</li>" % (message["to"], message["subject"])
            for message in self.sent
        )
        return """<html><head><title>GMail - Sent</title></head><body>
            <div class="nav"><a href="/">Inbox</a></div>
            <p id="confirmation">Your message has been sent.</p>
            <ul class="sentlist">%s</ul>
            </body></html>""" % rows


#: Delay after which the compose view autosaves a draft once.
AUTOSAVE_MS = 2000.0


def _compose_script(window):
    """Compose-view client code.

    Tracks keystrokes (recording each observed ``key_code`` — the
    fidelity tests use this to show that only a developer-mode browser
    replays keyboard events with correct properties), autosaves one
    draft, and sends the message over XHR.
    """
    document = window.document
    env = window.env
    env.observed_key_codes = []
    env.keystrokes = 0

    body = document.body.find_first(
        lambda el: el.tag == "div" and "editable" in el.classes
    )
    send = document.body.find_first(
        lambda el: el.tag == "div" and "send" in el.classes
    )
    to_field = document.body.find_first(lambda el: el.name == "to")
    subject_field = document.body.find_first(lambda el: el.name == "subject")

    def on_keypress(event):
        env.observed_key_codes.append(event.key_code)
        env.keystrokes = env.keystrokes + 1

    body.add_event_listener("keypress", on_keypress)

    def autosave():
        request = window.xhr()
        request.open("POST", "http://%s/draft" % GmailApplication.host)
        request.send("to=%s&subject=%s&body=%s" % (
            to_field.value, subject_field.value, body.text_content))

    window.set_timeout(AUTOSAVE_MS, autosave)

    def on_send(event):
        request = window.xhr()
        request.open("POST", "http://%s/send" % GmailApplication.host)

        def sent(response):
            window.navigate("http://%s/sent" % GmailApplication.host)

        request.onload = sent
        request.send("to=%s&subject=%s&body=%s" % (
            to_field.value, subject_field.value, body.text_content))

    send.add_event_listener("click", on_send)


def _parse_form_body(body):
    fields = {}
    for pair in body.split("&"):
        if "=" in pair:
            key, value = pair.split("=", 1)
            fields[key] = value
    return fields
