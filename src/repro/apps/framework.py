"""Application framework and environment wiring.

A :class:`WebApplication` owns a host name, a
:class:`~repro.net.server.RouteServer` (its server side), and a
:class:`~repro.scripting.registry.ScriptRegistry` (its client side).
:func:`make_browser` assembles a deterministic environment — one virtual
clock, one event loop, one network — installs the applications, and
returns a ready browser. Experiments create a *fresh* environment per
run so server and client state never leak between measurements.
"""

from repro.browser.window import Browser
from repro.net.server import Network, RouteServer
from repro.scripting.registry import ScriptRegistry
from repro.util.clock import VirtualClock
from repro.util.event_loop import EventLoop
from repro.util.rng import SeededRandom


class WebApplication:
    """Base class for simulated applications."""

    #: Subclasses set their canonical host name.
    host = None

    def __init__(self, rng=None):
        if self.host is None:
            raise TypeError("%s must define a host" % type(self).__name__)
        self.rng = rng if rng is not None else SeededRandom(0)
        self.server = RouteServer()
        self.scripts = ScriptRegistry()
        self.configure()

    def configure(self):
        """Register routes and scripts; subclasses implement."""
        raise NotImplementedError

    def url(self, path="/", secure=False):
        """Absolute URL for a path on this application."""
        scheme = "https" if secure else "http"
        if not path.startswith("/"):
            path = "/" + path
        return "%s://%s%s" % (scheme, self.host, path)

    def install(self, network, registry, latency_ms=None,
                client_only=False):
        """Wire the application into an environment.

        ``client_only`` installs just the client side (page scripts):
        no server is registered, so every request for this host must be
        satisfied elsewhere — i.e. by a tape in PLAYBACK mode. This is
        what "replay without the app zoo" means concretely: scripts
        still run in the page, but the backend is the recording.
        """
        if not client_only:
            network.register(self.host, self.server, latency_ms=latency_ms)
        registry.merge(self.scripts)
        return self


class AppEnvironment:
    """One deterministic world: clock, loop, network, apps, browsers."""

    def __init__(self, apps, seed=0, latency_ms=50.0, client_only=False):
        self.clock = VirtualClock()
        self.event_loop = EventLoop(self.clock)
        self.network = Network(self.event_loop, default_latency_ms=latency_ms)
        self.registry = ScriptRegistry()
        self.rng = SeededRandom(seed)
        self.apps = list(apps)
        for app in self.apps:
            app.install(self.network, self.registry,
                        client_only=client_only)

    def browser(self, developer_mode=False, viewport_width=1024):
        """A new browser attached to this environment."""
        return Browser(
            network=self.network,
            script_registry=self.registry,
            developer_mode=developer_mode,
            viewport_width=viewport_width,
            event_loop=self.event_loop,
        )


def make_browser(app_factories, seed=0, developer_mode=False, latency_ms=50.0,
                 client_only=False):
    """Build a fresh environment and browser in one call.

    ``app_factories`` is a list of callables (typically application
    classes) invoked with a forked RNG each. Returns
    ``(browser, apps)`` — apps in factory order, so callers can reach
    server-side state for assertions.

    ``client_only`` skips server registration (page scripts only):
    the environment for hermetic tape playback, where responses come
    from a recording instead of live application servers.
    """
    rng = SeededRandom(seed)
    apps = [factory(rng=rng.fork(index)) for index, factory in enumerate(app_factories)]
    environment = AppEnvironment(apps, seed=seed, latency_ms=latency_ms,
                                 client_only=client_only)
    return environment.browser(developer_mode=developer_mode), apps
