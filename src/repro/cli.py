"""Command-line interface.

The workflows a downstream user runs from a shell::

    python -m repro record  --app sites  --out session.warr
    python -m repro replay  session.warr --app sites [--no-wait]
                            [--stock-driver] [--no-relaxation]
                            [--trace-out trace.json]
    python -m repro batch   a.warr b.warr c.warr d.warr --app sites
                            [--workers 4 | --shards 4] [--trace-timeout 30]
                            [--trace-dir traces/]
                            [--journal run.wj1 [--resume]]
                            [--chaos farm --chaos-seed 7]
    python -m repro journal run.wj1
    python -m repro soak    [--mode pooled] [--scenario kill-worker]
                            [--out soak.json]
    python -m repro trace   session.warr --app sites --out trace.json
    python -m repro inspect session.warr
    python -m repro weberr  session.warr --app sites --campaign timing
    python -m repro chaos   --profile default flaky_net --seeds 5
                            [--no-retry] [--out report.json]
    python -m repro tape record  session.warr --app sites --out net.tape
    python -m repro tape replay  session.warr --app sites --tape net.tape
    python -m repro tape inspect net.tape [--json net.json] [--entries]
    python -m repro tape compact net.tape [--out smaller.tape]

``tape record`` replays a trace against the live application while
snapshotting every HTTP exchange onto a network tape; ``tape replay``
replays the same trace hermetically — page scripts run but no
application servers are registered, every response comes off the tape.
``replay`` and ``batch`` accept ``--tape PATH --tape-mode
record|playback`` to do the same inline (batch mode treats PATH as a
directory holding one ``<label>.tape`` per trace).

``batch --journal`` appends every trace's start and final outcome to a
crash-safe run journal; after a crash, a SIGTERM drain (exit code 75),
or a kill, ``--resume`` replays completed traces from the journal and
executes only the remainder. ``journal`` inspects one, and ``soak``
runs the whole failure matrix — killed workers, drained runs, crashed
parents — asserting exactly-once accounting across all three batch
backends.

``replay --trace-out`` and the dedicated ``trace`` subcommand record a
Chrome trace-event timeline of the replay (IPC, dispatch, layout,
XPath, session pipeline) — load the JSON in ``chrome://tracing`` or
https://ui.perfetto.dev. ``batch --trace-dir`` writes one trace per
session plus a merged ``batch.trace.json``. All three accept
``--trace-categories`` (``all`` / ``production`` / a comma-separated
list) to filter what records — ``production`` keeps the session, net,
chaos, and recorder lanes at <10% replay overhead.

Because this reproduction has no interactive UI, ``record`` drives the
application's canonical scripted session (the same ones the paper's
experiments use) with the recorder attached.
"""

import argparse
import sys

from repro import telemetry
from repro.apps.dashboard import DashboardApplication
from repro.apps.docs import DocsApplication
from repro.apps.framework import make_browser
from repro.apps.gmail import GmailApplication
from repro.apps.portal import PortalApplication
from repro.apps.sites import SitesApplication
from repro.core.analysis import analyze_trace
from repro.core.chromedriver import ChromeDriverConfig
from repro.core.recorder import WarrRecorder
from repro.core.replayer import TimingMode, WarrReplayer
from repro.core.trace import WarrTrace
from repro.net.tape import Tape
from repro.net.transport import PLAYBACK, RECORD, TapeConfig
from repro.session.batch import BatchRunner
from repro.weberr.runner import WebErr
from repro.workloads.sessions import (
    dashboard_session,
    docs_edit_session,
    gmail_compose_session,
    portal_authenticate_session,
    sites_edit_session,
)

#: app name -> (application class, scripted session, start URL)
APPS = {
    "sites": (SitesApplication, sites_edit_session,
              "http://sites.example.com/edit/home"),
    "gmail": (GmailApplication, gmail_compose_session,
              "http://mail.example.com/"),
    "portal": (PortalApplication, portal_authenticate_session,
               "http://portal.example.com/"),
    "docs": (DocsApplication, docs_edit_session,
             "http://docs.example.com/sheet/budget"),
    "dashboard": (DashboardApplication, dashboard_session,
                  "http://dashboard.example.com/"),
}


def _app_entry(name):
    try:
        return APPS[name]
    except KeyError:
        raise SystemExit("unknown app %r; choose from %s"
                         % (name, ", ".join(sorted(APPS))))


def cmd_record(args, out):
    app_class, session, start_url = _app_entry(args.app)
    browser, _ = make_browser([app_class], seed=args.seed)
    recorder = WarrRecorder().attach(browser)
    recorder.begin(start_url, label="%s scripted session" % args.app)
    session(browser)
    recorder.detach()
    recorder.trace.save(args.out)
    print("recorded %d commands to %s"
          % (len(recorder.trace), args.out), file=out)
    return 0


def _tape_config_from_args(args):
    """Build the TapeConfig a ``--tape``/``--tape-mode`` pair asks for."""
    if not getattr(args, "tape", None):
        if getattr(args, "tape_mode", None):
            raise SystemExit("--tape-mode needs --tape PATH")
        return None
    mode = args.tape_mode or PLAYBACK
    stamp = {"app": args.app, "seed": args.seed}
    if mode == RECORD:
        return TapeConfig.record(args.tape, stamp=stamp)
    return TapeConfig.playback(args.tape, stamp=stamp)


def _print_tape_outcome(tape_session, out):
    """One status line summarizing what the attached tape did."""
    if tape_session is None or tape_session.transport is None:
        return
    transport = tape_session.transport
    tape = tape_session.tape
    if tape_session.config.mode == RECORD:
        stats = tape.stats()
        print("tape: recorded %d exchange(s) (%d unique bodies, "
              "dedup %.3f) to %s"
              % (stats["entries"], stats["unique_bodies"],
                 stats["dedup_ratio"], tape_session.path), file=out)
    else:
        print("tape: playback %d hit(s) / %d miss(es) from %s"
              % (transport.hits, transport.misses, tape_session.path),
              file=out)


def cmd_replay(args, out):
    app_class, _, _ = _app_entry(args.app)
    trace = WarrTrace.load(args.trace)
    tape = _tape_config_from_args(args)
    playback = tape is not None and tape.mode == PLAYBACK
    browser, _ = make_browser([app_class], seed=args.seed,
                              developer_mode=not args.user_browser,
                              client_only=playback)
    config = (ChromeDriverConfig.stock() if args.stock_driver
              else ChromeDriverConfig.warr())
    replayer = WarrReplayer(browser, config=config,
                            relaxation=not args.no_relaxation,
                            timing=_timing_from_args(args))
    tape_session = (tape.attach(browser.network) if tape is not None
                    else None)
    try:
        if args.trace_out:
            with telemetry.tracing(out=args.trace_out, clock=browser.clock,
                                   categories=args.trace_categories):
                report = replayer.replay(trace)
            print("trace: wrote %s" % args.trace_out, file=out)
        else:
            report = replayer.replay(trace)
    finally:
        if tape_session is not None:
            tape_session.finish()
    _print_tape_outcome(tape_session, out)
    print(report.summary(), file=out)
    for line in report.perf_summary():
        print("perf: %s" % line, file=out)
    for error in report.page_errors:
        print("page error: %s" % error, file=out)
    for result in report.failures():
        print("failed: %s (%s)" % (result.command.to_line(), result.error),
              file=out)
    return 0 if report.complete and not report.page_errors else 1


def _timing_from_args(args):
    timing = TimingMode.no_wait() if args.no_wait else TimingMode.recorded()
    if args.scale is not None:
        timing = TimingMode.scaled(args.scale)
    return timing


def batch_browser_factory(app, seed=0, client_only=False):
    """Build the per-session browser factory for ``batch`` workers.

    Referenced by dotted name from the worker-pool spec, so each worker
    process reconstructs its own factory — live browsers never cross
    the process boundary. ``client_only`` builds the hermetic playback
    environment: page scripts, no application servers.
    """
    app_class, _, _ = _app_entry(app)

    def factory():
        browser, _ = make_browser([app_class], seed=seed,
                                  developer_mode=True,
                                  client_only=client_only)
        return browser

    return factory


def _chaos_scope_from_args(args):
    """``chaos.active(...)`` for ``--chaos PROFILE``, or a no-op scope."""
    import contextlib

    if not getattr(args, "chaos", None):
        return contextlib.nullcontext()
    from repro import chaos

    return chaos.active(chaos.get_profile(args.chaos),
                        seed=getattr(args, "chaos_seed", 0))


def cmd_batch(args, out):
    """Replay many traces, each on an isolated browser instance."""
    from repro.session.supervisor import GracefulDrain

    _app_entry(args.app)  # validate before any worker inherits the name
    if args.resume and not args.journal:
        raise SystemExit("--resume needs --journal PATH")
    traces = [WarrTrace.load(path) for path in args.traces]
    tape = _tape_config_from_args(args)
    playback = tape is not None and tape.mode == PLAYBACK

    if args.workers > 1:
        from repro.session.pool import WorkerSpec

        factory = WorkerSpec("repro.cli:batch_browser_factory",
                             factory_args=(args.app,),
                             factory_kwargs={"seed": args.seed,
                                             "client_only": playback})
    else:
        factory = batch_browser_factory(args.app, seed=args.seed,
                                        client_only=playback)
    runner = BatchRunner(factory, timing=_timing_from_args(args),
                         workers=args.workers, shards=args.shards,
                         trace_timeout=args.trace_timeout, tape=tape,
                         trace_categories=args.trace_categories,
                         journal=args.journal, resume=args.resume)
    with _chaos_scope_from_args(args):
        with GracefulDrain() as drain:
            batch = runner.run(traces, labels=args.traces,
                               trace_dir=args.trace_dir, drain=drain)
    if args.trace_dir:
        print("traces: wrote %d per-session trace(s) + batch.trace.json "
              "to %s" % (batch.trace_count, args.trace_dir), file=out)
    for run in batch.runs:
        resumed = " (resumed from journal)" if run.resumed else ""
        print("[%s] %s%s" % (run.label, run.report.summary(), resumed),
              file=out)
        if args.failures:
            for result in run.report.failures():
                print("[%s] failed: %s (%s)"
                      % (run.label, result.command.to_line(), result.error),
                      file=out)
    print(batch.summary(), file=out)
    for diagnosis in batch.quarantined:
        print("quarantined: %s after %d attempt(s) on workers %s — %s"
              % (diagnosis.get("label"), diagnosis.get("attempts", 0),
                 diagnosis.get("workers"), diagnosis.get("reason")),
              file=out)
        tail = (diagnosis.get("stderr_tail") or "").strip()
        if tail:
            print("quarantined: last stderr: %s"
                  % tail.splitlines()[-1], file=out)
    for name in sorted(batch.perf_counters):
        counts = batch.perf_counters[name]
        print("perf: %s %d hits / %d misses"
              % (name, counts["hits"], counts["misses"]), file=out)
    if batch.drained:
        if args.journal:
            print("drained: run interrupted; resume with "
                  "--journal %s --resume" % args.journal, file=out)
        else:
            print("drained: run interrupted (no journal; a re-run "
                  "starts from scratch)", file=out)
        return 75  # EX_TEMPFAIL: incomplete but cleanly resumable
    return 0 if batch.complete and batch.page_error_count == 0 else 1


def cmd_journal(args, out):
    """Inspect a WJ1 run journal and verify exactly-once accounting."""
    from repro.session import journal as run_journal

    snapshot = run_journal.read_journal(args.journal)
    config = snapshot.config or {}
    print("journal: %s" % args.journal, file=out)
    if config:
        print("mode: %s; %d trace(s)"
              % (config.get("mode", "?"), len(config.get("entries", ()))),
              file=out)
    finishes = snapshot.finish_by_index()
    for index in sorted(finishes):
        record = finishes[index]
        worker = ("worker %d" % record.worker_id
                  if record.worker_id is not None else "in-process")
        print("[%s] %s after %d attempt(s) on %s"
              % (record.label, record.status, record.attempts, worker),
              file=out)
    for event in snapshot.events:
        print("event: %s %s" % (event.kind, event.payload or ""), file=out)
    verdict = run_journal.verify_exactly_once(args.journal)
    print("finished %d/%d; duplicates: %s; torn bytes: %d"
          % (verdict["finished"], verdict["traces"],
             verdict["duplicates"] or "none", verdict["torn_bytes"]),
          file=out)
    if verdict["missing"]:
        print("unfinished: %s" % ", ".join(verdict["missing"]), file=out)
    print("exactly-once: %s" % ("yes" if verdict["exactly_once"] else "NO"),
          file=out)
    return 0 if verdict["exactly_once"] else 1


def cmd_soak(args, out):
    """Kill-and-resume soak: prove no trace is lost or double-counted."""
    from repro.chaos.harness import run_soak

    report = run_soak(app=args.app, mode=args.mode, traces=args.traces,
                      seed=args.seed, throttle=args.throttle,
                      scenarios=args.scenario, journal_dir=args.keep_journals,
                      verbose=args.verbose,
                      progress=lambda line: print(line, file=out))
    for line in report.summary_lines():
        print(line, file=out)
    if args.out:
        import json

        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print("soak report written to %s" % args.out, file=out)
    return 0 if report.passed else 1


def cmd_trace(args, out):
    """Replay under tracing and summarize the recorded timeline."""
    app_class, _, _ = _app_entry(args.app)
    trace = WarrTrace.load(args.trace)
    browser, _ = make_browser([app_class], seed=args.seed,
                              developer_mode=True)
    replayer = WarrReplayer(browser, timing=_timing_from_args(args))
    with telemetry.tracing(out=args.out, clock=browser.clock,
                           categories=args.trace_categories) as tracer:
        report = replayer.replay(trace)
        trace_dict = telemetry.tracer_to_dict(tracer)
    print(report.summary(), file=out)
    print("trace: wrote %s" % args.out, file=out)
    for line in telemetry.trace_summary(trace_dict):
        print(line, file=out)
    return 0 if report.complete and not report.page_errors else 1


def cmd_inspect(args, out):
    trace = WarrTrace.load(args.trace)
    print("trace: %s" % args.trace, file=out)
    print("start url: %s" % trace.start_url, file=out)
    if trace.label:
        print("label: %s" % trace.label, file=out)
    for line in analyze_trace(trace).lines():
        print(line, file=out)
    if args.commands:
        print("", file=out)
        for command in trace:
            print(command.to_line(), file=out)
    return 0


def cmd_weberr(args, out):
    app_class, _, _ = _app_entry(args.app)
    trace = WarrTrace.load(args.trace)

    def factory():
        browser, _ = make_browser([app_class], seed=args.seed,
                                  developer_mode=True)
        return browser

    weberr = WebErr(factory, max_tests=args.max_tests)
    if args.campaign in ("timing", "both"):
        report = weberr.run_timing_campaign(trace)
        print("[timing] %s" % report.summary(), file=out)
        for outcome in report.bugs:
            print("[timing] BUG %s: %s"
                  % (outcome.description, outcome.verdict.reason), file=out)
    if args.campaign in ("navigation", "both"):
        report = weberr.run_navigation_campaign(trace, label=args.app)
        print("[navigation] %s" % report.summary(), file=out)
        for outcome in report.bugs:
            print("[navigation] BUG %s: %s"
                  % (outcome.description, outcome.verdict.reason), file=out)
    return 0


def cmd_chaos(args, out):
    # Imported lazily: the harness reaches back into this module for the
    # APPS table, so a top-level import would be circular.
    import json

    from repro.chaos.harness import default_workloads, run_chaos_matrix
    from repro.session.policies import RetryPolicy

    workloads = default_workloads()
    if args.app:
        workloads = [w for w in workloads if w[0] in args.app]
    if args.quick:
        workloads = workloads[:1]
    retry = RetryPolicy.none() if args.no_retry else RetryPolicy.default()
    progress = (lambda line: print(line, file=out)) if args.verbose else None
    report = run_chaos_matrix(args.profile, seeds=args.seeds,
                              workloads=workloads, retry=retry,
                              progress=progress)
    for line in report.summary_lines():
        print(line, file=out)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print("survival report written to %s" % args.out, file=out)
    return 0 if report.session_count else 1


def cmd_tape_record(args, out):
    """Replay a trace live while snapshotting every exchange to tape."""
    app_class, _, _ = _app_entry(args.app)
    trace = WarrTrace.load(args.trace)
    browser, _ = make_browser([app_class], seed=args.seed,
                              developer_mode=True)
    config = TapeConfig.record(args.out,
                               stamp={"app": args.app, "seed": args.seed})
    tape_session = config.attach(browser.network)
    replayer = WarrReplayer(browser, timing=_timing_from_args(args))
    try:
        report = replayer.replay(trace)
    finally:
        tape_session.finish()
    _print_tape_outcome(tape_session, out)
    print(report.summary(), file=out)
    return 0 if report.complete and not report.page_errors else 1


def cmd_tape_replay(args, out):
    """Replay a trace hermetically: responses come off the tape only."""
    app_class, _, _ = _app_entry(args.app)
    trace = WarrTrace.load(args.trace)
    browser, _ = make_browser([app_class], seed=args.seed,
                              developer_mode=True, client_only=True)
    config = TapeConfig.playback(args.tape)
    tape_session = config.attach(browser.network)
    tape = tape_session.tape
    if tape.chaos_profile is not None:
        print("tape: recorded under chaos profile %r seed %s"
              % (tape.chaos_profile, tape.chaos_seed), file=out)
    replayer = WarrReplayer(browser, timing=_timing_from_args(args))
    try:
        report = replayer.replay(trace)
    finally:
        tape_session.finish()
    _print_tape_outcome(tape_session, out)
    print(report.summary(), file=out)
    misses = report.net_fidelity.get("tape_misses", 0)
    if misses:
        print("tape: %d request(s) missed the tape" % misses, file=out)
    return 0 if report.complete and not report.page_errors else 1


def cmd_tape_inspect(args, out):
    """Print tape statistics; optionally export the JSON form."""
    import json

    tape = Tape.load(args.tape)
    stats = tape.stats()
    print("tape: %s" % args.tape, file=out)
    if tape.label:
        print("label: %s" % tape.label, file=out)
    if tape.config:
        print("config: %s" % json.dumps(tape.config, sort_keys=True),
              file=out)
    if tape.chaos_profile is not None:
        print("chaos: profile %r seed %s"
              % (tape.chaos_profile, tape.chaos_seed), file=out)
    print("entries: %d (%d unique fingerprints)"
          % (stats["entries"], stats["fingerprints"]), file=out)
    print("bodies: %d blob(s), %d stored bytes, %d logical bytes, "
          "dedup %.3f" % (stats["unique_bodies"], stats["stored_bytes"],
                          stats["logical_bytes"], stats["dedup_ratio"]),
          file=out)
    if args.entries:
        print("", file=out)
        for entry in tape.entries:
            print("#%d %s %s -> %d %s" % (entry.ordinal, entry.method,
                                          entry.url, entry.status,
                                          entry.content_type), file=out)
    if args.json:
        tape.export_json(args.json)
        print("json: wrote %s" % args.json, file=out)
    return 0


def cmd_tape_compact(args, out):
    """Drop orphaned blobs and rewrite the tape."""
    import os

    tape = Tape.load(args.tape)
    dropped = tape.compact()
    destination = args.out or args.tape
    tape.save(destination)
    print("compacted %s -> %s: dropped %d orphaned blob(s), %d bytes "
          "on disk" % (args.tape, destination, dropped,
                       os.path.getsize(destination)), file=out)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WaRR: record and replay web application interaction")
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="record a scripted session")
    record.add_argument("--app", required=True, choices=sorted(APPS))
    record.add_argument("--out", required=True)
    record.add_argument("--seed", type=int, default=0)
    record.set_defaults(func=cmd_record)

    replay = sub.add_parser("replay", help="replay a trace file")
    replay.add_argument("trace")
    replay.add_argument("--app", required=True, choices=sorted(APPS))
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--no-wait", action="store_true",
                        help="replay with no inter-command delays")
    replay.add_argument("--scale", type=float, default=None,
                        help="scale recorded delays by this factor")
    replay.add_argument("--no-relaxation", action="store_true",
                        help="disable XPath relaxation")
    replay.add_argument("--stock-driver", action="store_true",
                        help="use pre-WaRR ChromeDriver (no fixes)")
    replay.add_argument("--user-browser", action="store_true",
                        help="replay in a non-developer browser")
    replay.add_argument("--trace-out", default=None, metavar="PATH",
                        help="record a Chrome trace-event timeline of "
                             "the replay to PATH")
    replay.add_argument("--trace-categories", default=None, metavar="SPEC",
                        help="trace category filter: 'all' (default), "
                             "'production', or a comma-separated list; "
                             "a term may carry a deterministic sampling "
                             "rate (e.g. 'session,dispatch:0.1')")
    replay.add_argument("--tape", default=None, metavar="PATH",
                        help="network tape file to record to / play "
                             "back from")
    replay.add_argument("--tape-mode", default=None,
                        choices=["record", "playback"],
                        help="record the network to --tape, or serve "
                             "every response from it (default: playback "
                             "when --tape is given)")
    replay.set_defaults(func=cmd_replay)

    batch = sub.add_parser("batch",
                           help="replay many traces on isolated browsers")
    batch.add_argument("traces", nargs="+",
                       help="trace files, one isolated session each")
    batch.add_argument("--app", required=True, choices=sorted(APPS))
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument("--no-wait", action="store_true",
                       help="replay with no inter-command delays")
    batch.add_argument("--scale", type=float, default=None,
                       help="scale recorded delays by this factor")
    batch.add_argument("--failures", action="store_true",
                       help="also list every failed command")
    batch.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="write per-session Chrome traces plus a "
                            "merged batch.trace.json into DIR")
    batch.add_argument("--trace-categories", default=None, metavar="SPEC",
                       help="trace category filter for --trace-dir: 'all' "
                            "(default), 'production', or a comma-"
                            "separated list, with optional 'name:rate' "
                            "sampling terms")
    batch.add_argument("--workers", type=int, default=1, metavar="N",
                       help="replay across N worker processes "
                            "(default 1 = in-process)")
    batch.add_argument("--shards", type=int, default=1, metavar="N",
                       help="interleave N sessions cooperatively in one "
                            "process (no pickling; exclusive with "
                            "--workers > 1)")
    batch.add_argument("--trace-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="with --workers > 1: kill and re-queue (once) "
                            "any trace replaying longer than this")
    batch.add_argument("--tape", default=None, metavar="DIR",
                       help="tape directory (one <label>.tape per trace) "
                            "to record to / play back from")
    batch.add_argument("--tape-mode", default=None,
                       choices=["record", "playback"],
                       help="record every session's network, or replay "
                            "hermetically from the tapes (default: "
                            "playback when --tape is given)")
    batch.add_argument("--journal", default=None, metavar="PATH",
                       help="append every trace's start and outcome to a "
                            "crash-safe WJ1 run journal at PATH")
    batch.add_argument("--resume", action="store_true",
                       help="with --journal: replay completed traces from "
                            "the journal and run only the remainder")
    batch.add_argument("--chaos", default=None, metavar="PROFILE",
                       help="run the batch under a fault profile (e.g. "
                            "'farm' kills worker processes mid-chunk)")
    batch.add_argument("--chaos-seed", type=int, default=0, metavar="N",
                       help="seed for --chaos (fault schedule is "
                            "deterministic per (profile, seed))")
    batch.set_defaults(func=cmd_batch)

    journal = sub.add_parser(
        "journal",
        help="inspect a batch run journal and verify exactly-once "
             "accounting")
    journal.add_argument("journal", help="WJ1 journal file (see "
                                         "batch --journal)")
    journal.set_defaults(func=cmd_journal)

    soak = sub.add_parser(
        "soak",
        help="resilience soak: kill workers and the batch itself "
             "mid-run, resume from the journal, verify exactly-once")
    soak.add_argument("--app", default="sites", choices=sorted(APPS))
    soak.add_argument("--mode", nargs="*", default=None,
                      choices=["serial", "sharded", "pooled"],
                      help="batch backend(s) to soak (default: all three)")
    soak.add_argument("--scenario", nargs="*", default=None,
                      choices=["drain", "kill-worker", "crash-parent"],
                      help="failure scenario(s) to run (default: all)")
    soak.add_argument("--traces", type=int, default=6, metavar="N",
                      help="traces per soak run")
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--throttle", type=float, default=0.15,
                      metavar="SECONDS",
                      help="per-trace slowdown so signals land mid-run")
    soak.add_argument("--keep-journals", default=None, metavar="DIR",
                      help="keep every scenario's journal under DIR")
    soak.add_argument("--out", default=None, metavar="PATH",
                      help="write the JSON soak report to PATH")
    soak.add_argument("--verbose", action="store_true",
                      help="echo each subprocess's output")
    soak.set_defaults(func=cmd_soak)

    tracecmd = sub.add_parser(
        "trace", help="replay a trace file with tracing and summarize it")
    tracecmd.add_argument("trace")
    tracecmd.add_argument("--app", required=True, choices=sorted(APPS))
    tracecmd.add_argument("--out", default="trace.json",
                          help="Chrome trace JSON output path")
    tracecmd.add_argument("--seed", type=int, default=0)
    tracecmd.add_argument("--no-wait", action="store_true",
                          help="replay with no inter-command delays")
    tracecmd.add_argument("--scale", type=float, default=None,
                          help="scale recorded delays by this factor")
    tracecmd.add_argument("--trace-categories", default=None, metavar="SPEC",
                          help="trace category filter: 'all' (default), "
                               "'production', or a comma-separated list, "
                               "with optional 'name:rate' sampling terms")
    tracecmd.set_defaults(func=cmd_trace)

    inspect = sub.add_parser("inspect", help="print trace statistics")
    inspect.add_argument("trace")
    inspect.add_argument("--commands", action="store_true",
                         help="also list every command")
    inspect.set_defaults(func=cmd_inspect)

    weberr = sub.add_parser("weberr",
                            help="inject human errors and test the app")
    weberr.add_argument("trace")
    weberr.add_argument("--app", required=True, choices=sorted(APPS))
    weberr.add_argument("--campaign", default="both",
                        choices=["timing", "navigation", "both"])
    weberr.add_argument("--max-tests", type=int, default=50)
    weberr.add_argument("--seed", type=int, default=0)
    weberr.set_defaults(func=cmd_weberr)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="replay bundled workloads under fault injection and report "
             "survival")
    chaos_cmd.add_argument("--profile", nargs="+", default=["default"],
                           help="fault profile name(s) "
                                "(see repro.chaos.PROFILES)")
    chaos_cmd.add_argument("--seeds", type=int, default=3, metavar="N",
                           help="run seeds 0..N-1 per (app, profile) cell")
    chaos_cmd.add_argument("--app", nargs="*", default=None,
                           choices=sorted(APPS),
                           help="restrict the matrix to these app(s)")
    chaos_cmd.add_argument("--quick", action="store_true",
                           help="smoke mode: one workload only")
    chaos_cmd.add_argument("--no-retry", action="store_true",
                           help="replay without self-healing (measure how "
                                "the un-hardened replayer dies)")
    chaos_cmd.add_argument("--out", default=None, metavar="PATH",
                           help="write the JSON survival report to PATH")
    chaos_cmd.add_argument("--verbose", action="store_true",
                           help="print one line per matrix cell")
    chaos_cmd.set_defaults(func=cmd_chaos)

    tape = sub.add_parser(
        "tape", help="record, replay, and inspect network tapes")
    tape_sub = tape.add_subparsers(dest="tape_command", required=True)

    tape_record = tape_sub.add_parser(
        "record", help="replay a trace live and snapshot the network")
    tape_record.add_argument("trace")
    tape_record.add_argument("--app", required=True, choices=sorted(APPS))
    tape_record.add_argument("--out", required=True, metavar="PATH",
                             help="tape file to write")
    tape_record.add_argument("--seed", type=int, default=0)
    tape_record.add_argument("--no-wait", action="store_true",
                             help="replay with no inter-command delays")
    tape_record.add_argument("--scale", type=float, default=None,
                             help="scale recorded delays by this factor")
    tape_record.set_defaults(func=cmd_tape_record)

    tape_replay = tape_sub.add_parser(
        "replay", help="replay a trace hermetically from a tape "
                       "(no application servers)")
    tape_replay.add_argument("trace")
    tape_replay.add_argument("--app", required=True, choices=sorted(APPS))
    tape_replay.add_argument("--tape", required=True, metavar="PATH",
                             help="tape file to serve responses from")
    tape_replay.add_argument("--seed", type=int, default=0)
    tape_replay.add_argument("--no-wait", action="store_true",
                             help="replay with no inter-command delays")
    tape_replay.add_argument("--scale", type=float, default=None,
                             help="scale recorded delays by this factor")
    tape_replay.set_defaults(func=cmd_tape_replay)

    tape_inspect = tape_sub.add_parser(
        "inspect", help="print tape statistics")
    tape_inspect.add_argument("tape")
    tape_inspect.add_argument("--entries", action="store_true",
                              help="also list every recorded exchange")
    tape_inspect.add_argument("--json", default=None, metavar="PATH",
                              help="export the tape as JSON to PATH")
    tape_inspect.set_defaults(func=cmd_tape_inspect)

    tape_compact = tape_sub.add_parser(
        "compact", help="drop orphaned blobs and rewrite a tape")
    tape_compact.add_argument("tape")
    tape_compact.add_argument("--out", default=None, metavar="PATH",
                              help="write the compacted tape here "
                                   "(default: in place)")
    tape_compact.set_defaults(func=cmd_tape_compact)
    return parser


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":
    sys.exit(main())
