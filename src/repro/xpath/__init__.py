"""XPath subset engine.

WaRR Commands identify their target elements by XPath expressions
(paper, Section IV-B). This package implements the subset those
expressions need — ``/`` and ``//`` axes, name tests, attribute/text/
positional predicates — plus the *generator* that produces a paper-style
expression for a DOM element, and helpers the relaxation heuristics use
to rewrite expressions.
"""

from repro.xpath.ast import (
    Path,
    Step,
    AttributeEquals,
    AttributeExists,
    TextEquals,
    ContainsPredicate,
    PositionPredicate,
)
from repro.xpath.parser import parse_xpath
from repro.xpath.evaluator import evaluate, find_all, find_first
from repro.xpath.generator import xpath_for_element, absolute_xpath

__all__ = [
    "Path",
    "Step",
    "AttributeEquals",
    "AttributeExists",
    "TextEquals",
    "ContainsPredicate",
    "PositionPredicate",
    "parse_xpath",
    "evaluate",
    "find_all",
    "find_first",
    "xpath_for_element",
    "absolute_xpath",
]
