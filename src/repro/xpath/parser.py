"""Recursive-descent parser for the XPath subset.

Grammar::

    path      := step+
    step      := ('/' | '//') nametest predicate*
    nametest  := NAME | '*'
    predicate := '[' predexpr ']'
    predexpr  := '@' NAME '=' STRING
               | '@' NAME
               | 'text' '(' ')' '=' STRING
               | 'contains' '(' target ',' STRING ')'
               | 'position' '(' ')' '=' INTEGER
               | 'last' '(' ')'
               | INTEGER
    target    := '@' NAME | 'text' '(' ')'

Relative expressions (no leading slash) are treated as ``//``-anchored,
which matches how WaRR traces always locate elements from the document.
"""

from collections import OrderedDict

from repro import perf, telemetry
from repro.telemetry.tracks import LOCATOR_TRACK
from repro.util.errors import XPathSyntaxError
from repro.xpath import lexer
from repro.xpath.ast import (
    Path,
    Step,
    AttributeEquals,
    AttributeExists,
    TextEquals,
    ContainsPredicate,
    PositionPredicate,
)


class _Parser:
    def __init__(self, expression):
        self.expression = expression
        self.tokens = lexer.tokenize(expression)
        self.index = 0

    def peek(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind):
        token = self.advance()
        if token.kind != kind:
            raise XPathSyntaxError(
                "expected %s but found %r at position %d in %r"
                % (kind, token.value, token.pos, self.expression)
            )
        return token

    def parse(self):
        steps = []
        token = self.peek()
        if token.kind == lexer.END:
            raise XPathSyntaxError("empty XPath expression")
        # Relative paths are //-anchored.
        if token.kind not in (lexer.SLASH, lexer.DSLASH):
            steps.append(self._parse_step(Step.DESCENDANT))
        while self.peek().kind in (lexer.SLASH, lexer.DSLASH):
            sep = self.advance()
            axis = Step.DESCENDANT if sep.kind == lexer.DSLASH else Step.CHILD
            steps.append(self._parse_step(axis))
        self.expect(lexer.END)
        return Path(steps)

    def _parse_step(self, axis):
        token = self.advance()
        if token.kind == lexer.STAR:
            name = "*"
        elif token.kind == lexer.NAME:
            name = token.value.lower()
        else:
            raise XPathSyntaxError(
                "expected element name or * at position %d in %r"
                % (token.pos, self.expression)
            )
        predicates = []
        while self.peek().kind == lexer.LBRACKET:
            self.advance()
            predicates.append(self._parse_predicate())
            self.expect(lexer.RBRACKET)
        return Step(axis, name, predicates)

    def _parse_predicate(self):
        token = self.peek()
        if token.kind == lexer.INTEGER:
            self.advance()
            if token.value < 1:
                raise XPathSyntaxError("positions are 1-based, got %d" % token.value)
            return PositionPredicate(token.value)
        if token.kind == lexer.AT:
            self.advance()
            name = self.expect(lexer.NAME).value.lower()
            if self.peek().kind == lexer.EQ:
                self.advance()
                value = self.expect(lexer.STRING).value
                return AttributeEquals(name, value)
            return AttributeExists(name)
        if token.kind == lexer.NAME:
            func = self.advance().value.lower()
            if func == "text":
                self._expect_parens()
                self.expect(lexer.EQ)
                value = self.expect(lexer.STRING).value
                return TextEquals(value)
            if func == "position":
                self._expect_parens()
                self.expect(lexer.EQ)
                index = self.expect(lexer.INTEGER).value
                return PositionPredicate(index)
            if func == "last":
                self._expect_parens()
                return PositionPredicate(PositionPredicate.LAST)
            if func == "contains":
                self.expect(lexer.LPAREN)
                target = self._parse_contains_target()
                self.expect(lexer.COMMA)
                value = self.expect(lexer.STRING).value
                self.expect(lexer.RPAREN)
                return ContainsPredicate(target, value)
            raise XPathSyntaxError(
                "unsupported function %r in %r" % (func, self.expression)
            )
        raise XPathSyntaxError(
            "cannot parse predicate at position %d in %r"
            % (token.pos, self.expression)
        )

    def _parse_contains_target(self):
        token = self.advance()
        if token.kind == lexer.AT:
            name = self.expect(lexer.NAME).value.lower()
            return "@%s" % name
        if token.kind == lexer.NAME and token.value.lower() == "text":
            self._expect_parens()
            return "text()"
        raise XPathSyntaxError(
            "contains() target must be @attr or text() in %r" % self.expression
        )

    def _expect_parens(self):
        self.expect(lexer.LPAREN)
        self.expect(lexer.RPAREN)


#: LRU compile cache: expression string -> parsed Path. Replay evaluates
#: the same recorded locators over and over; parsing each time is pure
#: overhead. Cached Paths are shared — consumers must copy before
#: mutating (the relaxation transforms already do).
_COMPILE_CACHE = OrderedDict()
_COMPILE_CACHE_MAX = 1024


@perf.register_cache_clearer
def _clear_compile_cache():
    _COMPILE_CACHE.clear()


def _compile(expression):
    """Actually parse; traced as an ``xpath.compile`` span when on."""
    tracer = telemetry.current()
    if tracer is None or not tracer.wants("xpath"):
        return _Parser(expression).parse()
    with tracer.span("xpath.compile", track=LOCATOR_TRACK, cat="xpath",
                     args={"expr": expression}):
        return _Parser(expression).parse()


def parse_xpath(expression):
    """Parse ``expression`` into a :class:`~repro.xpath.ast.Path`."""
    if isinstance(expression, Path):
        return expression
    if not perf.fast_path_enabled():
        return _compile(expression)
    try:
        path = _COMPILE_CACHE[expression]
    except KeyError:
        perf.record("xpath.compile", hit=False)
        path = _compile(expression)
        _COMPILE_CACHE[expression] = path
        if len(_COMPILE_CACHE) > _COMPILE_CACHE_MAX:
            _COMPILE_CACHE.popitem(last=False)
    else:
        _COMPILE_CACHE.move_to_end(expression)
        perf.record("xpath.compile", hit=True)
    return path
