"""XPath evaluation over the DOM.

Positional predicates follow real XPath semantics for the child axis:
``/div[2]`` means "the second div *among its siblings*", so candidates are
grouped by parent before positions are applied. For the descendant axis
(``//div[2]``) we use the same per-parent grouping, which matches the
``descendant-or-self::node()/child::div[2]`` expansion browsers use.
"""

from repro.dom.node import Document, Element
from repro.util.errors import ElementNotFoundError
from repro.xpath.ast import Step
from repro.xpath.parser import parse_xpath


def _name_matches(element, name):
    return name == "*" or element.tag == name


def _child_candidates(context, name):
    """Matching children of ``context``, as one positional group."""
    return [
        child for child in context.children
        if isinstance(child, Element) and _name_matches(child, name)
    ]


def _descendant_groups(context, name):
    """Matching descendants of ``context`` grouped by parent.

    Each group is a positional context, mirroring the child-axis
    expansion of ``//``. Groups are yielded in document order of parents;
    ``context`` itself counts as a potential parent.
    """
    parents = [context]
    parents.extend(
        node for node in context.descendants() if isinstance(node, Element)
    )
    for parent in parents:
        group = _child_candidates(parent, name)
        if group:
            yield group


def _apply_predicates(group, predicates):
    """Filter one positional group through predicates, in order."""
    current = group
    for predicate in predicates:
        size = len(current)
        current = [
            element
            for position, element in enumerate(current, start=1)
            if predicate.matches(element, position, size)
        ]
        if not current:
            break
    return current


def evaluate(expression, context):
    """Evaluate ``expression`` against a Document or Element.

    Returns matching elements in document order, without duplicates.
    """
    path = parse_xpath(expression)
    if not isinstance(context, (Document, Element)):
        raise TypeError("XPath context must be a Document or Element")

    current_set = [context]
    for step in path.steps:
        next_set = []
        seen = set()
        for node in current_set:
            if step.axis == Step.CHILD:
                groups = [_child_candidates(node, step.name)]
            else:
                groups = _descendant_groups(node, step.name)
            for group in groups:
                for element in _apply_predicates(group, step.predicates):
                    if id(element) not in seen:
                        seen.add(id(element))
                        next_set.append(element)
        current_set = next_set
        if not current_set:
            return []
    # Re-sort into document order (grouping may have perturbed it).
    return _document_order(context, current_set)


def _document_order(context, elements):
    if len(elements) <= 1:
        return elements
    order = {}
    root = context if isinstance(context, Document) else context.root()
    for index, node in enumerate(root.descendants()):
        order[id(node)] = index
    return sorted(elements, key=lambda el: order.get(id(el), -1))


def find_all(expression, context):
    """Alias of :func:`evaluate` reading as a query API."""
    return evaluate(expression, context)


def find_first(expression, context):
    """First match in document order.

    Raises :class:`ElementNotFoundError` when nothing matches — the
    situation that triggers WaRR's XPath relaxation during replay.
    """
    matches = evaluate(expression, context)
    if not matches:
        raise ElementNotFoundError(
            "no element matches %r" % str(parse_xpath(expression))
        )
    return matches[0]
