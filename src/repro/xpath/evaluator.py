"""XPath evaluation over the DOM.

Positional predicates follow real XPath semantics for the child axis:
``/div[2]`` means "the second div *among its siblings*", so candidates are
grouped by parent before positions are applied. For the descendant axis
(``//div[2]``) we use the same per-parent grouping, which matches the
``descendant-or-self::node()/child::div[2]`` expansion browsers use.
"""

from repro import telemetry
from repro.dom.node import Document, Element
from repro.telemetry.tracks import LOCATOR_TRACK
from repro.util.errors import ElementNotFoundError
from repro.xpath.ast import Step
from repro.xpath.parser import parse_xpath


def _name_matches(element, name):
    return name == "*" or element.tag == name


def _child_candidates(context, name):
    """Matching children of ``context``, as one positional group."""
    return [
        child for child in context.children
        if isinstance(child, Element) and _name_matches(child, name)
    ]


def _descendant_groups(context, name):
    """Matching descendants of ``context`` grouped by parent.

    Each group is a positional context, mirroring the child-axis
    expansion of ``//``. Groups are yielded in document order of parents;
    ``context`` itself counts as a potential parent.

    When the owning document's element indexes are available (fast path
    on, context attached), candidates come straight from the tag index
    instead of a full-tree walk.
    """
    document = context if isinstance(context, Document) else context.owner_document
    if isinstance(document, Document):
        indexes = document.query_indexes()
        if indexes is not None and (
            isinstance(context, Document) or id(context) in indexes.order
        ):
            yield from _indexed_descendant_groups(indexes, context, name)
            return
    parents = [context]
    parents.extend(
        node for node in context.descendants() if isinstance(node, Element)
    )
    for parent in parents:
        group = _child_candidates(parent, name)
        if group:
            yield group


def _indexed_descendant_groups(indexes, context, name):
    """Tag-index implementation of :func:`_descendant_groups`.

    The tag index lists candidates in document order, so each per-parent
    bucket accumulates in sibling order; buckets are then yielded in
    document order of their parents (a Document parent is not in the
    order index and sorts first, matching the tree-walk's "context
    first" behaviour).
    """
    scoped = not isinstance(context, Document)
    if name == "*":
        candidates = indexes.elements
    else:
        candidates = indexes.by_tag.get(name, ())
    groups = {}
    for element in candidates:
        if scoped and (element is context or not context.contains(element)):
            continue
        parent = element.parent
        groups.setdefault(id(parent), (parent, []))[1].append(element)
    order = indexes.order
    for _, group in sorted(
        groups.values(), key=lambda entry: order.get(id(entry[0]), -1)
    ):
        yield group


def _apply_predicates(group, predicates):
    """Filter one positional group through predicates, in order."""
    current = group
    for predicate in predicates:
        size = len(current)
        current = [
            element
            for position, element in enumerate(current, start=1)
            if predicate.matches(element, position, size)
        ]
        if not current:
            break
    return current


def evaluate(expression, context):
    """Evaluate ``expression`` against a Document or Element.

    Returns matching elements in document order, without duplicates.
    """
    tracer = telemetry.current()
    if tracer is None or not tracer.wants("xpath"):
        return _evaluate(expression, context)
    with tracer.span("xpath.evaluate", track=LOCATOR_TRACK, cat="xpath",
                     args={"expr": str(expression)}) as args:
        matches = _evaluate(expression, context)
        args["matches"] = len(matches)
    return matches


def _evaluate(expression, context):
    path = parse_xpath(expression)
    if not isinstance(context, (Document, Element)):
        raise TypeError("XPath context must be a Document or Element")

    current_set = [context]
    for step in path.steps:
        next_set = []
        seen = set()
        for node in current_set:
            if step.axis == Step.CHILD:
                groups = [_child_candidates(node, step.name)]
            else:
                groups = _descendant_groups(node, step.name)
            for group in groups:
                for element in _apply_predicates(group, step.predicates):
                    if id(element) not in seen:
                        seen.add(id(element))
                        next_set.append(element)
        current_set = next_set
        if not current_set:
            return []
    # Re-sort into document order (grouping may have perturbed it).
    return _document_order(context, current_set)


def _document_order(context, elements):
    """Sort ``elements`` into document order.

    Nodes the tree does not contain (which evaluation cannot produce,
    but defensive callers might) sort *after* all real matches — a key
    of ``-1`` would silently promote them ahead of everything.
    """
    if len(elements) <= 1:
        return elements
    root = context if isinstance(context, Document) else context.root()
    if isinstance(root, Document):
        indexes = root.query_indexes()
        if indexes is not None:
            unknown = len(indexes.order)
            return sorted(
                elements, key=lambda el: indexes.order.get(id(el), unknown)
            )
    order = {}
    for index, node in enumerate(root.descendants()):
        order[id(node)] = index
    unknown = len(order)
    return sorted(elements, key=lambda el: order.get(id(el), unknown))


def find_all(expression, context):
    """Alias of :func:`evaluate` reading as a query API."""
    return evaluate(expression, context)


def find_first(expression, context):
    """First match in document order.

    Raises :class:`ElementNotFoundError` when nothing matches — the
    situation that triggers WaRR's XPath relaxation during replay.
    """
    matches = evaluate(expression, context)
    if not matches:
        raise ElementNotFoundError(
            "no element matches %r" % str(parse_xpath(expression))
        )
    return matches[0]
