"""XPath abstract syntax tree.

A parsed expression is a :class:`Path` of :class:`Step` objects; each step
has an axis (``child`` for ``/``, ``descendant`` for ``//``), a name test,
and zero or more predicates. The AST nodes know how to render themselves
back to XPath syntax, which the relaxation heuristics rely on: they
transform the AST and re-serialize, never string-munge.
"""


class Predicate:
    """Base class for step predicates."""

    def matches(self, element, position, size):
        """True if ``element`` (at 1-based ``position`` of ``size``
        candidates) satisfies this predicate."""
        raise NotImplementedError

    def to_xpath(self):
        """Render the predicate body (without brackets)."""
        raise NotImplementedError

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.to_xpath())

    def __eq__(self, other):
        return type(self) is type(other) and self.to_xpath() == other.to_xpath()

    def __hash__(self):
        return hash((type(self).__name__, self.to_xpath()))


class AttributeEquals(Predicate):
    """``[@name="value"]``"""

    def __init__(self, name, value):
        self.name = name
        self.value = value

    def matches(self, element, position, size):
        return element.get_attribute(self.name) == self.value

    def to_xpath(self):
        return '@%s="%s"' % (self.name, self.value)


class AttributeExists(Predicate):
    """``[@name]``"""

    def __init__(self, name):
        self.name = name

    def matches(self, element, position, size):
        return element.has_attribute(self.name)

    def to_xpath(self):
        return "@%s" % self.name


class TextEquals(Predicate):
    """``[text()="value"]`` — compares the element's own text children."""

    def __init__(self, value):
        self.value = value

    def matches(self, element, position, size):
        return _direct_text(element) == self.value

    def to_xpath(self):
        return 'text()="%s"' % self.value


class ContainsPredicate(Predicate):
    """``[contains(@name, "value")]`` or ``[contains(text(), "value")]``."""

    def __init__(self, target, value):
        if target != "text()" and not target.startswith("@"):
            raise ValueError("contains() target must be text() or @attr")
        self.target = target
        self.value = value

    def matches(self, element, position, size):
        if self.target == "text()":
            haystack = _direct_text(element)
        else:
            haystack = element.get_attribute(self.target[1:]) or ""
        return self.value in haystack

    def to_xpath(self):
        return 'contains(%s, "%s")' % (self.target, self.value)


class PositionPredicate(Predicate):
    """``[3]`` or ``[position()=3]`` or ``[last()]``."""

    LAST = -1

    def __init__(self, index):
        self.index = index

    def matches(self, element, position, size):
        if self.index == self.LAST:
            return position == size
        return position == self.index

    def to_xpath(self):
        if self.index == self.LAST:
            return "last()"
        return str(self.index)


class Step:
    """One location step: axis + name test + predicates."""

    CHILD = "child"
    DESCENDANT = "descendant"

    def __init__(self, axis, name, predicates=None):
        if axis not in (self.CHILD, self.DESCENDANT):
            raise ValueError("unknown axis %r" % axis)
        self.axis = axis
        self.name = name  # tag name or '*'
        self.predicates = list(predicates or [])

    def separator(self):
        return "//" if self.axis == self.DESCENDANT else "/"

    def to_xpath(self):
        preds = "".join("[%s]" % p.to_xpath() for p in self.predicates)
        return self.name + preds

    def copy(self, axis=None, name=None, predicates=None):
        """Copy, optionally overriding fields (used by relaxation)."""
        return Step(
            axis if axis is not None else self.axis,
            name if name is not None else self.name,
            list(self.predicates) if predicates is None else predicates,
        )

    def __repr__(self):
        return "Step(%s::%s)" % (self.axis, self.to_xpath())

    def __eq__(self, other):
        return (
            isinstance(other, Step)
            and self.axis == other.axis
            and self.name == other.name
            and self.predicates == other.predicates
        )


class Path:
    """A full XPath expression: a sequence of steps from the root."""

    def __init__(self, steps):
        if not steps:
            raise ValueError("a path needs at least one step")
        self.steps = list(steps)

    def to_xpath(self):
        return "".join(step.separator() + step.to_xpath() for step in self.steps)

    def copy(self, steps=None):
        return Path([s.copy() for s in self.steps] if steps is None else steps)

    def __repr__(self):
        return "Path(%s)" % self.to_xpath()

    def __eq__(self, other):
        return isinstance(other, Path) and self.steps == other.steps

    def __str__(self):
        return self.to_xpath()


def _direct_text(element):
    """Concatenated, stripped text of the element's direct text children."""
    from repro.dom.node import Text

    return "".join(
        child.data for child in element.children if isinstance(child, Text)
    ).strip()
