"""XPath tokenizer."""

from repro.util.errors import XPathSyntaxError

# Token kinds
SLASH = "SLASH"
DSLASH = "DSLASH"
NAME = "NAME"
STAR = "STAR"
LBRACKET = "LBRACKET"
RBRACKET = "RBRACKET"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
AT = "AT"
EQ = "EQ"
COMMA = "COMMA"
STRING = "STRING"
INTEGER = "INTEGER"
END = "END"


class Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind, value, pos):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def _is_name_char(char):
    return char.isalnum() or char in "-_."


def tokenize(expression):
    """Turn an XPath string into a list of tokens (END-terminated)."""
    tokens = []
    i = 0
    length = len(expression)
    while i < length:
        char = expression[i]
        if char.isspace():
            i += 1
            continue
        if expression.startswith("//", i):
            tokens.append(Token(DSLASH, "//", i))
            i += 2
            continue
        if char == "/":
            tokens.append(Token(SLASH, "/", i))
            i += 1
            continue
        if char == "*":
            tokens.append(Token(STAR, "*", i))
            i += 1
            continue
        if char == "[":
            tokens.append(Token(LBRACKET, "[", i))
            i += 1
            continue
        if char == "]":
            tokens.append(Token(RBRACKET, "]", i))
            i += 1
            continue
        if char == "(":
            tokens.append(Token(LPAREN, "(", i))
            i += 1
            continue
        if char == ")":
            tokens.append(Token(RPAREN, ")", i))
            i += 1
            continue
        if char == "@":
            tokens.append(Token(AT, "@", i))
            i += 1
            continue
        if char == "=":
            tokens.append(Token(EQ, "=", i))
            i += 1
            continue
        if char == ",":
            tokens.append(Token(COMMA, ",", i))
            i += 1
            continue
        if char in "\"'":
            quote = char
            end = expression.find(quote, i + 1)
            if end == -1:
                raise XPathSyntaxError(
                    "unterminated string at position %d in %r" % (i, expression)
                )
            tokens.append(Token(STRING, expression[i + 1:end], i))
            i = end + 1
            continue
        if char.isdigit():
            start = i
            while i < length and expression[i].isdigit():
                i += 1
            tokens.append(Token(INTEGER, int(expression[start:i]), start))
            continue
        if char.isalpha() or char == "_":
            start = i
            while i < length and _is_name_char(expression[i]):
                i += 1
            tokens.append(Token(NAME, expression[start:i], start))
            continue
        raise XPathSyntaxError(
            "unexpected character %r at position %d in %r" % (char, i, expression)
        )
    tokens.append(Token(END, None, length))
    return tokens
