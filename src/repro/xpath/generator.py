"""Generate paper-style XPath expressions for DOM elements.

The WaRR Recorder logs each action target as an XPath like
``//div/span[@id="start"]`` or ``//td/div[text()="Save"]`` (Figure 4).
The generator prefers, in order:

1. an ``id`` predicate (with the parent tag as context),
2. a ``name`` predicate,
3. a short, unique direct-text predicate,
4. an absolute positional path from the document root.

The produced expression is always verified to resolve uniquely back to
the element in the *current* document; if a shorter form is ambiguous we
fall back to the absolute path.
"""

from repro.dom.node import Document, Element, Text
from repro.xpath.ast import (
    Path,
    Step,
    AttributeEquals,
    TextEquals,
    PositionPredicate,
)
from repro.xpath.evaluator import evaluate


def _direct_text(element):
    return "".join(
        child.data for child in element.children if isinstance(child, Text)
    ).strip()


def _resolves_uniquely(path, document, element):
    matches = evaluate(path, document)
    return len(matches) == 1 and matches[0] is element


def _contextual_step(element, predicates):
    """Build ``//parenttag/tag[preds]`` (or ``//tag[preds]`` at the root)."""
    if not isinstance(predicates, list):
        predicates = [predicates]
    steps = []
    parent = element.parent
    if isinstance(parent, Element) and parent.tag not in ("body", "html"):
        steps.append(Step(Step.DESCENDANT, parent.tag))
        steps.append(Step(Step.CHILD, element.tag, predicates))
    else:
        steps.append(Step(Step.DESCENDANT, element.tag, predicates))
    return Path(steps)


def absolute_xpath(element):
    """Positional path from the root, e.g. ``/html/body/div[2]/span``.

    Position predicates are added only where the element has same-tag
    siblings, keeping expressions short like hand-written ones.
    """
    steps = []
    node = element
    while isinstance(node, Element):
        parent = node.parent
        siblings = (
            [
                child for child in parent.children
                if isinstance(child, Element) and child.tag == node.tag
            ]
            if parent is not None
            else [node]
        )
        predicates = []
        if len(siblings) > 1:
            predicates.append(PositionPredicate(siblings.index(node) + 1))
        steps.append(Step(Step.CHILD, node.tag, predicates))
        node = parent
    steps.reverse()
    return Path(steps)


def xpath_for_element(element, document=None):
    """Produce the recorder's XPath for ``element``.

    ``document`` defaults to the element's owner document; passing it
    explicitly lets callers generate expressions against snapshots.
    """
    if not isinstance(element, Element):
        raise TypeError("can only generate XPath for elements, got %r" % (element,))
    if document is None:
        document = element.owner_document
        if not isinstance(document, Document):
            root = element.root()
            document = root if isinstance(root, Document) else None
    if document is None:
        return absolute_xpath(element)

    element_id = element.get_attribute("id")
    element_name = element.get_attribute("name")
    if element_id:
        predicates = [AttributeEquals("id", element_id)]
        if element_name:
            # Record the stable name alongside the (possibly volatile)
            # id — the replayer's "keep only certain attributes"
            # relaxation heuristic depends on it being in the trace.
            predicates.append(AttributeEquals("name", element_name))
        path = _contextual_step(element, predicates)
        if _resolves_uniquely(path, document, element):
            return path

    if element_name:
        path = _contextual_step(element, AttributeEquals("name", element_name))
        if _resolves_uniquely(path, document, element):
            return path

    text = _direct_text(element)
    if text and len(text) <= 40 and '"' not in text:
        path = _contextual_step(element, TextEquals(text))
        if _resolves_uniquely(path, document, element):
            return path

    return absolute_xpath(element)
