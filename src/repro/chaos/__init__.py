"""Deterministic fault injection across the simulated browser stack.

``repro.chaos`` perturbs every substrate layer through explicit
injection points — IPC delay/drop/reorder, renderer crash/hang, network
failure/latency/slow-body, page-script exceptions, and layout jitter —
so the self-healing replay machinery can be exercised and proven. A run
is configured by a composable :class:`FaultProfile` plus a seed, and is
exactly reproducible from that pair: the injector derives one private
random stream per layer, logs every fired fault in order, and exposes
the schedule for byte-identical comparison.

Chaos is **off by default** and mirrors :mod:`repro.telemetry`'s
process-wide singleton discipline: instrumented code pays exactly one
guard check (``chaos.current() is None``) while off — the chaos
benchmark pins that overhead below 5%. Enable it for a region::

    from repro import chaos

    with chaos.active(chaos.FaultProfile.flaky_net(), seed=7,
                      clock=browser.clock) as injector:
        report = replayer.replay(trace)
    print(injector.summary())

or from the shell with ``python -m repro chaos --profile flaky-net``.
While installed, fault activity also shows up as ``chaos.<layer>``
counters in :mod:`repro.perf` and as instants on the chaos track of any
installed telemetry tracer.
"""

from contextlib import contextmanager

from repro.chaos.injector import ChaosInjector, FaultRecord
from repro.chaos.profile import LAYERS, PROFILES, FaultProfile, get_profile

_injector = None


def current():
    """The installed injector, or None while chaos is off.

    This is THE guard injection points check; everything else in the
    subsystem is only reached when it returns an injector.
    """
    return _injector


def enabled():
    """True while an injector is installed."""
    return _injector is not None


def install(injector):
    """Install ``injector`` process-wide; returns it.

    Nested installs are refused — the injector is a process-wide
    singleton, like the telemetry tracer.
    """
    global _injector
    if _injector is not None:
        raise RuntimeError("a chaos injector is already installed")
    _injector = injector
    return injector


def uninstall():
    """Remove the installed injector (no-op when chaos is off)."""
    global _injector
    _injector = None


@contextmanager
def active(profile, seed=0, clock=None, injector=None):
    """Enable fault injection for a ``with`` block.

    Installs ``injector`` (or a fresh :class:`ChaosInjector` built from
    ``profile``/``seed``/``clock``), uninstalls it on exit, and yields
    it so callers can read the fault schedule afterwards.
    """
    live = injector if injector is not None else ChaosInjector(
        profile, seed=seed, clock=clock)
    install(live)
    try:
        yield live
    finally:
        uninstall()


__all__ = [
    "LAYERS",
    "PROFILES",
    "ChaosInjector",
    "FaultProfile",
    "FaultRecord",
    "active",
    "current",
    "enabled",
    "get_profile",
    "install",
    "uninstall",
]
